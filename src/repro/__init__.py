"""repro — a reproduction of "Modular Control-Flow Integrity" (PLDI 2014).

MCFI is the first fine-grained CFI instrumentation that supports
separate compilation: modules are independently instrumented and linked
statically or dynamically; the control-flow policy lives in runtime ID
tables updated transactionally when libraries are loaded.

This package rebuilds the entire system against a simulated substrate —
a C-subset compiler (TinyC), a variable-length virtual ISA (SimISA), a
deterministic multithreaded VM (SimVM) — so that enforcement,
verification, dynamic linking and the paper's attacks all execute for
real.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the per-table/figure reproduction record.

Quickstart::

    from repro import compile_and_run
    result = compile_and_run({"app": "int main(void){ return 42; }"})
    assert result.exit_code == 42

Main entry points:

* :class:`repro.build.BuildSession` — incremental compile-as-a-service
  (the public compile surface; ``repro.toolchain`` shims over it)
* :func:`repro.build.compile_object` — TinyC -> instrumentable module
* :func:`repro.linker.static_linker.link` — separate-compilation linking
* :class:`repro.runtime.runtime.Runtime` — load + execute (MCFI enforced)
* :class:`repro.linker.dynamic_linker.DynamicLinker` — dlopen support
* :func:`repro.cfg.generator.generate_cfg` — type-matching CFG generation
* :func:`repro.core.verifier.verify_module` — modular verification
* :func:`repro.analysis.analyzer.analyze_source` — the C1/C2 analyzer
* :mod:`repro.experiments` — regenerate every table/figure of the paper
"""

from repro.toolchain import (
    compile_and_link,
    compile_and_run,
    compile_module,
    frontend,
    run_program,
)
from repro.build import (
    BuildGraph,
    BuildResult,
    BuildSession,
    build_program,
    compile_object,
)
from repro.runtime.runtime import Runtime, RunResult
from repro.linker.static_linker import LinkedProgram, link
from repro.linker.dynamic_linker import DynamicLinker
from repro.cfg.generator import Cfg, generate_cfg
from repro.core.verifier import verify_module
from repro.analysis.analyzer import AnalysisReport, analyze_source
from repro.errors import (
    CfiViolation,
    LinkError,
    ReproError,
    TinyCError,
    VerificationError,
)

__version__ = "1.0.0"

__all__ = [
    "BuildGraph", "BuildResult", "BuildSession", "build_program",
    "compile_object",
    "compile_and_link", "compile_and_run", "compile_module", "frontend",
    "run_program",
    "Runtime", "RunResult",
    "LinkedProgram", "link", "DynamicLinker",
    "Cfg", "generate_cfg", "verify_module",
    "AnalysisReport", "analyze_source",
    "CfiViolation", "LinkError", "ReproError", "TinyCError",
    "VerificationError",
    "__version__",
]
