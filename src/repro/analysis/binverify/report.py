""":class:`VerifyReport` — the verifier's structured verdict.

Replaces ``verify_module``'s bare ``Dict[str, int]`` return.  Carries
the acceptance bit, statistics, the MCFI005–008 diagnostics, the
recognized check-transaction spans and the per-branch verdicts, and
serializes through the repo-wide ``to_dict``/``from_dict`` protocol.

A deprecation shim keeps the old dict shape alive: subscripting the
report (``report["checked_branches"]``) still works but warns, so
callers migrate to ``report.stats`` / the typed fields.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.analysis.dataflow.diagnostics import Diagnostic, sorted_diagnostics


@dataclass
class VerifyReport:
    """Outcome of one binary verification run."""

    module: str
    arch: str = "x64"
    ok: bool = True
    #: 'module' (post-link) or 'unit' (pre-link compilation unit)
    grain: str = "module"
    stats: Dict[str, int] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: ``[start, end)`` of every intact check transaction
    check_spans: List[Tuple[int, int]] = field(default_factory=list)
    #: indirect-branch address -> "proved" or the failure reason
    verdicts: Dict[int, str] = field(default_factory=dict)

    KIND = "verify"

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def first_error(self) -> str:
        errors = sorted_diagnostics(self.errors)
        if not errors:
            return ""
        return errors[0].render()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "module": self.module,
            "arch": self.arch,
            "ok": self.ok,
            "grain": self.grain,
            "stats": dict(self.stats),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "check_spans": [[start, end]
                            for start, end in self.check_spans],
            "verdicts": {f"{address:#x}": verdict
                         for address, verdict in
                         sorted(self.verdicts.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerifyReport":
        return cls(
            module=data["module"], arch=data.get("arch", "x64"),
            ok=bool(data["ok"]), grain=data.get("grain", "module"),
            stats={k: int(v) for k, v in data.get("stats", {}).items()},
            diagnostics=[Diagnostic.from_dict(d)
                         for d in data.get("diagnostics", [])],
            check_spans=[(int(start), int(end))
                         for start, end in data.get("check_spans", [])],
            verdicts={int(address, 16): verdict
                      for address, verdict in
                      data.get("verdicts", {}).items()})

    # -- deprecated Dict[str, int] shape ---------------------------------

    def _warn(self, how: str) -> None:
        warnings.warn(
            f"dict-style access to verify_module's return ({how}) is "
            f"deprecated; use VerifyReport.stats or the typed fields",
            DeprecationWarning, stacklevel=3)

    def __getitem__(self, key: str) -> int:
        self._warn(f"report[{key!r}]")
        return self.stats[key]

    def get(self, key: str, default: Any = None) -> Any:
        self._warn(f"report.get({key!r})")
        return self.stats.get(key, default)

    def keys(self) -> Iterator[str]:
        self._warn("report.keys()")
        return iter(self.stats.keys())
