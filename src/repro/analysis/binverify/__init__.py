"""``repro.analysis.binverify`` — the binary-level CFI verifier.

The modular verifier the paper puts between an *untrusted* toolchain
and the trusted loader (Sec. 7), rebuilt as a static analysis instead
of a pattern matcher: the module (or one compilation unit) is
disassembled, a binary-level CFG is reconstructed from the decoded
instruction boundaries, and an abstract interpreter over a per-register
fact lattice *proves* the four safety properties:

* **MCFI005** — every reachable indirect branch is dominated by an
  intact Fig. 4 check transaction, with no clobber of the checked
  register between the transaction and the branch (bare ``ret`` is the
  degenerate case);
* **MCFI006** — every reachable store goes through a sandbox-masked
  base register (x64), so no write can reach the tables or code;
* **MCFI007** — complete disassembly, and every reachable direct
  branch/call lands on a decoded instruction boundary that is a
  declared label (no overlapping-decode escape);
* **MCFI008** — table discipline: aux targets 4-byte aligned on
  boundaries, every Bary immediate patched by the loader belongs to a
  ``tload`` in an intact transaction, transaction count matches the
  declared sites.

Entry points: :func:`analyze_module` / :func:`analyze_image` return a
:class:`VerifyReport`; :func:`verify_unit` gates a single
:class:`~repro.build.units.UnitArtifact` (raising
:class:`~repro.errors.UnitVerificationError`).  The raising module
surface stays :func:`repro.core.verifier.verify_module`, now a facade
over this package.
"""

from repro.analysis.binverify.absint import CHECKED, MASKED, TOP
from repro.analysis.binverify.bincfg import BinaryCfg, Guard, build_cfg
from repro.analysis.binverify.image import (
    ImageSpec,
    image_of_module,
    image_of_unit,
)
from repro.analysis.binverify.passes import (
    analyze_image,
    analyze_module,
    verify_unit,
)
from repro.analysis.binverify.report import VerifyReport

__all__ = [
    "TOP", "MASKED", "CHECKED",
    "ImageSpec", "image_of_module", "image_of_unit",
    "BinaryCfg", "Guard", "build_cfg",
    "analyze_image", "analyze_module", "verify_unit",
    "VerifyReport",
]
