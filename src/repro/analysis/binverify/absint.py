"""The register-fact abstract domain and transfer function.

Per register, three facts ordered ``TOP < MASKED < CHECKED``:

* ``TOP`` — nothing known (any value, any provenance);
* ``MASKED`` — the register was sandbox-masked (``movzx32``) and not
  written since: its value lies in ``[0, 4GB)``, so stores through it
  cannot reach the tables or code and Tary reads through it are
  in-segment;
* ``CHECKED`` — additionally, an intact check transaction compared
  ``Tary[reg]`` against the branch's Bary ID on every path since the
  mask: the register may be the operand of an indirect branch.

The join at control-flow confluences is the pointwise minimum, states
are immutable 16-tuples, and bottom is the solver's built-in "not yet
reached".  ``CHECKED`` is deliberately fragile: it survives only
alignment ``nop``s (the AlignEnd padding between a guard and its
``call *rcx``) — any other instruction demotes it to ``MASKED``, which
is exactly the paper's "no instruction between the check transaction
and the branch" discipline, while a clobber of the register itself
drops it to ``TOP``.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.dataflow.solver import DataflowProblem
from repro.isa.disasm import DecodedInstr
from repro.isa.instructions import Op, OperandKind, SPECS
from repro.isa.registers import NUM_REGS

TOP, MASKED, CHECKED = 0, 1, 2

State = Tuple[int, ...]

STATE_TOP: State = (TOP,) * NUM_REGS

#: stores read their base operand; compares/tests only set flags
_NO_REG_WRITE = frozenset({
    Op.CMP_RR, Op.CMP_RI, Op.TEST_RR, Op.TEST_RI, Op.CMPW_RR, Op.TESTB1,
    Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64,
})

#: opcodes whose first operand is a register they (may) write
_WRITES_FIRST = frozenset(
    op for op, spec in SPECS.items()
    if spec.operands and spec.operands[0] is OperandKind.REG
    and op not in _NO_REG_WRITE and op != Op.MOVZX32)

#: control leaves the image or enters the trusted runtime: every
#: register fact dies (callee / kernel may clobber anything)
_KILLS_ALL = frozenset({Op.CALL, Op.CALL_R, Op.SYSCALL})


def join(a: State, b: State) -> State:
    if a == b:
        return a
    return tuple(map(min, a, b))


def step(state: State, decoded: DecodedInstr) -> State:
    """State after executing one instruction."""
    op = decoded.instr.op
    if op == Op.NOP:
        return state
    if CHECKED in state:
        state = tuple(MASKED if fact == CHECKED else fact
                      for fact in state)
    if op == Op.MOVZX32:
        reg = decoded.instr.operands[0]
        if state[reg] == MASKED:
            return state
        return state[:reg] + (MASKED,) + state[reg + 1:]
    if op in _KILLS_ALL:
        return STATE_TOP
    if op in _WRITES_FIRST:
        reg = decoded.instr.operands[0]
        if state[reg] != TOP:
            return state[:reg] + (TOP,) + state[reg + 1:]
    return state


def make_problem() -> DataflowProblem:
    """The forward problem; transfer dispatches on block kind."""
    from repro.analysis.binverify.bincfg import EdgeBlock

    def transfer(_label: str, block, state: State) -> State:
        if isinstance(block, EdgeBlock):
            guard = block.guard
            if state[guard.reg] >= MASKED:
                return (state[:guard.reg] + (CHECKED,)
                        + state[guard.reg + 1:])
            return state
        out = state
        for decoded in block.instrs:
            out = step(out, decoded)
        return out

    return DataflowProblem(direction="forward", boundary=STATE_TOP,
                           join=join, transfer=transfer)
