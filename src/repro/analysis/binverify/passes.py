"""The verification passes: solve, then prove MCFI005–008.

One :func:`analyze_image` run is:

1. complete disassembly of the image's code ranges (failure → MCFI007);
2. CFG reconstruction + check-transaction recognition
   (:mod:`~repro.analysis.binverify.bincfg`);
3. the forward abstract interpretation via the *unmodified* MIR
   worklist solver (:mod:`repro.analysis.dataflow.solver`);
4. a linear re-walk of every reachable block replaying
   :func:`~repro.analysis.binverify.absint.step`, asserting the
   properties instruction by instruction:

   * indirect branch / ``ret`` with the operand not CHECKED → MCFI005,
   * store base (x64, non-frame) not MASKED → MCFI006,
   * direct branch/call target off-boundary or undeclared, or a block
     running off the decoded range → MCFI007;

5. global discipline — declared-target alignment, Bary-slot/tload
   correspondence, transaction count vs. declared sites → MCFI008.

Everything reachability-dependent is proved over the root-reachable
region only: under CFI, runtime indirect targets ⊆ Tary entries ⊆
roots, so unreachable padding can never execute (disassembly itself
stays complete).  Transaction *accounting* (MCFI008) is structural and
reachability-independent, matching the paper's verifier.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.binverify.absint import (
    CHECKED,
    MASKED,
    make_problem,
    step,
)
from repro.analysis.binverify.bincfg import BinBlock, build_cfg
from repro.analysis.binverify.image import (
    ImageSpec,
    image_of_module,
    image_of_unit,
)
from repro.analysis.binverify.report import VerifyReport
from repro.analysis.dataflow.diagnostics import (
    Diagnostic,
    sorted_diagnostics,
)
from repro.analysis.dataflow.solver import solve
from repro.errors import EncodingError, UnitVerificationError
from repro.isa.disasm import sweep_ranges
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.module.module import McfiModule
from repro.obs import OBS

_STORES = (Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64)

_FACT = {0: "unknown", 1: "masked but unchecked", 2: "checked"}


class _Emitter:
    """Collects diagnostics with stable locations."""

    def __init__(self, image: ImageSpec) -> None:
        self.image = image
        self.diagnostics: List[Diagnostic] = []

    def emit(self, code: str, address: int, block: str, index: int,
             message: str) -> None:
        self.diagnostics.append(Diagnostic(
            code=code, unit=self.image.name,
            function=self.image.function_at(address),
            block=block, index=index,
            message=f"{message} (at {address:#x})"))


def analyze_image(image: ImageSpec) -> VerifyReport:
    """Run the full analysis over one image; never raises."""
    with OBS.tracer.span("binverify.image", module=image.name,
                         arch=image.arch, grain="unit" if image.partial
                         else "module") as span:
        report = _analyze(image)
        span.set(ok=report.ok,
                 diagnostics=len(report.diagnostics),
                 checked=report.stats.get("checked_branches", 0))
    OBS.metrics.counter(
        "binverify.accepted" if report.ok else "binverify.rejected").inc()
    return report


def _analyze(image: ImageSpec) -> VerifyReport:
    report = VerifyReport(module=image.name, arch=image.arch,
                          grain="unit" if image.partial else "module")
    out = _Emitter(image)

    try:
        decoded = sweep_ranges(image.code, image.base, image.code_ranges)
    except EncodingError as exc:
        out.emit("MCFI007", image.base, "-", 0,
                 f"image does not disassemble completely: {exc}")
        report.diagnostics = sorted_diagnostics(out.diagnostics)
        report.ok = False
        report.stats = {"instructions": 0, "checked_branches": 0,
                        "targets": len(image.aux_targets)}
        return report

    cfg = build_cfg(image, decoded)
    solution = solve(cfg, make_problem())

    reachable = [label for label in cfg.rpo
                 if label in solution.inputs
                 and isinstance(cfg.blocks[label], BinBlock)
                 and label != cfg.entry]

    broken_fall: Dict[int, str] = {
        guard.fallthrough: guard.reason
        for guard in cfg.guards if not guard.intact}

    proved_branches = 0
    proved_stores = 0
    direct_targets = 0
    cross_module = 0

    for label in reachable:
        block: BinBlock = cfg.blocks[label]
        state = solution.inputs[label]
        for index, decoded_instr in enumerate(block.instrs):
            instr = decoded_instr.instr
            op = instr.op
            address = decoded_instr.address

            if op == Op.RET:
                out.emit("MCFI005", address, label, index,
                         "bare ret (returns must be rewritten into "
                         "checked jumps)")
                report.verdicts[address] = "bare ret"
            elif op in (Op.JMP_R, Op.CALL_R):
                reg = instr.operands[0]
                if state[reg] == CHECKED:
                    proved_branches += 1
                    report.verdicts[address] = "proved"
                else:
                    reason = (f"indirect branch via {Reg(reg)!s} not "
                              f"dominated by an intact check "
                              f"transaction ({_FACT[state[reg]]})")
                    extra = broken_fall.get(block.start)
                    if extra:
                        reason += f"; nearest guard broken: {extra}"
                    out.emit("MCFI005", address, label, index, reason)
                    report.verdicts[address] = _FACT[state[reg]]
            elif op in _STORES and image.arch == "x64":
                base = instr.operands[0]
                if base in (Reg.RSP, Reg.RBP):
                    proved_stores += 1
                elif state[base] >= MASKED:
                    proved_stores += 1
                else:
                    out.emit("MCFI006", address, label, index,
                             f"unsandboxed store via {Reg(base)!s} "
                             f"(base not provably masked) could reach "
                             f"table or code regions")
            elif instr.spec.is_branch and not instr.spec.is_indirect \
                    and (address + 1) not in image.rel32_holes:
                target = instr.branch_target(address)
                if not image.contains(target):
                    cross_module += 1
                elif target not in cfg.boundaries:
                    out.emit("MCFI007", address, label, index,
                             f"direct branch target {target:#x} is not "
                             f"a decoded instruction boundary")
                elif target not in image.label_addrs:
                    out.emit("MCFI007", address, label, index,
                             f"direct branch target {target:#x} is not "
                             f"a declared label")
                else:
                    direct_targets += 1

            state = step(state, decoded_instr)

        if block.falls_off:
            last = block.instrs[-1]
            out.emit("MCFI007", last.address, label,
                     len(block.instrs) - 1,
                     "execution falls off the decoded code range")

    # -- global discipline (MCFI008) --------------------------------------
    if image.alignment_known:
        for address in image.aux_targets:
            if address % 4:
                out.emit("MCFI008", address, "-", 0,
                         "declared indirect-branch target is not "
                         "4-byte aligned")
            elif image.contains(address) \
                    and address not in cfg.boundaries:
                out.emit("MCFI008", address, "-", 0,
                         "declared indirect-branch target is not an "
                         "instruction boundary")

    intact = [guard for guard in cfg.guards if guard.intact]
    intact_fields = sorted(guard.bary_field for guard in intact)
    declared_fields = sorted(image.bary_fields)
    decoded_at = {d.address: d for d in decoded}
    for field_addr in declared_fields:
        at = decoded_at.get(field_addr - 2)
        if at is None or at.instr.op != Op.TLOAD_RI:
            out.emit("MCFI008", field_addr, "-", 0,
                     "patched Bary slot is not the immediate of a "
                     "tload instruction")
    if len(declared_fields) != image.n_sites:
        out.emit("MCFI008", image.base, "-", 0,
                 f"{image.n_sites} declared branch sites but "
                 f"{len(declared_fields)} patched Bary slots")
    if len(intact) != image.n_sites:
        out.emit("MCFI008", image.base, "-", 0,
                 f"{image.n_sites} declared branch sites but "
                 f"{len(intact)} intact check transactions found")
    elif intact_fields != declared_fields:
        out.emit("MCFI008", image.base, "-", 0,
                 "intact check transactions do not read the declared "
                 "Bary slots")

    report.check_spans = sorted(guard.span for guard in intact)
    report.diagnostics = sorted_diagnostics(out.diagnostics)
    report.ok = not report.errors
    report.stats = {
        "instructions": len(decoded),
        "blocks": sum(1 for b in cfg.blocks.values()
                      if isinstance(b, BinBlock)) - 1,
        "reachable_blocks": len(reachable),
        "checked_branches": len(intact),
        "proved_branches": proved_branches,
        "proved_stores": proved_stores,
        "direct_targets": direct_targets,
        "cross_module": cross_module,
        "targets": len(image.aux_targets),
        "iterations": solution.iterations,
    }
    return report


def analyze_module(module: McfiModule) -> VerifyReport:
    """Verify one linked module; returns the report (never raises)."""
    report = analyze_image(image_of_module(module))
    # keep the legacy 'targets' meaning: functions + return sites
    report.stats["targets"] = (len(module.aux.functions)
                               + len(module.aux.retsites))
    return report


def verify_unit(artifact, arch: str = "x64",
                module: str = "") -> VerifyReport:
    """Gate one compilation unit; raises
    :class:`~repro.errors.UnitVerificationError` on rejection.

    This runs before an artifact is published to the shared build
    cache: a pool worker (or a poisoned cache) cannot land code that
    merely *looks* plausible — the unit must prove its own check
    transactions, masks and alignment.
    """
    report = analyze_image(image_of_unit(artifact, arch=arch))
    if not report.ok:
        where = f"{module}:{artifact.fn}" if module else artifact.fn
        raise UnitVerificationError(
            f"unit {where} failed binary verification: "
            f"{report.first_error()}",
            unit=artifact.fn, report=report)
    return report
