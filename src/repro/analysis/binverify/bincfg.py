"""Binary-level CFG reconstruction over decoded instructions.

Blocks are cut at the classic leader set (range starts, direct branch
targets, instruction-after-branch, reachability roots) and the graph
conforms to the duck type :func:`repro.analysis.dataflow.solver.solve`
expects (``rpo`` / ``blocks`` / ``successors`` / ``predecessors`` /
``entry`` / ``exits``), so the MIR worklist engine runs unchanged over
machine code.

Check transactions are recognized *structurally*: a block ending in
the Fig. 4 guard suffix (``tload rdi, Bary[i]`` / ``tload rsi, (r)`` /
``cmp rdi, rsi`` / ``jne``) is a :class:`Guard`, and it is **intact**
only if its full Check/Halt retry chain validates — the ``testb1`` /
``je`` pair at the jne target, the ``cmpw`` version retry jumping back
to the same guard, and both failure paths ending in ``hlt``.  An
intact guard contributes a synthetic :class:`EdgeBlock` on its
fall-through edge; the abstract interpreter's transfer for that edge
is what upgrades the checked register to CHECKED, making the dominance
argument ("every path to this indirect branch passes an intact check")
fall out of the ordinary forward dataflow join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.disasm import DecodedInstr
from repro.isa.instructions import Op
from repro.isa.registers import Reg

from repro.analysis.binverify.image import ImageSpec

ENTRY = "entry"

#: opcode -> rel32 field offset within the encoding (single REL operand)
_REL_FIELD_OFFSET = 1


@dataclass
class BinBlock:
    """A maximal straight-line run of decoded instructions."""

    label: str
    start: int
    instrs: List[DecodedInstr] = field(default_factory=list)
    #: last instruction is not a terminator and its end is not a
    #: decoded boundary: execution would run off into non-code
    falls_off: bool = False

    @property
    def end(self) -> int:
        return self.instrs[-1].end if self.instrs else self.start


@dataclass
class Guard:
    """One recognized check-transaction guard (the Try block suffix)."""

    block: str                 # label of the guard block
    start: int                 # address of the tload rdi (suffix start)
    reg: int                   # register the transaction checks
    bary_field: int            # address of the Bary imm32 field
    check_addr: int            # jne target (the Check block)
    fallthrough: int           # address the guard falls through to
    intact: bool = False
    reason: str = ""           # why the chain failed, when not intact
    span: Tuple[int, int] = (0, 0)   # [suffix start, halt end)


@dataclass
class EdgeBlock:
    """Synthetic pass-through block on an intact guard's fall-through
    edge; carries the CHECKED upgrade without touching the solver."""

    label: str
    guard: Guard
    instrs: Tuple = ()


class BinaryCfg:
    """The reconstructed control-flow graph of one image."""

    def __init__(self) -> None:
        self.entry = ENTRY
        self.blocks: Dict[str, object] = {}
        self.successors: Dict[str, List[str]] = {}
        self.predecessors: Dict[str, List[str]] = {}
        self.rpo: List[str] = []
        self.exits: List[str] = []
        self.boundaries: frozenset = frozenset()
        self.block_at: Dict[int, str] = {}
        self.guards: List[Guard] = []
        #: direct-call targets discovered while wiring successors
        self.call_targets: List[int] = []

    def block_of(self, address: int) -> Optional[BinBlock]:
        label = self.block_at.get(address)
        block = self.blocks.get(label) if label is not None else None
        return block if isinstance(block, BinBlock) else None


def _rel_hole(decoded: DecodedInstr, image: ImageSpec) -> bool:
    return (decoded.address + _REL_FIELD_OFFSET) in image.rel32_holes


def _label(address: int) -> str:
    return f"{address:#x}"


def build_cfg(image: ImageSpec, decoded: List[DecodedInstr]) -> BinaryCfg:
    cfg = BinaryCfg()
    boundaries = frozenset(d.address for d in decoded)
    cfg.boundaries = boundaries

    # -- leaders ----------------------------------------------------------
    leaders = set()
    for start, _end in image.code_ranges:
        if start in boundaries:
            leaders.add(start)
    for root in image.roots:
        if root in boundaries:
            leaders.add(root)
    for d in decoded:
        spec = d.instr.spec
        if spec.is_branch or d.instr.op == Op.HLT:
            if d.end in boundaries:
                leaders.add(d.end)
            if spec.is_branch and not spec.is_indirect \
                    and not _rel_hole(d, image):
                target = d.instr.branch_target(d.address)
                if target in boundaries:
                    leaders.add(target)

    # -- blocks -----------------------------------------------------------
    order: List[BinBlock] = []
    current: Optional[BinBlock] = None
    prev_end: Optional[int] = None
    for d in decoded:
        if current is None or d.address in leaders or d.address != prev_end:
            current = BinBlock(label=_label(d.address), start=d.address)
            order.append(current)
        current.instrs.append(d)
        prev_end = d.end
    for block in order:
        cfg.blocks[block.label] = block
        cfg.block_at[block.start] = block.label

    # -- successors -------------------------------------------------------
    starts = cfg.block_at
    for block in order:
        succs: List[str] = []
        last = block.instrs[-1]
        op = last.instr.op
        spec = last.instr.spec

        def direct_target() -> Optional[int]:
            if _rel_hole(last, image):
                return None
            return last.instr.branch_target(last.address)

        if op == Op.HLT or (spec.is_indirect and not spec.is_call):
            pass  # hlt / ret / jmp *r: no static successors
        elif spec.is_call:
            if not spec.is_indirect:
                target = direct_target()
                if target is not None and target in starts:
                    cfg.call_targets.append(target)
            if last.end in starts:
                succs.append(starts[last.end])
            else:
                block.falls_off = True
        elif spec.is_branch:
            if spec.is_cond:
                if last.end in starts:
                    succs.append(starts[last.end])
                else:
                    block.falls_off = True
            target = direct_target()
            if target is not None and target in starts:
                succs.append(starts[target])
        else:
            if last.end in starts:
                succs.append(starts[last.end])
            else:
                block.falls_off = True
        cfg.successors[block.label] = succs

    # -- guards + intact-chain validation ---------------------------------
    suffix_of: Dict[str, Guard] = {}
    for block in order:
        guard = _match_guard(block, image)
        if guard is not None:
            suffix_of[block.label] = guard
            cfg.guards.append(guard)
    for guard in cfg.guards:
        _validate_chain(cfg, guard, suffix_of)

    # -- synthetic edge blocks on intact guards' fall-through edges -------
    for guard in cfg.guards:
        if not guard.intact:
            continue
        target_label = starts.get(guard.fallthrough)
        if target_label is None:
            continue
        succs = cfg.successors[guard.block]
        if target_label not in succs:
            continue
        edge_label = f"g{guard.start:#x}"
        edge = EdgeBlock(label=edge_label, guard=guard)
        cfg.blocks[edge_label] = edge
        cfg.successors[edge_label] = [target_label]
        cfg.successors[guard.block] = [
            edge_label if s == target_label else s for s in succs]

    # -- entry, predecessors, rpo -----------------------------------------
    entry_succs = sorted(
        {starts[a] for a in image.roots if a in starts}
        | {starts[a] for a in cfg.call_targets if a in starts},
        key=lambda lbl: cfg.blocks[lbl].start)
    cfg.blocks[ENTRY] = BinBlock(label=ENTRY, start=image.base - 1)
    cfg.successors[ENTRY] = entry_succs

    for label in cfg.blocks:
        cfg.predecessors.setdefault(label, [])
    for label, succs in cfg.successors.items():
        for succ in succs:
            cfg.predecessors[succ].append(label)

    cfg.rpo = _rpo(cfg)
    cfg.exits = [label for label in cfg.rpo
                 if label != ENTRY and not cfg.successors[label]]
    return cfg


def _match_guard(block: BinBlock, image: ImageSpec) -> Optional[Guard]:
    """Recognize the 4-instruction guard suffix ending ``block``."""
    if len(block.instrs) < 4:
        return None
    tload_b, tload_t, compare, jne = block.instrs[-4:]
    if not (tload_b.instr.op == Op.TLOAD_RI
            and tload_b.instr.operands[0] == Reg.RDI
            and tload_t.instr.op == Op.TLOAD_RR
            and tload_t.instr.operands[0] == Reg.RSI
            and compare.instr.op == Op.CMP_RR
            and tuple(compare.instr.operands) == (Reg.RDI, Reg.RSI)
            and jne.instr.op == Op.JNE):
        return None
    if _rel_hole(jne, image):
        return None
    return Guard(
        block=block.label, start=tload_b.address,
        reg=tload_t.instr.operands[1],
        bary_field=tload_b.address + 2,
        check_addr=jne.instr.branch_target(jne.address),
        fallthrough=jne.end)


def _validate_chain(cfg: BinaryCfg, guard: Guard,
                    suffix_of: Dict[str, Guard]) -> None:
    """Prove the guard's Check/Halt chain intact (sets ``intact``)."""

    def fail(reason: str) -> None:
        guard.reason = reason

    check = cfg.block_of(guard.check_addr)
    if check is None or len(check.instrs) != 2:
        return fail("jne does not reach a testb1/je check block")
    testb, je = check.instrs
    if not (testb.instr.op == Op.TESTB1
            and testb.instr.operands[0] == Reg.RSI
            and je.instr.op == Op.JE):
        return fail("check block is not the testb1 %rsi / je pair")
    halt_addr = je.instr.branch_target(je.address)
    halt = cfg.block_of(halt_addr)
    if halt is None or not halt.instrs \
            or halt.instrs[0].instr.op != Op.HLT:
        return fail("validity-check failure path does not halt")

    retry = cfg.block_of(je.end)
    if retry is None or len(retry.instrs) != 2:
        return fail("je does not fall through to a cmpw/jne retry block")
    cmpw, jne2 = retry.instrs
    if not (cmpw.instr.op == Op.CMPW_RR
            and tuple(cmpw.instr.operands) == (Reg.RDI, Reg.RSI)
            and jne2.instr.op == Op.JNE):
        return fail("retry block is not the cmpw rdi, rsi / jne pair")
    try_addr = jne2.instr.branch_target(jne2.address)
    try_label = cfg.block_at.get(try_addr)
    try_guard = suffix_of.get(try_label) if try_label else None
    if try_guard is None or try_guard.bary_field != guard.bary_field \
            or try_guard.reg != guard.reg:
        return fail("version retry does not re-enter the same guard")
    fall = cfg.block_of(jne2.end)
    if fall is None or not fall.instrs \
            or fall.instrs[0].instr.op != Op.HLT:
        return fail("version-mismatch failure path does not halt")

    guard.intact = True
    guard.span = (guard.start, halt.instrs[0].end)


def _rpo(cfg: BinaryCfg) -> List[str]:
    """Reverse postorder from the synthetic entry; unreachable blocks
    appended in address order (the solver leaves them stateless)."""
    seen = set()
    post: List[str] = []
    stack: List[Tuple[str, int]] = [(ENTRY, 0)]
    seen.add(ENTRY)
    while stack:
        label, index = stack[-1]
        succs = cfg.successors[label]
        if index < len(succs):
            stack[-1] = (label, index + 1)
            succ = succs[index]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            post.append(label)
    rpo = list(reversed(post))
    rest = [label for label in cfg.blocks if label not in seen]

    def start_of(label: str) -> int:
        block = cfg.blocks[label]
        return getattr(block, "start", 0)

    rpo.extend(sorted(rest, key=start_of))
    return rpo
