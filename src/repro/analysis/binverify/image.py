"""What the binary verifier sees: an :class:`ImageSpec`.

Both verification grains — a fully linked :class:`McfiModule` and a
single relocatable :class:`~repro.build.units.UnitArtifact` — reduce to
the same shape: bytes, code ranges, reachability roots, declared
indirect-branch targets, and the Bary immediate fields the loader will
patch.  The analysis itself (:mod:`repro.analysis.binverify.passes`)
never looks at anything else, which is what lets one abstract
interpreter gate both the build cache and ``dlopen``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.build.units import UnitArtifact
from repro.module.module import McfiModule


@dataclass
class ImageSpec:
    """One verifiable image plus its trusted auxiliary facts.

    ``roots`` are the addresses control can legally enter at: function
    entries, return sites, setjmp resumes, switch targets, PLT stubs.
    Under CFI, every runtime indirect-branch target has a Tary entry
    and every Tary entry comes from this set, so code unreachable from
    the roots (alignment padding, dead blocks) cannot execute — the
    properties are proved over the reachable portion while disassembly
    stays complete.
    """

    name: str
    arch: str
    base: int
    code: bytes
    #: absolute ``[start, end)`` instruction ranges (jump tables excluded)
    code_ranges: List[Tuple[int, int]]
    roots: FrozenSet[int]
    #: declared indirect-branch targets (must be 4-aligned boundaries)
    aux_targets: List[int]
    #: every declared label address (legal direct-branch landing spots)
    label_addrs: FrozenSet[int]
    #: absolute addresses of the 4-byte Bary immediates the loader patches
    bary_fields: List[int]
    #: declared check-transaction (branch-site) count
    n_sites: int
    #: sorted (entry, name) pairs for diagnostic attribution
    functions: List[Tuple[int, str]] = field(default_factory=list)
    #: absolute addresses of unresolved rel32 fields (units only; the
    #: holes assemble to 0 and are skipped by target checks)
    rel32_holes: FrozenSet[int] = frozenset()
    #: True for a single pre-link unit (cross-unit edges unresolved)
    partial: bool = False
    #: False when the image's final placement alignment is unknown
    #: (a unit whose lead alignment is not a multiple of 4), in which
    #: case 4-alignment is left to the post-link module pass
    alignment_known: bool = True

    @property
    def limit(self) -> int:
        return self.base + len(self.code)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def function_at(self, address: int) -> str:
        """Name of the function whose entry most closely precedes
        ``address`` (best-effort attribution for diagnostics)."""
        if not self.functions:
            return self.name
        entries = [entry for entry, _ in self.functions]
        index = bisect.bisect_right(entries, address) - 1
        if index < 0:
            return self.functions[0][1]
        return self.functions[index][1]


def image_of_module(module: McfiModule) -> ImageSpec:
    """The post-link verification grain: one loadable module."""
    aux = module.aux
    roots = set()
    aux_targets: List[int] = []
    for func in aux.functions.values():
        aux_targets.append(func.entry)
    for retsite in aux.retsites:
        aux_targets.append(retsite.address)
    aux_targets.extend(aux.setjmp_resumes)
    for site in aux.branch_sites:
        aux_targets.extend(site.targets)
    roots.update(aux_targets)
    for label, address in module.labels.items():
        if label.startswith("__plt."):
            roots.add(address)
    functions = sorted((f.entry, f.name) for f in aux.functions.values())
    return ImageSpec(
        name=module.name, arch=module.arch, base=module.base,
        code=bytes(module.code), code_ranges=list(module.code_ranges),
        roots=frozenset(roots), aux_targets=sorted(set(aux_targets)),
        label_addrs=frozenset(module.labels.values()),
        bary_fields=sorted(module.base + offset
                           for offset in module.bary_slots.values()),
        n_sites=len(aux.branch_sites), functions=functions)


def image_of_unit(artifact: UnitArtifact, arch: str = "x64") -> ImageSpec:
    """The pre-link verification grain: one compilation unit at base 0.

    Cross-unit references are unresolved relocation holes; direct
    branches through a hole are exempt from the target-discipline check
    (the post-link module pass re-proves them), everything intra-unit —
    check transactions, masks, alignment — is proved here, before the
    artifact may be published to the shared build cache.
    """
    labels = artifact.labels
    size = len(artifact.code)

    jt_starts: Dict[object, int] = {}
    jt_ends: Dict[object, int] = {}
    retsites: List[int] = []
    for kind, info, offset in artifact.marks:
        if kind == "jt_start":
            jt_starts[info] = offset
        elif kind == "jt_end":
            jt_ends[info] = offset
        elif kind == "retsite":
            retsites.append(offset)
    data_ranges = sorted((start, jt_ends[key])
                         for key, start in jt_starts.items())
    code_ranges: List[Tuple[int, int]] = []
    cursor = 0
    for start, end in data_ranges:
        if start > cursor:
            code_ranges.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < size:
        code_ranges.append((cursor, size))

    roots = {0}
    roots.add(labels.get(artifact.fn, 0))
    roots.update(retsites)
    for label in artifact.setjmp_resumes:
        roots.add(labels[label])
    aux_targets = set(roots)
    for site in artifact.sites:
        for target in site.targets:
            address = labels[target]
            roots.add(address)
            aux_targets.add(address)

    holes = frozenset(offset for offset, kind, _ref, _extra
                      in artifact.relocs if kind == "rel32")
    return ImageSpec(
        name=artifact.fn, arch=arch, base=0, code=bytes(artifact.code),
        code_ranges=code_ranges, roots=frozenset(roots),
        aux_targets=sorted(aux_targets),
        label_addrs=frozenset(labels.values()),
        bary_fields=sorted(offset for _site, offset in artifact.bary_slots),
        n_sites=len(artifact.sites),
        functions=[(labels.get(artifact.fn, 0), artifact.fn)],
        rel32_holes=holes, partial=True,
        alignment_known=artifact.lead_align % 4 == 0)
