"""Abstract interpretation of MIR: function-pointer and provenance facts.

One flow-sensitive forward analysis computes, per program point, an
abstract value for every virtual register plus the contents of
*tracked* memory cells:

* **Locals** are tracked when their address provably never escapes the
  direct ``LocalAddr`` → ``Load``/``Store`` pattern (the escape
  pre-pass below).  A tracked local behaves like an unaliasable cell —
  the same assumption compilers make for non-escaping allocas.
* **Globals** are tracked optimistically between calls: a direct
  8-byte store through ``GlobalAddr`` records the stored value, and
  any call, syscall, or store through an unknown pointer kills every
  global fact (another module, thread, or aliased pointer may have
  written them).

The value lattice (top to bottom)::

        TOP  (anything)
       /   |    \\
    FUNCS  INT   PTR/ADDR     -- join of unequal kinds is TOP
       \\   |    /
        (bottom = absence of a state; never materialized)

* ``FUNCS{f, ...}`` — a code pointer to one of the named functions;
* ``INT`` — a value with *no* pointer provenance (constants,
  arithmetic over INTs, comparison results);
* ``ADDR(space, name)`` — the address of exactly one known cell
  (a local slot, a global, or a string blob);
* ``PTR`` — some legitimate data pointer (address arithmetic,
  unknown loads stay ``TOP`` instead: they may hold anything).

Function-pointer sets are capped at :data:`MAX_FUNCS` members; larger
unions widen to ``TOP``.  Functions using setjmp/longjmp are not
analyzed (see :func:`~repro.analysis.dataflow.cfg.uses_nonlocal_flow`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.dataflow.cfg import BlockCfg, build_cfg, \
    uses_nonlocal_flow
from repro.analysis.dataflow.solver import DataflowProblem, solve
from repro.mir import ir

#: function-pointer sets larger than this widen to TOP
MAX_FUNCS = 8

# value kinds
TOP = "top"
INT = "int"
PTR = "ptr"
ADDR = "addr"
FUNCS = "funcs"


@dataclass(frozen=True)
class Value:
    """One abstract value; construct via the helpers below."""

    kind: str
    names: frozenset = frozenset()   # FUNCS members
    space: str = ""                  # ADDR: 'local' | 'global' | 'str'
    name: str = ""                   # ADDR: cell name


VAL_TOP = Value(TOP)
VAL_INT = Value(INT)
VAL_PTR = Value(PTR)


def funcs(*names: str) -> Value:
    return Value(FUNCS, names=frozenset(names))


def addr(space: str, name: str) -> Value:
    return Value(ADDR, space=space, name=name)


def join_values(a: Value, b: Value) -> Value:
    if a == b:
        return a
    if a.kind == FUNCS and b.kind == FUNCS:
        merged = a.names | b.names
        if len(merged) <= MAX_FUNCS:
            return Value(FUNCS, names=merged)
        return VAL_TOP
    pointerish = (PTR, ADDR)
    if a.kind in pointerish and b.kind in pointerish:
        return VAL_PTR
    return VAL_TOP


# ---------------------------------------------------------------------------
# Abstract state: vregs + tracked locals + optimistic global facts.
# Only non-TOP entries are stored, so two states are equal iff their
# dicts are equal and the join is a key-wise intersection.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsState:
    regs: Tuple[Tuple[int, Value], ...]
    locals: Tuple[Tuple[str, Value], ...]
    globals: Tuple[Tuple[str, Value], ...]


class _MutState:
    """Mutable working copy used inside transfer functions."""

    __slots__ = ("regs", "locals", "globals")

    def __init__(self, state: AbsState) -> None:
        self.regs: Dict[int, Value] = dict(state.regs)
        self.locals: Dict[str, Value] = dict(state.locals)
        self.globals: Dict[str, Value] = dict(state.globals)

    def freeze(self) -> AbsState:
        return AbsState(
            regs=tuple(sorted(self.regs.items())),
            locals=tuple(sorted(self.locals.items())),
            globals=tuple(sorted(self.globals.items())))

    # -- accessors ---------------------------------------------------------

    def reg(self, vreg: int) -> Value:
        return self.regs.get(vreg, VAL_TOP)

    def set_reg(self, vreg: int, value: Value) -> None:
        if value.kind == TOP:
            self.regs.pop(vreg, None)
        else:
            self.regs[vreg] = value

    def set_local(self, name: str, value: Value) -> None:
        if value.kind == TOP:
            self.locals.pop(name, None)
        else:
            self.locals[name] = value

    def set_global(self, name: str, value: Value) -> None:
        if value.kind == TOP:
            self.globals.pop(name, None)
        else:
            self.globals[name] = value

    def kill_globals(self) -> None:
        self.globals.clear()


def _join_maps(a, b):
    out = {}
    b_map = dict(b)
    for key, value in a:
        other = b_map.get(key)
        if other is None:
            continue
        joined = join_values(value, other)
        if joined.kind != TOP:
            out[key] = joined
    return tuple(sorted(out.items()))


def join_states(a: AbsState, b: AbsState) -> AbsState:
    return AbsState(regs=_join_maps(a.regs, b.regs),
                    locals=_join_maps(a.locals, b.locals),
                    globals=_join_maps(a.globals, b.globals))


# ---------------------------------------------------------------------------
# Escape pre-pass
# ---------------------------------------------------------------------------


def _vreg_uses(inst: ir.Inst) -> List[int]:
    """Virtual registers an instruction reads (not defines)."""
    if isinstance(inst, ir.Copy):
        return [inst.src]
    if isinstance(inst, ir.Load):
        return [inst.addr]
    if isinstance(inst, ir.Store):
        return [inst.addr, inst.src]
    if isinstance(inst, (ir.BinOp, ir.Cmp)):
        return [inst.left, inst.right]
    if isinstance(inst, ir.UnOp):
        return [inst.src]
    if isinstance(inst, (ir.IntToFloat, ir.FloatToInt)):
        return [inst.src]
    if isinstance(inst, ir.Call):
        return list(inst.args)
    if isinstance(inst, ir.CallInd):
        return [inst.pointer] + list(inst.args)
    if isinstance(inst, ir.Syscall):
        return list(inst.args)
    if isinstance(inst, ir.SetjmpInst):
        return [inst.buf]
    if isinstance(inst, ir.LongjmpInst):
        return [inst.buf, inst.value]
    if isinstance(inst, ir.CondBr):
        return [inst.left, inst.right]
    if isinstance(inst, ir.SwitchBr):
        return [inst.value]
    if isinstance(inst, ir.Ret):
        return [] if inst.value is None else [inst.value]
    return []


def _vreg_def(inst: ir.Inst) -> Optional[int]:
    """The virtual register an instruction defines, if any."""
    dst = getattr(inst, "dst", None)
    return dst if isinstance(dst, int) else None


def tracked_locals(func: ir.MirFunction) -> frozenset:
    """Locals whose address never escapes direct load/store use.

    A local is tracked iff every vreg holding its address (a) is
    defined *only* by ``LocalAddr`` of that same local and (b) is used
    *only* as the address operand of ``Load``/``Store``.
    """
    addr_vregs: Dict[int, str] = {}     # vreg -> the single local, or ''
    escaped = set()
    for block in func.blocks:
        for inst in block.instrs:
            if isinstance(inst, ir.LocalAddr):
                prior = addr_vregs.get(inst.dst)
                if prior is not None and prior != inst.local:
                    escaped.add(prior)
                    escaped.add(inst.local)
                addr_vregs[inst.dst] = inst.local
    for block in func.blocks:
        for inst in block.instrs:
            dst = _vreg_def(inst)
            if dst is not None and dst in addr_vregs and \
                    not isinstance(inst, ir.LocalAddr):
                escaped.add(addr_vregs[dst])
            for vreg in _vreg_uses(inst):
                if vreg not in addr_vregs:
                    continue
                ok = (isinstance(inst, ir.Load) and vreg == inst.addr) or \
                    (isinstance(inst, ir.Store) and vreg == inst.addr
                     and vreg != inst.src)
                if not ok:
                    escaped.add(addr_vregs[vreg])
    return frozenset(set(func.locals) - escaped)


# ---------------------------------------------------------------------------
# Transfer function + per-function analysis driver
# ---------------------------------------------------------------------------


def _transfer_inst(inst: ir.Inst, state: _MutState,
                   tracked: frozenset) -> None:
    if isinstance(inst, ir.Const):
        state.set_reg(inst.dst, VAL_INT)
    elif isinstance(inst, ir.ConstStr):
        state.set_reg(inst.dst, addr("str", str(inst.sid)))
    elif isinstance(inst, ir.GlobalAddr):
        state.set_reg(inst.dst, addr("global", inst.name))
    elif isinstance(inst, ir.FuncAddr):
        state.set_reg(inst.dst, funcs(inst.name))
    elif isinstance(inst, ir.LocalAddr):
        state.set_reg(inst.dst, addr("local", inst.local))
    elif isinstance(inst, ir.Copy):
        state.set_reg(inst.dst, state.reg(inst.src))
    elif isinstance(inst, ir.Load):
        source = state.reg(inst.addr)
        loaded = VAL_TOP
        if inst.width == 8 and source.kind == ADDR:
            if source.space == "local" and source.name in tracked:
                loaded = state.locals.get(source.name, VAL_TOP)
            elif source.space == "global":
                loaded = state.globals.get(source.name, VAL_TOP)
        state.set_reg(inst.dst, loaded)
    elif isinstance(inst, ir.Store):
        target = state.reg(inst.addr)
        stored = state.reg(inst.src) if inst.width == 8 else VAL_TOP
        if target.kind == ADDR and target.space == "local":
            if target.name in tracked:
                state.set_local(target.name, stored)
        elif target.kind == ADDR and target.space == "global":
            state.set_global(target.name, stored)
        elif target.kind == ADDR:
            pass                      # a string blob: aliases nothing we track
        else:
            # Store through an arbitrary pointer: any global may have
            # been written.  Tracked locals survive — their address was
            # never computed, so no legitimate pointer reaches them.
            state.kill_globals()
    elif isinstance(inst, ir.BinOp):
        left, right = state.reg(inst.left), state.reg(inst.right)
        kinds = {left.kind, right.kind}
        if kinds == {INT}:
            state.set_reg(inst.dst, VAL_INT)
        elif inst.op in ("add", "sub") and kinds <= {INT, PTR, ADDR} \
                and kinds != {INT}:
            state.set_reg(inst.dst, VAL_PTR)
        else:
            state.set_reg(inst.dst, VAL_TOP)
    elif isinstance(inst, ir.UnOp):
        source = state.reg(inst.src)
        state.set_reg(inst.dst,
                      VAL_INT if source.kind == INT else VAL_TOP)
    elif isinstance(inst, ir.Cmp):
        state.set_reg(inst.dst, VAL_INT)
    elif isinstance(inst, (ir.IntToFloat, ir.FloatToInt)):
        state.set_reg(inst.dst, VAL_INT)
    elif isinstance(inst, (ir.Call, ir.CallInd, ir.Syscall)):
        state.kill_globals()
        dst = _vreg_def(inst)
        if dst is not None:
            state.set_reg(dst, VAL_TOP)
    elif isinstance(inst, ir.SetjmpInst):
        state.set_reg(inst.dst, VAL_INT)
    # LongjmpInst and terminators leave the state unchanged.


@dataclass
class FunctionFacts:
    """Fixpoint facts for one function.

    ``block_in`` maps reachable block labels to the abstract state at
    block entry; :meth:`walk` replays the transfer function through a
    block, yielding the state *before* each instruction.  ``analyzed``
    is False for setjmp/longjmp functions, whose maps stay empty.
    """

    func: ir.MirFunction
    cfg: BlockCfg
    tracked: frozenset
    analyzed: bool
    block_in: Dict[str, AbsState] = field(default_factory=dict)
    iterations: int = 0

    def walk(self, label: str) -> Iterator[Tuple[int, ir.Inst, _MutState]]:
        """Yield ``(index, inst, state-before-inst)`` through a block."""
        entry_state = self.block_in.get(label)
        if entry_state is None:
            return
        state = _MutState(entry_state)
        for index, inst in enumerate(self.cfg.blocks[label].instrs):
            yield index, inst, state
            _transfer_inst(inst, state, self.tracked)

    def resolve_callind(self, label: str,
                        index: int) -> Optional[frozenset]:
        """Proven callee set for the CallInd at (label, index), or None."""
        for position, inst, state in self.walk(label):
            if position == index:
                if not isinstance(inst, ir.CallInd):
                    raise TypeError(f"{label}[{index}] is not a CallInd")
                value = state.reg(inst.pointer)
                if value.kind == FUNCS:
                    return value.names
                return None
        return None


def analyze_function(func: ir.MirFunction) -> FunctionFacts:
    """Run the fixpoint for one function (skipping setjmp users)."""
    cfg = build_cfg(func)
    if uses_nonlocal_flow(func):
        return FunctionFacts(func=func, cfg=cfg, tracked=frozenset(),
                             analyzed=False)
    tracked = tracked_locals(func)

    def transfer(label: str, block: ir.BasicBlock,
                 state: AbsState) -> AbsState:
        working = _MutState(state)
        for inst in block.instrs:
            _transfer_inst(inst, working, tracked)
        return working.freeze()

    empty = AbsState(regs=(), locals=(), globals=())
    problem = DataflowProblem(direction="forward", boundary=empty,
                              join=join_states, transfer=transfer)
    solution = solve(cfg, problem)
    return FunctionFacts(func=func, cfg=cfg, tracked=tracked,
                         analyzed=True, block_in=solution.inputs,
                         iterations=solution.iterations)
