"""Function-pointer points-to resolution and devirtualization.

Built on the abstract interpreter in
:mod:`repro.analysis.dataflow.absint`: for every indirect call the
pass asks what the pointer may hold at that program point.

* A **singleton** set whose member is a module-local function with a
  type-compatible signature turns the ``CallInd`` into a direct
  :class:`~repro.mir.ir.Call` — the MCFI check transaction disappears
  from that site (fewer dynamic TxChecks) and the return site gains a
  named callee.  The ``FuncAddr`` that took the function's address is
  untouched, so the address-taken set — and with it the Tary table —
  is unchanged.
* A **small set** (or a singleton that cannot be safely rewritten)
  becomes a ``targets_hint`` on the ``CallInd``.  The hint rides the
  pipeline into the auxiliary info, where the CFG generator intersects
  it with the type-matched target set, splitting equivalence classes.

Rewrites preserve MCFI semantics exactly: a singleton is only
devirtualized when the CFG generator would have allowed the transfer
(``signatures_match``); otherwise the indirect call — and its halting
check — stays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow.absint import FunctionFacts, analyze_function
from repro.mir import ir
from repro.obs import OBS
from repro.tinyc.types import FuncSig, signatures_match

#: hints larger than this are dropped (they would split no classes in
#: practice and bloat the auxiliary info)
MAX_HINT = 8


@dataclass(frozen=True)
class CallSite:
    """One indirect call with its resolution."""

    function: str
    block: str
    index: int
    targets: Optional[Tuple[str, ...]]   # sorted names, or None (unknown)
    devirtualized: bool = False
    hinted: bool = False


@dataclass
class PointsToReport:
    """Module-level outcome of the points-to pass."""

    module: str
    sites: List[CallSite] = field(default_factory=list)

    KIND = "pointsto"

    @property
    def indirect_calls(self) -> int:
        return len(self.sites)

    @property
    def resolved(self) -> List[CallSite]:
        return [s for s in self.sites if s.targets is not None]

    @property
    def devirtualized(self) -> List[CallSite]:
        return [s for s in self.sites if s.devirtualized]

    @property
    def hinted(self) -> List[CallSite]:
        return [s for s in self.sites if s.hinted]

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.KIND,
            "module": self.module,
            "indirect_calls": self.indirect_calls,
            "resolved": len(self.resolved),
            "devirtualized": len(self.devirtualized),
            "hinted": len(self.hinted),
            "sites": [{
                "function": s.function, "block": s.block,
                "index": s.index,
                "targets": list(s.targets) if s.targets is not None
                else None,
                "devirtualized": s.devirtualized, "hinted": s.hinted,
            } for s in self.sites],
        }


def resolve_module(module: ir.MirModule) -> Dict[str, FunctionFacts]:
    """Run the abstract interpreter over every function of a module."""
    return {func.name: analyze_function(func)
            for func in module.functions}


def _module_sigs(module: ir.MirModule) -> Dict[str, FuncSig]:
    return {func.name: FuncSig.of(func.ftype)
            for func in module.functions}


def devirtualize_module(module: ir.MirModule,
                        facts: Optional[Dict[str, FunctionFacts]] = None,
                        ) -> PointsToReport:
    """Apply points-to results to a module's MIR, in place.

    Returns the per-site report; the module is modified only where a
    rewrite or hint is proven sound.
    """
    with OBS.tracer.span("dataflow.pointsto", module=module.name) as span:
        report = _devirtualize(module, facts)
        span.set(indirect_calls=report.indirect_calls,
                 devirtualized=len(report.devirtualized),
                 hinted=len(report.hinted))
        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter("dataflow.pointsto.sites").inc(
                report.indirect_calls)
            metrics.counter("dataflow.pointsto.devirtualized").inc(
                len(report.devirtualized))
            metrics.counter("dataflow.pointsto.hinted").inc(
                len(report.hinted))
        return report


def _devirtualize(module: ir.MirModule,
                  facts: Optional[Dict[str, FunctionFacts]],
                  ) -> PointsToReport:
    if facts is None:
        facts = resolve_module(module)
    sigs = _module_sigs(module)
    report = PointsToReport(module=module.name)

    for func in module.functions:
        func_facts = facts[func.name]
        for block in func.blocks:
            # Collect first: rewriting must not disturb the walk.
            indirect = [(i, inst) for i, inst in enumerate(block.instrs)
                        if isinstance(inst, ir.CallInd)]
            if not indirect:
                continue
            resolutions = {}
            if func_facts.analyzed:
                wanted = {i for i, _ in indirect}
                for position, inst, state in func_facts.walk(block.label):
                    if position in wanted:
                        value = state.reg(inst.pointer)
                        if value.kind == "funcs":
                            resolutions[position] = value.names
            for index, inst in indirect:
                names = resolutions.get(index)
                if names is None or not names:
                    report.sites.append(CallSite(
                        function=func.name, block=block.label,
                        index=index, targets=None))
                    continue
                targets = tuple(sorted(names))
                single = targets[0] if len(targets) == 1 else None
                callee_sig = sigs.get(single) if single else None
                if single is not None and callee_sig is not None and \
                        signatures_match(inst.sig, callee_sig):
                    block.instrs[index] = ir.Call(
                        dst=inst.dst, callee=single,
                        args=list(inst.args), tail=inst.tail)
                    report.sites.append(CallSite(
                        function=func.name, block=block.label,
                        index=index, targets=targets,
                        devirtualized=True))
                elif len(targets) <= MAX_HINT:
                    inst.targets_hint = targets
                    report.sites.append(CallSite(
                        function=func.name, block=block.label,
                        index=index, targets=targets, hinted=True))
                else:
                    report.sites.append(CallSite(
                        function=func.name, block=block.label,
                        index=index, targets=targets))
    return report
