"""MIR dataflow plane: CFGs, fixpoints, points-to, and lints.

Public surface:

* :func:`~repro.analysis.dataflow.cfg.build_cfg` /
  :class:`~repro.analysis.dataflow.cfg.BlockCfg` — basic-block CFGs
  over :class:`~repro.mir.ir.MirFunction`;
* :func:`~repro.analysis.dataflow.solver.solve` /
  :class:`~repro.analysis.dataflow.solver.DataflowProblem` — the
  generic worklist fixpoint engine (forward and backward);
* :func:`~repro.analysis.dataflow.absint.analyze_function` — the
  function-pointer/provenance abstract interpreter;
* :func:`~repro.analysis.dataflow.pointsto.devirtualize_module` — the
  CFG-sharpening points-to pass (direct-call rewrites + target hints);
* :func:`~repro.analysis.dataflow.lints.run_lints` — the lint driver
  producing stable ``MCFI00x`` diagnostics;
* :mod:`~repro.analysis.dataflow.diagnostics` — diagnostic codes,
  serialization, and the checked-in baseline format.
"""

from repro.analysis.dataflow.absint import (AbsState, FunctionFacts,
                                            analyze_function,
                                            tracked_locals)
from repro.analysis.dataflow.cfg import (BlockCfg, build_cfg,
                                         uses_nonlocal_flow)
from repro.analysis.dataflow.diagnostics import (CODES, Baseline,
                                                 Diagnostic, LintReport,
                                                 sorted_diagnostics)
from repro.analysis.dataflow.lints import (deadcode_pass, run_lints,
                                           sandbox_store_pass)
from repro.analysis.dataflow.pointsto import (CallSite, PointsToReport,
                                              devirtualize_module,
                                              resolve_module)
from repro.analysis.dataflow.solver import DataflowProblem, Solution, solve

__all__ = [
    "AbsState", "Baseline", "BlockCfg", "CODES", "CallSite",
    "DataflowProblem", "Diagnostic", "FunctionFacts", "LintReport",
    "PointsToReport", "Solution", "analyze_function", "build_cfg",
    "deadcode_pass", "devirtualize_module", "resolve_module",
    "run_lints", "sandbox_store_pass", "sorted_diagnostics", "solve",
    "tracked_locals", "uses_nonlocal_flow",
]
