"""Generic worklist fixpoint solver over a :class:`BlockCfg`.

A dataflow problem supplies the lattice (``bottom`` is represented by
the absence of a state — blocks are unreached until first visited),
the ``join`` for merging states at control-flow confluences, and the
``transfer`` function mapping a block's input state to its output
state.  The solver handles forward and backward directions; for a
backward problem the CFG edges are conceptually reversed and the
boundary state applies at every exit block.

States are treated as immutable values: ``transfer`` and ``join`` must
return fresh states (or the same object when nothing changed), and
``equals`` decides convergence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.analysis.dataflow.cfg import BlockCfg

State = Any


@dataclass
class DataflowProblem:
    """One dataflow analysis: direction, lattice ops, transfer.

    ``transfer(label, block, state)`` consumes the state at block entry
    (forward) or block exit (backward) and returns the state at the
    other end.  ``boundary`` is the state entering the CFG (at the
    entry block, or at every exit block for backward problems).
    """

    direction: str                                  # 'forward' | 'backward'
    boundary: State
    join: Callable[[State, State], State]
    transfer: Callable[[str, Any, State], State]
    equals: Callable[[State, State], bool] = lambda a, b: a == b

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "backward"):
            raise ValueError(f"unknown direction {self.direction!r}")


@dataclass
class Solution:
    """Fixpoint states per reachable block.

    ``inputs[label]`` is the state at the block's analysis entry (block
    start for forward problems, block end for backward problems);
    ``outputs[label]`` the state after ``transfer``.  Unreachable
    blocks appear in neither map.
    """

    inputs: Dict[str, State]
    outputs: Dict[str, State]
    iterations: int = 0


def solve(cfg: BlockCfg, problem: DataflowProblem) -> Solution:
    """Run the worklist algorithm to fixpoint; deterministic order."""
    forward = problem.direction == "forward"
    if forward:
        order = list(cfg.rpo)
        edges_in = cfg.predecessors
        edges_out = cfg.successors
        roots = {cfg.entry}
    else:
        order = list(reversed(cfg.rpo))
        edges_in = cfg.successors
        edges_out = cfg.predecessors
        roots = set(cfg.exits)

    position = {label: index for index, label in enumerate(order)}
    inputs: Dict[str, State] = {}
    outputs: Dict[str, State] = {}
    pending = deque(order)
    queued = set(order)
    iterations = 0

    while pending:
        label = pending.popleft()
        queued.discard(label)
        iterations += 1

        state: Optional[State] = problem.boundary if label in roots else None
        for other in edges_in[label]:
            if other in outputs:
                other_state = outputs[other]
                state = other_state if state is None \
                    else problem.join(state, other_state)
        if state is None:
            # No analyzed input yet (e.g. a loop body before its header
            # on the first sweep): wait for a predecessor to produce one.
            continue

        old_input = inputs.get(label)
        if old_input is not None and problem.equals(old_input, state):
            continue
        inputs[label] = state
        new_output = problem.transfer(label, cfg.blocks[label], state)
        old_output = outputs.get(label)
        outputs[label] = new_output
        if old_output is not None and problem.equals(old_output, new_output):
            continue
        for succ in sorted(edges_out[label],
                           key=lambda lbl: position.get(lbl, 0)):
            if succ in position and succ not in queued:
                pending.append(succ)
                queued.add(succ)

    return Solution(inputs=inputs, outputs=outputs, iterations=iterations)
