"""Basic-block control-flow graphs over MIR functions.

The CFG is purely structural: nodes are the function's blocks, edges
come from the block terminators (:class:`~repro.mir.ir.Jump`,
:class:`~repro.mir.ir.CondBr`, :class:`~repro.mir.ir.SwitchBr`).  A
:class:`~repro.mir.ir.Ret` has no successors.  ``longjmp`` is *not*
modelled as an edge — passes that would be unsound in the presence of
non-local control transfer must check
:func:`~repro.analysis.dataflow.cfg.uses_nonlocal_flow` and bail out.

Everything here is deterministic: successor tuples preserve terminator
operand order (deduplicated), and traversal orders are derived from the
function's own block order plus those tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.mir import ir


@dataclass
class BlockCfg:
    """The control-flow graph of one :class:`~repro.mir.ir.MirFunction`."""

    function: ir.MirFunction
    entry: str
    blocks: Dict[str, ir.BasicBlock]
    successors: Dict[str, Tuple[str, ...]]
    predecessors: Dict[str, Tuple[str, ...]]
    #: blocks reachable from the entry, in reverse postorder
    rpo: List[str] = field(default_factory=list)

    @property
    def reachable(self) -> frozenset:
        return frozenset(self.rpo)

    @property
    def exits(self) -> Tuple[str, ...]:
        """Reachable blocks with no successors (function exits)."""
        return tuple(label for label in self.rpo
                     if not self.successors[label])

    def unreachable_blocks(self) -> List[str]:
        """Labels never reached from the entry, in layout order."""
        reachable = self.reachable
        return [block.label for block in self.function.blocks
                if block.label not in reachable]


def _successors_of(block: ir.BasicBlock) -> Tuple[str, ...]:
    term = block.terminator
    refs: Tuple[str, ...] = ()
    if isinstance(term, ir.Jump):
        refs = (term.target,)
    elif isinstance(term, ir.CondBr):
        refs = (term.then_block, term.else_block)
    elif isinstance(term, ir.SwitchBr):
        refs = tuple(term.targets) + (term.default,)
    # Ret (or a missing terminator on malformed input): no successors.
    seen = set()
    out = []
    for ref in refs:
        if ref not in seen:
            seen.add(ref)
            out.append(ref)
    return tuple(out)


def build_cfg(func: ir.MirFunction) -> BlockCfg:
    """Construct the block CFG (entry = the function's first block)."""
    if not func.blocks:
        raise ValueError(f"{func.name}: cannot build a CFG with no blocks")
    blocks = {block.label: block for block in func.blocks}
    successors = {label: _successors_of(block)
                  for label, block in blocks.items()}
    predecessors: Dict[str, List[str]] = {label: [] for label in blocks}
    for label, succs in successors.items():
        for succ in succs:
            predecessors[succ].append(label)

    entry = func.blocks[0].label
    rpo = _reverse_postorder(entry, successors)
    return BlockCfg(
        function=func, entry=entry, blocks=blocks, successors=successors,
        predecessors={label: tuple(preds)
                      for label, preds in predecessors.items()},
        rpo=rpo)


def _reverse_postorder(entry: str,
                       successors: Dict[str, Tuple[str, ...]]) -> List[str]:
    """Iterative DFS postorder from ``entry``, reversed."""
    postorder: List[str] = []
    visited = {entry}
    # (label, next successor index) — an explicit stack keeps deep CFGs
    # from hitting the recursion limit.
    stack: List[List[object]] = [[entry, 0]]
    while stack:
        frame = stack[-1]
        label, index = frame  # type: ignore[misc]
        succs = successors[label]
        if index < len(succs):
            frame[1] = index + 1
            succ = succs[index]
            if succ not in visited:
                visited.add(succ)
                stack.append([succ, 0])
        else:
            postorder.append(label)
            stack.pop()
    return list(reversed(postorder))


def uses_nonlocal_flow(func: ir.MirFunction) -> bool:
    """True when the function contains setjmp/longjmp.

    Control may re-enter mid-block at a setjmp resume point with state
    the block CFG cannot describe, so flow-sensitive value passes must
    treat such functions as opaque.
    """
    for block in func.blocks:
        for inst in block.instrs:
            if isinstance(inst, (ir.SetjmpInst, ir.LongjmpInst)):
                return True
    return False
