"""Lint passes over MIR, built on the dataflow engine.

Three passes, each wrapped in an obs span so ``--trace`` shows where
lint time goes:

* :func:`deadcode_pass` — MCFI001 (unreachable blocks, from the block
  CFG) and MCFI002 (pure definitions whose result is provably never
  used, from a *backward* liveness fixpoint);
* :func:`sandbox_store_pass` — MCFI003/MCFI004: stores whose address
  provably has no data-pointer provenance (a bare integer, or a code
  pointer).  Such stores can never be derived from a maskable sandbox
  base, so they would either trap or corrupt the low 4 GB after the
  instrumentation masks them — the source-locatable complement of the
  binary verifier's write-sandboxing check;
* :func:`run_lints` — the driver producing one sorted, deterministic
  :class:`~repro.analysis.dataflow.diagnostics.LintReport` per module.

Functions using setjmp/longjmp are skipped by the value-sensitive
passes (their flow cannot be summarized by the block CFG); unreachable
-block linting is purely structural and still applies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.analysis.dataflow.absint import FunctionFacts, _vreg_def, \
    _vreg_uses, analyze_function
from repro.analysis.dataflow.cfg import build_cfg
from repro.analysis.dataflow.diagnostics import Diagnostic, LintReport, \
    sorted_diagnostics
from repro.analysis.dataflow.solver import DataflowProblem, solve
from repro.mir import ir
from repro.obs import OBS

#: instruction types with no side effect: dead when their dst is dead
_PURE_DEFS = (ir.Const, ir.ConstStr, ir.GlobalAddr, ir.FuncAddr,
              ir.LocalAddr, ir.Copy, ir.BinOp, ir.UnOp, ir.Cmp,
              ir.IntToFloat, ir.FloatToInt, ir.Load)


def _function_facts(module: ir.MirModule,
                    facts: Optional[Dict[str, FunctionFacts]],
                    ) -> Dict[str, FunctionFacts]:
    if facts is None:
        facts = {func.name: analyze_function(func)
                 for func in module.functions}
    return facts


# ---------------------------------------------------------------------------
# MCFI001 / MCFI002
# ---------------------------------------------------------------------------


def _live_in(func: ir.MirFunction) -> Dict[str, FrozenSet[int]]:
    """Backward liveness: vregs live at each reachable block's *end*."""
    cfg = build_cfg(func)

    def transfer(label: str, block: ir.BasicBlock,
                 live: FrozenSet[int]) -> FrozenSet[int]:
        current = set(live)
        for inst in reversed(block.instrs):
            dst = _vreg_def(inst)
            if dst is not None:
                current.discard(dst)
            current.update(_vreg_uses(inst))
        return frozenset(current)

    problem = DataflowProblem(
        direction="backward", boundary=frozenset(),
        join=lambda a, b: a | b, transfer=transfer)
    solution = solve(cfg, problem)
    # ``inputs`` of a backward problem are the states at block *end*.
    return dict(solution.inputs)


def deadcode_pass(module: ir.MirModule) -> List[Diagnostic]:
    """MCFI001 unreachable blocks + MCFI002 unused pure definitions."""
    diags: List[Diagnostic] = []
    for func in module.functions:
        cfg = build_cfg(func)
        for label in cfg.unreachable_blocks():
            block = cfg.blocks[label]
            diags.append(Diagnostic(
                code="MCFI001", unit=module.name, function=func.name,
                block=label, index=0,
                message=f"block {label!r} is unreachable from entry "
                        f"({len(block.instrs)} instruction(s))"))
        live_out = _live_in(func)
        for label in cfg.rpo:
            if label not in live_out:
                # No path from this block to any exit (an infinite
                # loop): the backward fixpoint never reached it, so
                # stay silent rather than under-approximate liveness.
                continue
            live = set(live_out[label])
            block = cfg.blocks[label]
            for index in range(len(block.instrs) - 1, -1, -1):
                inst = block.instrs[index]
                dst = _vreg_def(inst)
                dead = (dst is not None and dst not in live
                        and isinstance(inst, _PURE_DEFS))
                if dst is not None:
                    live.discard(dst)
                live.update(_vreg_uses(inst))
                if dead:
                    diags.append(Diagnostic(
                        code="MCFI002", unit=module.name,
                        function=func.name, block=label, index=index,
                        message=f"result v{dst} of "
                                f"{type(inst).__name__} is never used"))
    return diags


# ---------------------------------------------------------------------------
# MCFI003 / MCFI004
# ---------------------------------------------------------------------------


def sandbox_store_pass(module: ir.MirModule,
                       facts: Optional[Dict[str, FunctionFacts]] = None,
                       ) -> List[Diagnostic]:
    """Flag stores whose address cannot come from a maskable base."""
    facts = _function_facts(module, facts)
    diags: List[Diagnostic] = []
    for func in module.functions:
        func_facts = facts[func.name]
        if not func_facts.analyzed:
            continue
        for label in func_facts.cfg.rpo:
            for index, inst, state in func_facts.walk(label):
                if not isinstance(inst, ir.Store):
                    continue
                value = state.reg(inst.addr)
                if value.kind == "int":
                    diags.append(Diagnostic(
                        code="MCFI003", unit=module.name,
                        function=func.name, block=label, index=index,
                        message=f"store address v{inst.addr} is a bare "
                                f"integer: not derived from any global, "
                                f"local or heap pointer"))
                elif value.kind == "funcs":
                    names = ", ".join(sorted(value.names))
                    diags.append(Diagnostic(
                        code="MCFI004", unit=module.name,
                        function=func.name, block=label, index=index,
                        message=f"store address v{inst.addr} is the "
                                f"address of function(s) {names}: writes "
                                f"into code are never maskable"))
    return diags


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

#: pass name -> callable(module, facts) in stable execution order
LINT_PASSES = (
    ("deadcode", lambda module, facts: deadcode_pass(module)),
    ("sandbox-store", sandbox_store_pass),
)


def run_lints(module: ir.MirModule,
              facts: Optional[Dict[str, FunctionFacts]] = None,
              ) -> LintReport:
    """Run every lint pass over one MIR module; deterministic output."""
    with OBS.tracer.span("dataflow.lint", module=module.name) as span:
        facts = _function_facts(module, facts)
        report = LintReport(unit=module.name)
        for name, lint in LINT_PASSES:
            with OBS.tracer.span(f"dataflow.lint.{name}",
                                 module=module.name) as pass_span:
                found = lint(module, facts)
                pass_span.set(findings=len(found))
            report.pass_counts[name] = len(found)
            report.diagnostics.extend(found)
        report.diagnostics = sorted_diagnostics(report.diagnostics)
        span.set(findings=len(report.diagnostics),
                 errors=len(report.errors))
        if OBS.enabled:
            OBS.metrics.counter("dataflow.lint.findings").inc(
                len(report.diagnostics))
        return report
