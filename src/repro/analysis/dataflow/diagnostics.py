"""Stable lint diagnostics: codes, serialization, baselines.

Every finding a lint pass emits is a :class:`Diagnostic` with a stable
code from :data:`CODES`.  Diagnostics serialize through the repo-wide
``to_dict()``/``from_dict()`` protocol (``kind`` = ``"diagnostic"``)
and order deterministically, so text and JSON output are byte-stable
across runs.

A :class:`Baseline` is a checked-in JSON file recording the accepted
fingerprints per workload.  ``diff`` splits a fresh run into *new*
diagnostics (drift — CI fails on these) and *fixed* fingerprints
(recorded but gone — the baseline should be regenerated).  Baselined
fingerprints act as suppressions: they are excluded from drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: code -> (severity, one-line description)
CODES: Dict[str, Tuple[str, str]] = {
    "MCFI001": ("warning", "unreachable basic block"),
    "MCFI002": ("warning", "pure definition is never used"),
    "MCFI003": ("error", "store address has integer-only provenance "
                         "(not derived from a maskable base)"),
    "MCFI004": ("error", "store through a code (function) address"),
    # MCFI005-008 come from the binary verifier
    # (repro.analysis.binverify): machine-code-level proofs over the
    # disassembled image, not MIR lints.
    "MCFI005": ("error", "indirect branch not dominated by an intact "
                         "check transaction"),
    "MCFI006": ("error", "reachable store through an unmasked base "
                         "register"),
    "MCFI007": ("error", "direct branch/decode discipline violated "
                         "(off-boundary target or incomplete "
                         "disassembly)"),
    "MCFI008": ("error", "table/alignment discipline violated (aux "
                         "targets, Bary slots, transaction count)"),
}

_SEVERITY_RANK = {"error": 0, "warning": 1, "note": 2}


def severity_of(code: str) -> str:
    return CODES[code][0]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding at a stable MIR location."""

    code: str
    unit: str                 # translation unit / workload name
    function: str
    block: str
    index: int                # instruction index within the block
    message: str

    KIND = "diagnostic"

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baselines and suppressions."""
        return (f"{self.code}@{self.unit}:{self.function}:"
                f"{self.block}:{self.index}")

    def render(self) -> str:
        return (f"{self.unit}:{self.function}:{self.block}[{self.index}] "
                f"{self.severity} {self.code}: {self.message}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "code": self.code,
            "severity": self.severity,
            "unit": self.unit,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        return cls(code=data["code"], unit=data["unit"],
                   function=data["function"], block=data["block"],
                   index=data["index"], message=data["message"])


def sort_key(diag: Diagnostic) -> Tuple:
    return (diag.unit, diag.function, diag.block, diag.index,
            _SEVERITY_RANK.get(diag.severity, 9), diag.code)


def sorted_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(diags, key=sort_key)


@dataclass
class LintReport:
    """All diagnostics of one lint run over one unit (workload)."""

    unit: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: pass name -> findings count (stable insertion order)
    pass_counts: Dict[str, int] = field(default_factory=dict)

    KIND = "lint"

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "unit": self.unit,
            "count": len(self.diagnostics),
            "errors": len(self.errors),
            "passes": dict(self.pass_counts),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LintReport":
        return cls(unit=data["unit"],
                   diagnostics=[Diagnostic.from_dict(d)
                                for d in data.get("diagnostics", [])],
                   pass_counts=dict(data.get("passes", {})))


BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Accepted (suppressed) diagnostic fingerprints per workload."""

    workloads: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).exists():
            return cls()
        data = json.loads(Path(path).read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version "
                f"{data.get('version')!r} (expected {BASELINE_VERSION})")
        return cls(workloads={name: sorted(prints)
                              for name, prints in
                              data.get("workloads", {}).items()})

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "workloads": {name: sorted(prints)
                          for name, prints in
                          sorted(self.workloads.items())},
        }
        Path(path).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")

    def record(self, workload: str, diags: List[Diagnostic]) -> None:
        self.workloads[workload] = sorted(d.fingerprint for d in diags)

    def diff(self, workload: str, diags: List[Diagnostic],
             ) -> Tuple[List[Diagnostic], List[str]]:
        """Split a run into (new diagnostics, fixed fingerprints)."""
        accepted = set(self.workloads.get(workload, []))
        fresh = [d for d in diags if d.fingerprint not in accepted]
        current = {d.fingerprint for d in diags}
        fixed = sorted(fp for fp in accepted if fp not in current)
        return fresh, fixed
