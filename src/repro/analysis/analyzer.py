"""The C1/C2 condition analyzer (paper Sec. 6, Tables 1 and 2).

The paper's analyzer (built on Clang's StaticChecker) over-approximates
violations of the two conditions required by type-matching CFG
generation:

* **C1** — no type cast to or from function-pointer types (including
  implicit casts, and struct casts whose fields contain incompatible
  function pointers);
* **C2** — no assembly (TinyC's analogue: direct ``__syscall``
  intrinsic use outside the libc module).

It then eliminates false positives by pattern:

* **UC** (upcast): concrete-struct-pointer to abstract-struct-pointer
  where the abstract struct's fields are a prefix of the concrete's
  (emulated polymorphism/inheritance);
* **DC** (safe downcast): abstract to concrete where the abstract
  struct carries a runtime type-tag field;
* **MF** (malloc/free): ``void *`` casts at allocator/deallocator
  call sites;
* **SU** (safe update): function pointers assigned literal constants
  (NULL);
* **NF** (non-function-pointer access): casts whose result is only
  used to read fields that contain no function pointer.

What remains (``VAE``) is classified as **K1** (a function pointer
initialized with the address of a type-incompatible function — may need
a source fix) or **K2** (a pointer cast away and back, e.g. through
``void *`` or an untagged downcast — never needed fixes in the paper's
experience).  A K1 case *requires* a fix only when some indirect call
actually dispatches through the mismatched pointer type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.tinyc.typecheck import CastRecord, CheckedUnit
from repro.tinyc.types import (
    FuncSig,
    FuncType,
    IntType,
    PointerType,
    StructType,
    Type,
    canonical,
    contains_function_pointer,
    is_function_pointer,
    is_physical_subtype,
    signatures_match,
)

#: Field names treated as runtime type tags for the DC elimination.
DEFAULT_TAG_FIELDS = frozenset(["tag", "type", "kind", "sv_type", "code"])


@dataclass
class ClassifiedCast:
    record: CastRecord
    category: str           # 'UC' | 'DC' | 'MF' | 'SU' | 'NF' | 'K1' | 'K2'


@dataclass
class AnalysisReport:
    """Table 1 row (plus the Table 2 K1/K2 breakdown) for one unit."""

    unit: str
    sloc: int = 0
    vbe: int = 0
    uc: int = 0
    dc: int = 0
    mf: int = 0
    su: int = 0
    nf: int = 0
    vae: int = 0
    k1: int = 0
    k2: int = 0
    k1_fixed: int = 0
    c2: int = 0
    classified: List[ClassifiedCast] = field(default_factory=list)

    KIND = "analysis"

    def table1_row(self) -> Dict[str, int]:
        return {"SLOC": self.sloc, "VBE": self.vbe, "UC": self.uc,
                "DC": self.dc, "MF": self.mf, "SU": self.su, "NF": self.nf,
                "VAE": self.vae}

    def table2_row(self) -> Dict[str, int]:
        return {"K1": self.k1, "K2": self.k2, "K1-fixed": self.k1_fixed}

    def to_dict(self) -> Dict[str, Any]:
        """Repo-wide result protocol (``kind`` = ``"analysis"``).

        ``casts`` carries a display-friendly rendering of each
        classified record (the ``Type`` operands flatten to their
        canonical spelling); the scalar Table 1/2 fields round-trip
        through :meth:`from_dict` exactly.
        """
        return {
            "kind": self.KIND,
            "unit": self.unit,
            "table1": self.table1_row(),
            "table2": self.table2_row(),
            "c2": self.c2,
            "casts": [
                {"category": c.category,
                 "line": c.record.line,
                 "function": c.record.function,
                 "src": str(canonical(c.record.src)),
                 "dst": str(canonical(c.record.dst)),
                 "operand_func": c.record.operand_func}
                for c in self.classified
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisReport":
        t1 = data.get("table1", {})
        t2 = data.get("table2", {})
        return cls(unit=data["unit"], sloc=t1.get("SLOC", 0),
                   vbe=t1.get("VBE", 0), uc=t1.get("UC", 0),
                   dc=t1.get("DC", 0), mf=t1.get("MF", 0),
                   su=t1.get("SU", 0), nf=t1.get("NF", 0),
                   vae=t1.get("VAE", 0), k1=t2.get("K1", 0),
                   k2=t2.get("K2", 0), k1_fixed=t2.get("K1-fixed", 0),
                   c2=data.get("c2", 0))


class Analyzer:
    """Classifies one checked unit's cast records."""

    def __init__(self, checked: CheckedUnit,
                 tag_fields: Optional[Set[str]] = None,
                 sloc: int = 0) -> None:
        self.checked = checked
        self.tag_fields = tag_fields or set(DEFAULT_TAG_FIELDS)
        self.sloc = sloc
        #: pointer signatures actually used at indirect call sites —
        #: decides whether a K1 case needs a source fix.
        self._called_sigs: Set[FuncSig] = {
            call.sig for call in checked.calls if call.sig is not None}

    def analyze(self) -> AnalysisReport:
        report = AnalysisReport(unit=self.checked.name, sloc=self.sloc)
        for record in self.checked.casts:
            category = self._classify(record)
            report.classified.append(ClassifiedCast(record, category))
            report.vbe += 1
            attr = category.lower()
            if category in ("UC", "DC", "MF", "SU", "NF"):
                setattr(report, attr, getattr(report, attr) + 1)
            else:
                report.vae += 1
                if category == "K1":
                    report.k1 += 1
                    if self._k1_needs_fix(record):
                        report.k1_fixed += 1
                else:
                    report.k2 += 1
        return report

    # -- classification -----------------------------------------------------

    def _classify(self, record: CastRecord) -> str:
        src, dst = record.src, record.dst

        struct_pair = self._struct_pointee_pair(src, dst)
        if struct_pair is not None:
            src_struct, dst_struct = struct_pair
            if is_physical_subtype(src_struct, dst_struct):
                return "UC"
            if is_physical_subtype(dst_struct, src_struct):
                if self._has_type_tag(src_struct):
                    return "DC"
                return "K2"  # untagged downcast: remains, but benign

        if record.via_alloc or record.via_free:
            return "MF"
        if record.operand_zero:
            return "SU"
        if record.member_nonfptr:
            return "NF"
        if record.operand_func is not None and \
                self._incompatible_fptr_init(record):
            return "K1"
        return "K2"

    @staticmethod
    def _struct_pointee_pair(src: Type, dst: Type):
        if isinstance(src, PointerType) and isinstance(dst, PointerType) \
                and isinstance(src.pointee, StructType) \
                and isinstance(dst.pointee, StructType):
            return src.pointee, dst.pointee
        return None

    def _has_type_tag(self, struct: StructType) -> bool:
        if not struct.fields:
            return False
        first_name, first_type = struct.fields[0]
        return first_name in self.tag_fields and \
            isinstance(first_type, IntType)

    def _incompatible_fptr_init(self, record: CastRecord) -> bool:
        """Is this a function address stored into an incompatible fptr?"""
        if not is_function_pointer(record.dst):
            return False
        func_type = self.checked.func_types.get(record.operand_func)
        if func_type is None:
            return True  # unknown function: conservative
        dst_func = record.dst.pointee
        return canonical(func_type) != canonical(dst_func)

    def _k1_needs_fix(self, record: CastRecord) -> bool:
        """A K1 case breaks the CFG only if calls dispatch through the
        mismatched pointer type (otherwise the pointer is dead) *and*
        the CFG generator would refuse the stored function as a target.

        The generator's variadic prefix rule (a ``t(...)`` pointer
        matches any ``t(x, ...)`` function sharing the fixed-parameter
        prefix) means such casts — while still K-candidates, since the
        canonical types differ — dispatch fine at runtime and need no
        source fix.  Using exact signature membership here double-counts
        them as ``K1-fixed``.
        """
        if not is_function_pointer(record.dst):
            return False
        assert isinstance(record.dst.pointee, FuncType)
        sig = FuncSig.of(record.dst.pointee)
        if sig not in self._called_sigs:
            return False
        func_type = self.checked.func_types.get(record.operand_func)
        if func_type is None:
            return True  # unknown function: conservative
        assert isinstance(func_type, FuncType)
        return not signatures_match(sig, FuncSig.of(func_type))

    def c2_findings(self, libc_exempt: bool = True) -> int:
        """C2 (assembly) findings: direct ``__syscall`` intrinsic uses.

        The paper found no C2 violations in the benchmarks; only the
        libc had inline assembly (annotated by hand).  ``libc_exempt``
        mirrors that: the libc module's wrappers are annotated, so only
        *workload* syscall uses count.
        """
        if libc_exempt and self.checked.name == "libc":
            return 0
        count = 0
        from repro.tinyc import ast
        for func in self.checked.functions.values():
            for stmt in ast.walk_stmts(func.body):
                for top in ast.stmt_exprs(stmt):
                    for expr in ast.walk_expr(top):
                        if isinstance(expr, ast.Call) and \
                                expr.direct_name == "__syscall":
                            count += 1
        return count


def analyze_unit(checked: CheckedUnit, sloc: int = 0,
                 tag_fields: Optional[Set[str]] = None) -> AnalysisReport:
    """Run the C1/C2 analyzer over one checked translation unit."""
    analyzer = Analyzer(checked, tag_fields=tag_fields, sloc=sloc)
    report = analyzer.analyze()
    report.c2 = analyzer.c2_findings()
    return report


def analyze_source(source: str, name: str = "unit",
                   prelude: bool = True) -> AnalysisReport:
    """Convenience: frontend + analysis over raw TinyC source."""
    from repro.toolchain import frontend
    checked = frontend(source, name=name, prelude=prelude)
    sloc = sum(1 for line in source.splitlines() if line.strip())
    return analyze_unit(checked, sloc=sloc)
