"""Rendering of analyzer results as text, markdown, or paper-style rows.

The :class:`~repro.analysis.analyzer.AnalysisReport` holds the numbers;
this module turns one report (or a benchmark suite's worth) into the
Table 1 / Table 2 presentation used by the CLI, the benchmarks and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.analyzer import AnalysisReport

TABLE1_COLUMNS = ("SLOC", "VBE", "UC", "DC", "MF", "SU", "NF", "VAE")
TABLE2_COLUMNS = ("K1", "K2", "K1-fixed")


def table1_text(reports: Dict[str, AnalysisReport],
                order: Sequence[str] | None = None) -> str:
    """Fixed-width Table 1 over several units."""
    names = list(order) if order else list(reports)
    lines = [f"{'benchmark':12s} " +
             " ".join(f"{c:>6s}" for c in TABLE1_COLUMNS)]
    for name in names:
        row = reports[name].table1_row()
        lines.append(f"{name:12s} " +
                     " ".join(f"{row[c]:6d}" for c in TABLE1_COLUMNS))
    return "\n".join(lines)


def table2_text(reports: Dict[str, AnalysisReport],
                order: Sequence[str] | None = None) -> str:
    """Fixed-width Table 2 (only units with remaining violations)."""
    names = [n for n in (order or reports) if reports[n].vae]
    lines = [f"{'benchmark':12s} " +
             " ".join(f"{c:>9s}" for c in TABLE2_COLUMNS)]
    for name in names:
        row = reports[name].table2_row()
        lines.append(f"{name:12s} " +
                     " ".join(f"{row[c]:9d}" for c in TABLE2_COLUMNS))
    return "\n".join(lines)


def table1_markdown(reports: Dict[str, AnalysisReport],
                    order: Sequence[str] | None = None) -> str:
    """Table 1 as a GitHub-flavoured markdown table."""
    names = list(order) if order else list(reports)
    header = "| benchmark | " + " | ".join(TABLE1_COLUMNS) + " |"
    rule = "|---" * (len(TABLE1_COLUMNS) + 1) + "|"
    lines = [header, rule]
    for name in names:
        row = reports[name].table1_row()
        cells = " | ".join(str(row[c]) for c in TABLE1_COLUMNS)
        lines.append(f"| {name} | {cells} |")
    return "\n".join(lines)


def classification_detail(report: AnalysisReport) -> str:
    """Per-cast listing grouped by category, for code review."""
    by_category: Dict[str, List[str]] = {}
    for item in report.classified:
        record = item.record
        where = f"{record.function or '<global>'}:{record.line}"
        detail = f"{where}: {record.src} -> {record.dst}"
        if record.operand_func:
            detail += f" (address of {record.operand_func})"
        by_category.setdefault(item.category, []).append(detail)
    lines = []
    for category in ("UC", "DC", "MF", "SU", "NF", "K1", "K2"):
        items = by_category.get(category, [])
        if not items:
            continue
        lines.append(f"{category} ({len(items)}):")
        lines.extend(f"  {item}" for item in items)
    return "\n".join(lines) if lines else "(no C1 violations)"


def fix_guidance(report: AnalysisReport) -> List[str]:
    """Actionable advice per remaining K1 case (the paper's Sec. 6
    wrapper-function recipe)."""
    out: List[str] = []
    for item in report.classified:
        if item.category != "K1":
            continue
        record = item.record
        where = f"{record.function or '<global>'}:{record.line}"
        out.append(
            f"{where}: {record.operand_func or 'a function'} has type "
            f"incompatible with {record.dst}; wrap it in a function of "
            f"the pointer's exact type (as the paper did for gcc's "
            f"splay-tree strcmp) or fix the pointer's type")
    return out
