"""Runtime code installation: the paper's JIT scenario (Sec. 8.1).

The paper motivates its transaction design with just-in-time
compilation — "a rather extreme test for whether MCFI's transactions
scale ... where code is generated and installed on-the-fly, and as a
result, ID tables need to be updated frequently" — but leaves the JIT
implementation to future work (it became the authors' follow-up
system, RockJIT).  This module builds that scenario:

* :class:`JitEngine` compiles TinyC functions *at runtime*, installs
  them into fresh code pages under the W^X discipline (written while
  non-executable, verified, then sealed to R+X), merges their auxiliary
  type information, regenerates the CFG, and publishes the new policy
  with an update transaction — exactly the dlopen pipeline, driven at
  JIT rates.
* Guest programs reach it through the ``jit_compile`` syscall: they
  pass TinyC source text and receive a function pointer, which the very
  next indirect call can use — *if* its type matches, because the
  freshly generated code is subject to the same type-matching CFG as
  everything else.  A JIT-sprayed function of the wrong type is
  unreachable.

Each installation is one module through the full separate-compilation
pipeline, so "number of indirect branch executions ~ 10^8 times the CFG
updates" (the paper's V8 measurement) can be dialled to any ratio the
experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.build import compile_object
from repro.errors import LinkError, ReproError
from repro.linker.dynamic_linker import DynamicLinker


@dataclass
class JitStats:
    """Bookkeeping for JIT-rate experiments."""

    installs: int = 0
    failures: int = 0
    compiled_bytes: int = 0
    installed_functions: List[str] = field(default_factory=list)


class JitEngine:
    """Runtime TinyC compilation service on top of the dynamic linker.

    The engine is trusted (it is part of the runtime, like the paper's
    CFG generator), but the code it *emits* is not: every generated
    module is instrumented and verified before its pages become
    executable, so a buggy or malicious code generator cannot smuggle
    unchecked indirect branches into the process.
    """

    def __init__(self, runtime, verify: bool = True) -> None:
        self.runtime = runtime
        if runtime.dynamic_linker is None:
            DynamicLinker(runtime, verify=verify)
        self.linker: DynamicLinker = runtime.dynamic_linker
        self.linker.verify = verify
        self.stats = JitStats()
        self._counter = 0
        runtime.jit_engine = self

    def install_source(self, source: str, cpu=None) -> Dict[str, int]:
        """Compile and install one TinyC fragment; return its exports.

        ``source`` is an ordinary TinyC module (it may reference libc
        and program symbols).  Returns a mapping from exported function
        names to their entry addresses.
        """
        self._counter += 1
        name = f"__jit{self._counter}"
        try:
            raw = compile_object(source, name=name,
                                 arch=self.runtime.program.arch)
        except ReproError:
            self.stats.failures += 1
            raise
        self.linker.register(name, raw)
        handle = self.linker.dlopen(name, cpu)
        if handle == 0:
            self.stats.failures += 1
            raise LinkError(f"JIT install of {name} failed")
        library = self.linker.loaded[handle]
        self.stats.installs += 1
        self.stats.compiled_bytes += len(library.module.code)
        self.stats.installed_functions.extend(library.exports)
        return dict(library.exports)

    def install_function(self, source: str, fn_name: str,
                         cpu=None) -> int:
        """Install one function and return its address (0 on failure)."""
        exports = self.install_source(source, cpu=cpu)
        return exports.get(fn_name, 0)


def make_unary_op(name: str, expression: str) -> str:
    """Template for the classic JIT workload: specialize a unary op.

    ``expression`` uses ``x``; the result has type ``long(long)``, the
    signature JIT-driven interpreters dispatch through.
    """
    return f"long {name}(long x) {{ return {expression}; }}\n"


def jit_compile_syscall(runtime, cpu) -> None:
    """Syscall backend: rax=12, r8 = source c-string, r9 = name c-string.

    Returns the installed function's address in rax, or 0 on failure —
    the guest-facing entry point for runtime code generation.
    """
    from repro.vm.syscalls import read_cstring
    engine: Optional[JitEngine] = getattr(runtime, "jit_engine", None)
    if engine is None:
        cpu.regs[0] = 0
        return
    source = read_cstring(runtime.memory, cpu.regs[8],
                          limit=65536).decode()
    fn_name = read_cstring(runtime.memory, cpu.regs[9]).decode()
    try:
        cpu.regs[0] = engine.install_function(source, fn_name, cpu=cpu)
    except ReproError:
        cpu.regs[0] = 0
