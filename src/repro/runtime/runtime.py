"""The trusted MCFI runtime (paper Secs. 4 and 7).

Responsibilities, mirroring the paper's runtime:

* **Loading** — map the code region readable+executable (never
  writable), the data region readable+writable (strings read-only),
  enforce the W^X invariant, and patch every branch site's ``tload``
  immediate with its Bary table index before the code becomes
  executable.
* **CFG installation** — invoke the CFG generator on the program's
  merged auxiliary information and install the resulting ECNs into the
  ID tables (initial load is non-transactional: no threads run yet).
* **Syscall interposition** — programs never reach the host directly;
  every service checks its arguments (``mprotect`` cannot create
  writable+executable pages, ``write`` must reference readable memory).
* **Dynamic linking** — see :mod:`repro.linker.dynamic_linker`; the
  runtime provides the table-update machinery it drives.

Execution drivers:

* :meth:`Runtime.run` — fast single-threaded loop (Fig. 5 runs);
* :meth:`Runtime.run_scheduled` — interleaved multithreaded execution
  with optional extra tasks (Fig. 6's updater, attackers, dlopen).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cfg.generator import Cfg, generate_cfg
from repro.core.tables import IdTables
from repro.core.transactions import UpdateLock
from repro.errors import (
    CfiViolation,
    MemoryFault,
    RuntimeError_,
    VMError,
    WxViolation,
)
from repro.linker.static_linker import LinkedProgram
from repro.obs import OBS
from repro.vm.cpu import CPU, ProgramExit, ThreadExit
from repro.vm.dispatch import DispatchCache
from repro.vm.memory import (
    CODE_LIMIT,
    DATA_LIMIT,
    Memory,
    PAGE_SIZE,
    STACK_BASE,
    STACK_LIMIT,
    TableMemory,
)
from repro.vm.scheduler import CpuTask, Outcome, Scheduler
from repro.vm import syscalls as sc

_STACK_SLOT = 0x40000  # 256 KiB of stack per thread


#: Violation policies (how the runtime reacts to a CFI violation):
#: ``halt`` stops the program fail-safe (the paper's behaviour);
#: ``report`` records the violation and terminates only the offending
#: thread, letting the rest of the program keep running; ``quarantine``
#: additionally retires the module containing the violating branch
#: (seals its pages non-executable and zeroes its table entries).
VIOLATION_POLICIES = ("halt", "report", "quarantine")


@dataclass
class ViolationRecord:
    """One CFI violation observed under a non-halting policy."""

    thread: int
    branch_address: int
    target_address: int
    reason: str
    action: str                 # 'halt' | 'kill-thread' | 'quarantine'
    module: Optional[str] = None

    KIND = "violation"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "thread": self.thread,
            "branch": self.branch_address,
            "target": self.target_address,
            "reason": self.reason,
            "action": self.action,
            "module": self.module,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ViolationRecord":
        return cls(thread=data["thread"],
                   branch_address=data["branch"],
                   target_address=data["target"],
                   reason=data["reason"], action=data["action"],
                   module=data.get("module"))

    def as_dict(self) -> Dict[str, Any]:
        """Deprecated alias for :meth:`to_dict` (one-release shim)."""
        warnings.warn(
            "ViolationRecord.as_dict() is deprecated; use to_dict()",
            DeprecationWarning, stacklevel=2)
        return self.to_dict()


@dataclass
class RunResult:
    """Outcome of one program execution."""

    exit_code: Optional[int] = None
    output: bytes = b""
    cycles: int = 0
    instructions: int = 0
    violation: Optional[CfiViolation] = None
    fault: Optional[Exception] = None
    check_retries: int = 0
    updates: int = 0
    #: dynamic check-transaction attempts (Bary-table reads); the
    #: points-to devirtualization shrinks this by removing icall checks
    tx_checks: int = 0
    violations: List[ViolationRecord] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    #: Per-run metrics delta (a :class:`repro.obs.Snapshot` dict) when
    #: observability was enabled during the run; None otherwise.
    obs: Optional[Dict[str, Any]] = None

    KIND = "run"

    @property
    def ok(self) -> bool:
        return self.violation is None and self.fault is None

    @property
    def status(self) -> str:
        if self.violation is not None:
            return "violation"
        if self.fault is not None:
            return "fault"
        return "ok"

    def to_dict(self) -> Dict[str, Any]:
        """One JSONL-friendly shape, shared by every result consumer.

        ``output`` is decoded as UTF-8 with replacement; exceptions are
        serialized structurally (type name + message), so the round
        trip through :meth:`from_dict` is faithful for JSON purposes
        even though exception identity is reconstructed best-effort.
        """
        out: Dict[str, Any] = {
            "kind": self.KIND,
            "status": self.status,
            "exit_code": self.exit_code,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "output": self.output.decode("utf-8", errors="replace"),
        }
        if self.check_retries:
            out["check_retries"] = self.check_retries
        if self.tx_checks:
            out["tx_checks"] = self.tx_checks
        if self.updates:
            out["updates"] = self.updates
        if self.violation is not None:
            out["violation"] = {
                "branch": self.violation.branch_address,
                "target": self.violation.target_address,
                "reason": self.violation.reason,
            }
        if self.fault is not None:
            out["fault"] = {"type": type(self.fault).__name__,
                            "message": str(self.fault)}
        if self.violations:
            out["violations"] = [v.to_dict() for v in self.violations]
        if self.quarantined:
            out["quarantined"] = list(self.quarantined)
        if self.obs is not None:
            out["obs"] = self.obs
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        violation = None
        raw = data.get("violation")
        if raw is not None:
            violation = CfiViolation(raw["branch"], raw["target"],
                                     raw["reason"])
        fault: Optional[Exception] = None
        raw = data.get("fault")
        if raw is not None:
            import repro.errors as _errors
            fault_cls = getattr(_errors, raw.get("type", ""),
                                RuntimeError_)
            try:
                fault = fault_cls(raw.get("message", ""))
            except TypeError:
                fault = RuntimeError_(raw.get("message", ""))
        return cls(
            exit_code=data.get("exit_code"),
            output=data.get("output", "").encode("utf-8"),
            cycles=data.get("cycles", 0),
            instructions=data.get("instructions", 0),
            violation=violation, fault=fault,
            check_retries=data.get("check_retries", 0),
            updates=data.get("updates", 0),
            tx_checks=data.get("tx_checks", 0),
            violations=[ViolationRecord.from_dict(v)
                        for v in data.get("violations", [])],
            quarantined=list(data.get("quarantined", [])),
            obs=data.get("obs"))


class _BlockableCpuTask(CpuTask):
    """A CPU task that can wait for a runtime operation (e.g. dlopen).

    Also the policy enforcement point: a CFI violation raised by this
    thread is routed through the runtime's violation handler, which
    either re-raises (halt policy) or retires the thread and lets the
    scheduler continue (report / quarantine policies).
    """

    def __init__(self, cpu: CPU, name: str, burst: int = 1,
                 runtime: Optional["Runtime"] = None) -> None:
        super().__init__(cpu, name=name, burst=burst)
        self.waiting = False
        self.runtime = runtime

    def step(self) -> None:
        if self.waiting:
            return
        try:
            super().step()
        except CfiViolation as violation:
            if self.runtime is None or \
                    not self.runtime._handle_violation(self.cpu, violation):
                raise
            self.alive = False


class Runtime:
    """Loads and executes one linked program."""

    def __init__(self, program: LinkedProgram, verify: bool = False,
                 bary_entries: int = 65536,
                 violation_policy: str = "halt") -> None:
        if violation_policy not in VIOLATION_POLICIES:
            raise RuntimeError_(
                f"unknown violation policy {violation_policy!r} "
                f"(known: {', '.join(VIOLATION_POLICIES)})")
        self.violation_policy = violation_policy
        self.violation_records: List[ViolationRecord] = []
        self.quarantined_modules: List[str] = []
        self.program = program
        self.enforce = program.mcfi
        self.memory = Memory()
        self.tables = TableMemory(bary_entries=bary_entries)
        self.id_tables = IdTables(self.tables)
        self.update_lock = UpdateLock()
        self.icache: Dict[int, tuple] = {}
        #: Compiled-closure + decoded-block cache for the dispatch
        #: plane; shared by every CPU of this address space and
        #: invalidated alongside the icache (see repro.vm.dispatch).
        self.dispatch_cache = DispatchCache()
        self.output = bytearray()
        self.cfg: Optional[Cfg] = None
        self.cpus: List[CPU] = []
        self._next_stack = STACK_LIMIT
        self._scheduler: Optional[Scheduler] = None
        self._tasks_by_cpu: Dict[int, _BlockableCpuTask] = {}
        self.loaded_libraries: Dict[str, object] = {}
        self.dynamic_linker = None  # attached by repro.linker.dynamic_linker
        self.jit_engine = None      # attached by repro.runtime.jit
        self._load(verify=verify)

    # -- loading ----------------------------------------------------------------

    def _load(self, verify: bool) -> None:
        program = self.program
        module = program.module
        if module.limit > CODE_LIMIT:
            raise RuntimeError_("program exceeds the code region")

        if verify and self.enforce:
            from repro.core.verifier import verify_module
            verify_module(module)

        code = bytearray(module.code)
        if self.enforce:
            for site, offset in module.bary_slots.items():
                code[offset:offset + 4] = (4 * site).to_bytes(4, "little")

        # W^X: code pages are mapped writable only while the (trusted)
        # loader populates them, then sealed to R+X.
        self.memory.map(module.base, len(code), readable=True,
                        writable=True)
        self.memory.host_write(module.base, bytes(code))
        self.memory.protect(module.base, len(code), readable=True,
                            writable=False, executable=True)

        data = program.data
        if data.base + data.size > DATA_LIMIT:
            raise RuntimeError_("program data exceeds the data region")
        heap_limit = DATA_LIMIT
        self.memory.map(data.base, heap_limit - data.base, readable=True,
                        writable=True)
        if data.image:
            self.memory.host_write(data.base, data.image)
        if data.rodata_end:
            self.memory.protect(data.base, data.rodata_end, readable=True,
                                writable=False)
        self.brk = program.heap_base

        self.memory.map(STACK_BASE, STACK_LIMIT - STACK_BASE, readable=True,
                        writable=True)

        if self.enforce:
            self.cfg = generate_cfg(module.aux)
            self.id_tables.install(self.cfg.tary_ecns, self.cfg.bary_ecns)

    # -- thread management ---------------------------------------------------------

    def new_cpu(self, entry: int, args: Optional[List[int]] = None) -> CPU:
        cpu = CPU(self.memory, self.tables, syscall_handler=self.syscall,
                  icache=self.icache, thread_id=len(self.cpus),
                  dispatch_cache=self.dispatch_cache)
        cpu.rip = entry
        self._next_stack -= _STACK_SLOT
        if self._next_stack < STACK_BASE:
            raise RuntimeError_("out of stack space for new thread")
        stack_top = self._next_stack + _STACK_SLOT - 16
        self.memory.write_u64(stack_top, 0)  # poisoned return address
        cpu.regs[4] = stack_top  # RSP
        from repro.isa.registers import ARG_REGS
        for reg, value in zip(ARG_REGS, args or []):
            cpu.regs[reg] = value
        self.cpus.append(cpu)
        return cpu

    def main_cpu(self) -> CPU:
        if not self.cpus:
            self.new_cpu(self.program.entry)
        return self.cpus[0]

    # -- execution -------------------------------------------------------------------

    def run(self, max_steps: int = 200_000_000) -> RunResult:
        """Single-threaded fast path."""
        cpu = self.main_cpu()
        result = RunResult()
        before = OBS.metrics.snapshot() if OBS.enabled else None
        with OBS.tracer.span("runtime.run",
                             policy=self.violation_policy) as span:
            try:
                result.exit_code = cpu.run(max_steps=max_steps)
            except CfiViolation as violation:
                if self._handle_violation(cpu, violation):
                    # Non-halting policy: the (only) thread is retired
                    # but the run itself is not a fault — the violation
                    # shows up as a structured record, not an exception.
                    pass
                else:
                    result.violation = violation
            except (MemoryFault, VMError, RuntimeError_) as fault:
                result.fault = fault
            span.set(status=result.status)
        self._finish_result(result, before)
        result.cycles = cpu.cycles
        result.instructions = cpu.instructions
        result.tx_checks = cpu.tx_checks
        return result

    def run_scheduled(self, seed: int = 0, burst: int = 1,
                      max_ticks: int = 50_000_000,
                      extra_tasks: Optional[List] = None) -> RunResult:
        """Interleaved execution of all threads plus runtime tasks."""
        scheduler = Scheduler(seed=seed)
        self._scheduler = scheduler
        cpu = self.main_cpu()
        task = _BlockableCpuTask(cpu, name="main", burst=burst,
                                 runtime=self)
        scheduler.add(task)
        self._tasks_by_cpu[id(cpu)] = task
        for extra in extra_tasks or []:
            scheduler.add(extra)
        before = OBS.metrics.snapshot() if OBS.enabled else None
        with OBS.tracer.span("runtime.run_scheduled", seed=seed,
                             policy=self.violation_policy) as span:
            outcome: Outcome = scheduler.run(max_ticks=max_ticks)
            result = RunResult(
                exit_code=outcome.exit_code, violation=outcome.violation,
                fault=outcome.fault,
                cycles=sum(c.cycles for c in self.cpus),
                instructions=sum(c.instructions for c in self.cpus),
                tx_checks=sum(c.tx_checks for c in self.cpus))
            span.set(status=result.status, ticks=outcome.ticks)
        self._finish_result(result, before)
        return result

    def _finish_result(self, result: RunResult, before) -> None:
        """Shared epilogue: output, records, per-run metrics delta."""
        result.output = bytes(self.output)
        result.violations = list(self.violation_records)
        result.quarantined = list(self.quarantined_modules)
        if before is not None and OBS.enabled:
            result.obs = OBS.metrics.snapshot().delta(before).to_dict()

    # -- violation policy -------------------------------------------------------

    def _handle_violation(self, cpu: CPU,
                          violation: CfiViolation) -> bool:
        """Apply the violation policy; True if execution may continue.

        Under ``halt`` the violation propagates (paper behaviour).
        Under ``report`` the offending thread is retired and a
        structured record is kept.  Under ``quarantine`` the module
        containing the violating branch is additionally sealed
        non-executable and scrubbed from the ID tables, so no thread
        can re-enter it — the fail-safe middle ground between halting
        the world and ignoring the event.
        """
        if self.violation_policy == "halt":
            if OBS.enabled:
                OBS.metrics.counter("runtime.violations.halt").inc()
            return False
        action = "kill-thread"
        module_name = None
        if self.violation_policy == "quarantine":
            module_name = self._quarantine_module(violation.branch_address)
            if module_name is not None:
                action = "quarantine"
        if OBS.enabled:
            OBS.metrics.counter("runtime.violations." + action).inc()
        self.violation_records.append(ViolationRecord(
            thread=cpu.thread_id,
            branch_address=violation.branch_address,
            target_address=violation.target_address,
            reason=violation.reason, action=action, module=module_name))
        return True

    def _quarantine_module(self, branch_address: int) -> Optional[str]:
        """Retire the loaded library containing ``branch_address``.

        Only dynamically loaded modules are quarantined (retiring the
        main program is equivalent to halting); returns the module name
        or None if the branch lives in the main image.
        """
        linker = self.dynamic_linker
        if linker is None:
            return None
        for library in list(getattr(linker, "loaded", {}).values()):
            module = library.module
            if module.base <= branch_address < module.limit:
                if library.name not in self.quarantined_modules:
                    linker.quarantine(library.handle)
                    self.quarantined_modules.append(library.name)
                return library.name
        return None

    # -- syscall services --------------------------------------------------------------

    def syscall(self, cpu: CPU) -> None:
        # Every syscall is a quiescent point for this thread: it is not
        # inside a check transaction, so the ABA update counter may be
        # reset once all threads have quiesced (paper Sec. 5.2).
        cpu.quiescent_epoch = self.id_tables.updates_since_reset
        if self.id_tables.updates_since_reset and all(
                getattr(c, "quiescent_epoch", -1) ==
                self.id_tables.updates_since_reset for c in self.cpus):
            self.id_tables.aba_reset()
        number = cpu.regs[0]  # RAX
        arg0 = cpu.regs[8]    # R8
        arg1 = cpu.regs[9]    # R9
        arg2 = cpu.regs[10]   # R10
        if number == sc.SYS_EXIT:
            raise ProgramExit(arg0 & 0xFF)
        if number == sc.SYS_WRITE:
            data = self.memory.read_bytes(arg1, arg2)
            self.output += data
            cpu.regs[0] = arg2
            return
        if number == sc.SYS_SBRK:
            old = self.brk
            new = old + _signed64(arg0)
            if not self.program.data.base <= new <= DATA_LIMIT:
                cpu.regs[0] = 0xFFFFFFFFFFFFFFFF  # -1: out of memory
                return
            self.brk = new
            cpu.regs[0] = old
            return
        if number == sc.SYS_TIME:
            cpu.regs[0] = cpu.cycles
            return
        if number == sc.SYS_THREAD_SPAWN:
            cpu.regs[0] = self._spawn_thread(arg0, arg1)
            return
        if number == sc.SYS_THREAD_EXIT:
            raise ThreadExit()
        if number == sc.SYS_MPROTECT:
            cpu.regs[0] = self._mprotect(arg0, arg1, arg2)
            return
        if number == sc.SYS_DLOPEN:
            cpu.regs[0] = self._dlopen(cpu, arg0)
            return
        if number == sc.SYS_DLSYM:
            cpu.regs[0] = self._dlsym(arg0, arg1)
            return
        if number == sc.SYS_YIELD:
            cpu.regs[0] = 0
            return
        if number == sc.SYS_JIT:
            from repro.runtime.jit import jit_compile_syscall
            jit_compile_syscall(self, cpu)
            return
        if number == sc.SYS_DLCLOSE:
            if self.dynamic_linker is None:
                cpu.regs[0] = 0xFFFFFFFFFFFFFFFF
                return
            code = self.dynamic_linker.dlclose(arg0, cpu)
            cpu.regs[0] = code & 0xFFFFFFFFFFFFFFFF
            return
        raise RuntimeError_(f"unknown syscall {number}")

    def _spawn_thread(self, entry_fn: int, arg: int) -> int:
        """Spawn a thread running libc's __thread_start(fn, arg)."""
        if self._scheduler is None:
            raise RuntimeError_(
                "thread_spawn requires run_scheduled (multithreaded mode)")
        start = self.program.labels.get("__thread_start")
        if start is None:
            raise RuntimeError_("program lacks __thread_start (link libc)")
        cpu = self.new_cpu(start, args=[entry_fn, arg])
        task = _BlockableCpuTask(cpu, name=f"thread{cpu.thread_id}",
                                 burst=self._tasks_by_cpu[
                                     id(self.cpus[0])].burst,
                                 runtime=self)
        self._scheduler.add(task)
        self._tasks_by_cpu[id(cpu)] = task
        return cpu.thread_id

    def _mprotect(self, address: int, size: int, prot: int) -> int:
        """W^X-checked mprotect (the paper's syscall interposition)."""
        writable = bool(prot & sc.PROT_WRITE)
        executable = bool(prot & sc.PROT_EXEC)
        if writable and executable:
            raise WxViolation(
                f"mprotect({address:#x}, {size:#x}): W+X mapping refused")
        # Application code may not change code-region protections (only
        # the trusted loader/dynamic linker does that, from the host side).
        if address < CODE_LIMIT:
            return 0xFFFFFFFFFFFFFFFF
        # Nor may it make data pages executable.
        if executable:
            return 0xFFFFFFFFFFFFFFFF
        try:
            self.memory.protect(address, size, readable=bool(
                prot & sc.PROT_READ), writable=writable,
                executable=executable)
        except MemoryFault:
            return 0xFFFFFFFFFFFFFFFF
        return 0

    def _dlopen(self, cpu: CPU, path_ptr: int) -> int:
        if self.dynamic_linker is None:
            return 0
        name = sc.read_cstring(self.memory, path_ptr).decode()
        return self.dynamic_linker.dlopen(name, cpu)

    def _dlsym(self, handle: int, name_ptr: int) -> int:
        if self.dynamic_linker is None:
            return 0
        name = sc.read_cstring(self.memory, name_ptr).decode()
        return self.dynamic_linker.dlsym(handle, name)

    # -- table updates (used by the dynamic linker) ---------------------------------

    def install_cfg(self, cfg: Cfg) -> None:
        """Non-transactional install (single-threaded contexts only)."""
        self.cfg = cfg
        self.id_tables.install(cfg.tary_ecns, cfg.bary_ecns)


def _signed64(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value
