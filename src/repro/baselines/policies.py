"""Baseline CFI policies for comparison (paper Secs. 3 and 8.3).

The evaluation compares MCFI's type-matching CFGs against:

* **classic CFI** [Abadi et al.] — fine-grained returns (call graph),
  but "for implementation convenience its CFG generation also allows
  all indirect calls to target any function whose address is taken";
* **binCFI / CCFIR-style coarse CFI** — two equivalence classes: all
  address-taken function entries (for calls), and all return sites
  (for returns);
* **chunk CFI (NaCl / MIP)** — any chunk-aligned code address is a
  valid target for any indirect branch.

Each policy produces, per branch site, a resolved target set over the
same merged auxiliary information MCFI uses, so AIR values and attack
outcomes are directly comparable.  Coarse policies can also be
*installed* into the ID tables to demonstrate concretely which attacks
they fail to stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cfg.generator import Cfg, generate_cfg
from repro.module.auxinfo import AuxInfo


@dataclass
class PolicyResult:
    """Per-branch target sets plus installable ECN maps."""

    name: str
    branch_targets: Dict[int, Set[int]] = field(default_factory=dict)
    tary_ecns: Dict[int, int] = field(default_factory=dict)
    bary_ecns: Dict[int, int] = field(default_factory=dict)
    n_classes: int = 0


def mcfi_policy(aux: AuxInfo) -> PolicyResult:
    """MCFI's own type-matching policy, for uniform comparison."""
    cfg: Cfg = generate_cfg(aux)
    return PolicyResult(name="MCFI", branch_targets=cfg.branch_targets,
                        tary_ecns=cfg.tary_ecns, bary_ecns=cfg.bary_ecns,
                        n_classes=cfg.n_classes)


def classic_cfi_policy(aux: AuxInfo) -> PolicyResult:
    """Classic CFI: precise returns, one class for all AT functions."""
    cfg = generate_cfg(aux)
    at_entries = {f.entry for f in aux.functions.values()
                  if f.address_taken}
    result = PolicyResult(name="classic-CFI")
    for site in aux.branch_sites:
        if site.kind in ("icall", "tail", "plt"):
            result.branch_targets[site.site] = set(at_entries)
        else:
            result.branch_targets[site.site] = \
                cfg.branch_targets.get(site.site, set())
    _assign_ecns(result)
    return result


def bincfi_policy(aux: AuxInfo) -> PolicyResult:
    """binCFI/CCFIR-style coarse CFI: two target categories.

    All function entries (address-taken or not — binCFI works on
    binaries and cannot tell) for call-like branches; all return sites
    (plus setjmp resumes) for return-like branches.  Switch targets stay
    precise (binCFI resolves jump tables statically).
    """
    entries = {f.entry for f in aux.functions.values()}
    retsites = {r.address for r in aux.retsites} | set(aux.setjmp_resumes)
    result = PolicyResult(name="binCFI")
    for site in aux.branch_sites:
        if site.kind in ("icall", "tail", "plt"):
            result.branch_targets[site.site] = set(entries)
        elif site.kind == "switch":
            result.branch_targets[site.site] = set(site.targets)
        else:  # ret, longjmp
            result.branch_targets[site.site] = set(retsites)
    _assign_ecns(result)
    return result


def chunk_policy(aux: AuxInfo, code_base: int, code_size: int,
                 chunk: int = 16) -> PolicyResult:
    """NaCl/MIP-style chunk CFI: any chunk boundary is a valid target."""
    chunks = set(range(code_base, code_base + code_size, chunk))
    result = PolicyResult(name=f"chunk{chunk}")
    for site in aux.branch_sites:
        result.branch_targets[site.site] = chunks
    _assign_ecns(result)
    return result


def no_protection_policy(aux: AuxInfo, code_base: int,
                         code_size: int) -> PolicyResult:
    """No CFI: every code byte is a potential target (AIR = 0 anchor)."""
    everything = set(range(code_base, code_base + code_size))
    result = PolicyResult(name="none")
    for site in aux.branch_sites:
        result.branch_targets[site.site] = everything
    return result


def _assign_ecns(result: PolicyResult) -> None:
    """Collapse target sets into installable equivalence classes.

    Identical target sets share an ECN; overlapping-but-different sets
    are merged (the same union the classic CFI instrumentation needs).
    """
    from repro.cfg.eqclass import UnionFind
    union = UnionFind()
    for targets in result.branch_targets.values():
        union.union_all(targets)
        for target in targets:
            union.add(target)
    tary = union.class_numbers()
    result.tary_ecns = tary
    result.n_classes = len(set(tary.values()))
    next_free = result.n_classes
    for site, targets in result.branch_targets.items():
        if targets:
            result.bary_ecns[site] = tary[next(iter(targets))]
        else:
            result.bary_ecns[site] = next_free
            next_free += 1


ALL_POLICIES = {
    "MCFI": mcfi_policy,
    "classic-CFI": classic_cfi_policy,
    "binCFI": bincfi_policy,
}
