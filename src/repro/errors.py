"""Exception hierarchy for the MCFI reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at the API boundary.  Sub-hierarchies
mirror the subsystems: the TinyC frontend, the virtual machine, the MCFI
runtime, and the verifier.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# TinyC frontend
# ---------------------------------------------------------------------------

class TinyCError(ReproError):
    """Base class for TinyC frontend errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(TinyCError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(TinyCError):
    """Raised when the parser encounters a syntax error."""


class TypeError_(TinyCError):
    """Raised when the type checker rejects a program.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


# ---------------------------------------------------------------------------
# Code generation and assembly
# ---------------------------------------------------------------------------

class CodegenError(ReproError):
    """Raised when lowering or code generation cannot proceed."""


class AssemblerError(ReproError):
    """Raised for unresolved labels, bad alignment, or operand overflow."""


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


# ---------------------------------------------------------------------------
# Virtual machine
# ---------------------------------------------------------------------------

class VMError(ReproError):
    """Base class for virtual machine faults."""


class MemoryFault(VMError):
    """Raised for an access to unmapped memory or a protection violation."""

    def __init__(self, address: int, kind: str, message: str = "") -> None:
        self.address = address
        self.kind = kind
        detail = f" ({message})" if message else ""
        super().__init__(f"memory fault: {kind} at {address:#x}{detail}")


class InvalidInstruction(VMError):
    """Raised when the CPU fetches bytes that do not decode."""


class CfiViolation(VMError):
    """Raised when an MCFI check transaction halts the program.

    The ``hlt`` at the end of a check transaction maps to this exception:
    an indirect branch attempted a transfer not permitted by the CFG.
    """

    def __init__(self, branch_address: int, target_address: int,
                 reason: str) -> None:
        self.branch_address = branch_address
        self.target_address = target_address
        self.reason = reason
        super().__init__(
            f"CFI violation: branch at {branch_address:#x} -> "
            f"{target_address:#x} ({reason})")


class SandboxViolation(VMError):
    """Raised when code attempts to escape the data sandbox."""


# ---------------------------------------------------------------------------
# MCFI runtime, linking and verification
# ---------------------------------------------------------------------------

class RuntimeError_(ReproError):
    """Base class for MCFI runtime errors (loading, syscalls, W^X)."""


class WxViolation(RuntimeError_):
    """Raised when a mapping would be both writable and executable."""


class TableIntegrityError(RuntimeError_):
    """Raised when the ID tables cannot be trusted any longer.

    Two escalation paths lead here: a check transaction exhausting its
    bounded retry budget under sustained version churn (instead of
    spinning forever), and a table audit finding an entry whose stored
    ID disagrees with the trusted ECN assignment (e.g. after a fault
    injection flipped a bit).  Both are fail-safe: the runtime halts or
    quarantines rather than risking a forged edge.
    """

    def __init__(self, message: str, index: int | None = None,
                 retries: int | None = None) -> None:
        self.index = index
        self.retries = retries
        super().__init__(message)


class ServiceBackpressure(RuntimeError_):
    """Raised when the table service's update queue is at capacity.

    The :class:`repro.service.coalescer.UpdateCoalescer` bounds its
    pending-request queue; a submitter seeing this error must yield and
    retry (cooperative backpressure) instead of growing the queue
    without bound while commits fall behind.
    """

    def __init__(self, pending: int, limit: int) -> None:
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"update queue full ({pending}/{limit} pending)")


class InjectedFault(ReproError):
    """Raised by the fault-injection plane (:mod:`repro.faults`).

    Carries the fault point so recovery code and tests can assert
    exactly which phase failed.  Never raised in production paths
    unless a :class:`repro.faults.plane.FaultPlane` armed the point.
    """

    def __init__(self, point: str, detail: str = "") -> None:
        self.point = point
        suffix = f": {detail}" if detail else ""
        super().__init__(f"injected fault at {point!r}{suffix}")


class LinkError(ReproError):
    """Raised by the static or dynamic linker (e.g. unresolved symbols)."""


class VerificationError(ReproError):
    """Raised when the modular verifier rejects a module."""

    def __init__(self, message: str, address: int | None = None) -> None:
        self.address = address
        if address is not None:
            message = f"{message} (at {address:#x})"
        super().__init__(message)


class CfgGenerationError(ReproError):
    """Raised when CFG generation fails (e.g. unknown symbol types)."""
