"""Exception hierarchy for the MCFI reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at the API boundary.  Sub-hierarchies
mirror the subsystems: the TinyC frontend, the virtual machine, the MCFI
runtime, and the verifier.

Every class carries a stable, kebab-case :attr:`~ReproError.code`
(machine-matchable across refactors that rename the Python class) and a
:meth:`~ReproError.to_dict` payload in the same shape the result-store
records use, so an error can land in a JSONL trace or a service
response without per-call-site marshalling.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    ``code`` is the stable wire identifier; subclasses override it and
    extend :meth:`to_dict` with their structured fields.
    """

    code = "repro-error"

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-friendly payload: stable code + class name + message."""
        return {
            "code": self.code,
            "type": type(self).__name__,
            "message": str(self),
        }


# ---------------------------------------------------------------------------
# TinyC frontend
# ---------------------------------------------------------------------------

class TinyCError(ReproError):
    """Base class for TinyC frontend errors."""

    code = "tinyc"

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(TinyCError):
    """Raised when the lexer encounters an invalid character or literal."""

    code = "tinyc-lex"


class ParseError(TinyCError):
    """Raised when the parser encounters a syntax error."""

    code = "tinyc-parse"


class TypeError_(TinyCError):
    """Raised when the type checker rejects a program.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    code = "tinyc-type"


#: What callers catch around a whole compile: every diagnostic the TinyC
#: frontend raises for malformed source — lex, parse, and type errors
#: alike, all carrying a source location.  The frontend's contract is
#: that *no* input text escalates past this (no ``RecursionError``, no
#: raw tracebacks); the corpus robustness suite property-tests it.
CompileError = TinyCError


# ---------------------------------------------------------------------------
# Code generation and assembly
# ---------------------------------------------------------------------------

class CodegenError(ReproError):
    """Raised when lowering or code generation cannot proceed."""

    code = "codegen"


class AssemblerError(ReproError):
    """Raised for unresolved labels, bad alignment, or operand overflow."""

    code = "assembler"


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""

    code = "encoding"


# ---------------------------------------------------------------------------
# Virtual machine
# ---------------------------------------------------------------------------

class VMError(ReproError):
    """Base class for virtual machine faults."""

    code = "vm"


class MemoryFault(VMError):
    """Raised for an access to unmapped memory or a protection violation."""

    code = "memory-fault"

    def __init__(self, address: int, kind: str, message: str = "") -> None:
        self.address = address
        self.kind = kind
        detail = f" ({message})" if message else ""
        super().__init__(f"memory fault: {kind} at {address:#x}{detail}")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(address=self.address, kind=self.kind)
        return out


class InvalidInstruction(VMError):
    """Raised when the CPU fetches bytes that do not decode."""

    code = "invalid-instruction"


class CfiViolation(VMError):
    """Raised when an MCFI check transaction halts the program.

    The ``hlt`` at the end of a check transaction maps to this exception:
    an indirect branch attempted a transfer not permitted by the CFG.
    """

    code = "cfi-violation"

    def __init__(self, branch_address: int, target_address: int,
                 reason: str) -> None:
        self.branch_address = branch_address
        self.target_address = target_address
        self.reason = reason
        super().__init__(
            f"CFI violation: branch at {branch_address:#x} -> "
            f"{target_address:#x} ({reason})")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(branch_address=self.branch_address,
                   target_address=self.target_address, reason=self.reason)
        return out


class SandboxViolation(VMError):
    """Raised when code attempts to escape the data sandbox."""

    code = "sandbox-violation"


# ---------------------------------------------------------------------------
# MCFI runtime, linking and verification
# ---------------------------------------------------------------------------

class RuntimeError_(ReproError):
    """Base class for MCFI runtime errors (loading, syscalls, W^X)."""

    code = "runtime"


class WxViolation(RuntimeError_):
    """Raised when a mapping would be both writable and executable."""

    code = "wx-violation"


class TableIntegrityError(RuntimeError_):
    """Raised when the ID tables cannot be trusted any longer.

    Two escalation paths lead here: a check transaction exhausting its
    bounded retry budget under sustained version churn (instead of
    spinning forever), and a table audit finding an entry whose stored
    ID disagrees with the trusted ECN assignment (e.g. after a fault
    injection flipped a bit).  Both are fail-safe: the runtime halts or
    quarantines rather than risking a forged edge.
    """

    code = "table-integrity"

    def __init__(self, message: str, index: int | None = None,
                 retries: int | None = None) -> None:
        self.index = index
        self.retries = retries
        super().__init__(message)

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(index=self.index, retries=self.retries)
        return out


class ServiceBackpressure(RuntimeError_):
    """Raised when the table service's update queue is at capacity.

    The :class:`repro.service.coalescer.UpdateCoalescer` bounds its
    pending-request queue; a submitter seeing this error must yield and
    retry (cooperative backpressure) instead of growing the queue
    without bound while commits fall behind.
    """

    code = "service-backpressure"

    def __init__(self, pending: int, limit: int) -> None:
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"update queue full ({pending}/{limit} pending)")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(pending=self.pending, limit=self.limit)
        return out


class ShardQuarantined(RuntimeError_):
    """Raised when a request targets a quarantined table shard.

    The shard's health breaker is open: its tables failed an integrity
    audit or rolled back too many rounds, so it is fenced (generation
    stamp bumped, fused dispatch entries invalid) and serves **no
    updates** until recovery rebuilds and re-verifies its bands.  The
    coalescer parks such requests rather than raising in the common
    path; this error is the API-boundary surface for direct submitters.
    """

    code = "shard-quarantined"

    def __init__(self, shard: int, reason: str = "") -> None:
        self.shard = shard
        self.reason = reason
        suffix = f" ({reason})" if reason else ""
        super().__init__(f"shard {shard} is quarantined{suffix}")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(shard=self.shard, reason=self.reason)
        return out


class DeadlineExceeded(RuntimeError_):
    """Raised when a request's logical-clock deadline budget lapses.

    Deadlines are scheduler ticks (deterministic, never wall time); a
    request still queued or parked past its ``deadline_tick`` fails
    with this error instead of waiting out a stalled shard forever.
    """

    code = "deadline-exceeded"

    def __init__(self, request_id: str, deadline_tick: int,
                 now_tick: int) -> None:
        self.request_id = request_id
        self.deadline_tick = deadline_tick
        self.now_tick = now_tick
        super().__init__(
            f"request {request_id} missed deadline tick "
            f"{deadline_tick} (now {now_tick})")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(request_id=self.request_id,
                   deadline_tick=self.deadline_tick,
                   now_tick=self.now_tick)
        return out


class InjectedFault(ReproError):
    """Raised by the fault-injection plane (:mod:`repro.faults`).

    Carries the fault point so recovery code and tests can assert
    exactly which phase failed.  Never raised in production paths
    unless a :class:`repro.faults.plane.FaultPlane` armed the point.
    """

    code = "injected-fault"

    def __init__(self, point: str, detail: str = "") -> None:
        self.point = point
        self.detail = detail
        suffix = f": {detail}" if detail else ""
        super().__init__(f"injected fault at {point!r}{suffix}")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(point=self.point, detail=self.detail)
        return out


class LinkError(ReproError):
    """Raised by the static or dynamic linker (e.g. unresolved symbols)."""

    code = "link"


class VerificationError(ReproError):
    """Raised when the modular verifier rejects a module."""

    code = "verification"

    def __init__(self, message: str, address: int | None = None) -> None:
        self.address = address
        if address is not None:
            message = f"{message} (at {address:#x})"
        super().__init__(message)


class UnitVerificationError(VerificationError):
    """Raised when a compilation unit fails the binary verifier.

    The build-cache publish gate: a unit artifact (from a pool worker
    or the on-disk cache) is admitted only after the machine-code
    verifier proves its check transactions, store masks and alignment
    intact.  ``report`` carries the full
    :class:`repro.analysis.binverify.VerifyReport` when available.
    """

    code = "unit-verification"

    def __init__(self, message: str, unit: str | None = None,
                 report: object = None) -> None:
        self.unit = unit
        self.report = report
        super().__init__(message)

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out.update(unit=self.unit)
        return out


class CfgGenerationError(ReproError):
    """Raised when CFG generation fails (e.g. unknown symbol types)."""

    code = "cfg-generation"
