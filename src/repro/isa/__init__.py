"""SimISA: the virtual instruction set targeted by this reproduction.

A variable-length-encoded, x86-64-flavoured ISA with direct and indirect
calls/jumps, returns, and the MCFI table-access instructions.  See
:mod:`repro.isa.instructions` for the instruction set and
:mod:`repro.isa.assembler` for the symbolic assembly layer that code
generation and MCFI instrumentation operate on.
"""

from repro.isa.registers import (
    ARG_REGS,
    CALLEE_SAVED,
    MCFI_SCRATCH,
    NUM_REGS,
    RET_REG,
    Reg,
)
from repro.isa.instructions import (
    Instruction,
    MAX_INSTRUCTION_LENGTH,
    Op,
    OpSpec,
    OperandKind,
    SPECS,
    instruction_length,
)
from repro.isa.encoding import decode, decode_stream, encode, encode_all
from repro.isa.assembler import (
    Align,
    AlignEnd,
    AsmInstr,
    Assembled,
    BarySlot,
    Data,
    DataWord,
    Label,
    LabelRef,
    Mark,
    assemble,
)
from repro.isa.disasm import (
    DecodedInstr,
    dump,
    format_instr,
    linear_sweep,
    sweep_ranges,
    try_decode_at,
)

__all__ = [
    "ARG_REGS", "CALLEE_SAVED", "MCFI_SCRATCH", "NUM_REGS", "RET_REG", "Reg",
    "Instruction", "MAX_INSTRUCTION_LENGTH", "Op", "OpSpec", "OperandKind",
    "SPECS", "instruction_length",
    "decode", "decode_stream", "encode", "encode_all",
    "Align", "AlignEnd", "AsmInstr", "Assembled", "BarySlot", "Data",
    "DataWord", "Label", "LabelRef", "Mark", "assemble",
    "DecodedInstr", "dump", "format_instr", "linear_sweep", "sweep_ranges",
    "try_decode_at",
]
