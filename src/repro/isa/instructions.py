"""SimISA instruction set definition.

SimISA is a variable-length-encoded virtual instruction set modelled on
x86-64.  Variable-length encoding is essential to this reproduction: it
is what makes the paper's 4-byte alignment no-ops meaningful, lets the
modular verifier do real disassembly, and lets the ROP gadget scanner
find gadgets that start in the *middle* of an instruction.

Each opcode has:

* a one-byte opcode value,
* an operand signature (a tuple of operand kinds, see :data:`OperandKind`),
* a cycle cost used by the VM's deterministic cycle model, and
* flags describing its control-flow role (used by the verifier, the CFG
  generator and the gadget scanner).

The MCFI-specific instructions mirror the paper's Figure 4 sequence:

* ``TLOAD_RI r, imm`` — ``movl %gs:imm, r``: read a 4-byte ID from the
  table segment at a constant index (Bary reads; the index is patched in
  by the loader).
* ``TLOAD_RR r1, r2`` — ``movl %gs:(r2), r1``: read a 4-byte ID from the
  table segment at a register-supplied address (Tary reads).
* ``TESTB1 r`` — ``testb $1, %sil``-style check of an ID's low
  reserved bit.
* ``CMPW_RR r1, r2`` — compare the low 16 bits of two IDs (the version
  halves; see the ID encoding in :mod:`repro.core.idencoding`).
* ``MOVZX32 r`` — ``movl %ecx, %ecx``: clear the upper 32 bits, which
  both sandboxes addresses into ``[0, 4GB)`` and is the paper's x86-64
  write-sandboxing primitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import EncodingError
from repro.isa.registers import Reg


class OperandKind(enum.Enum):
    """Kinds of instruction operands and their encoded byte widths."""

    REG = "reg"      # 1 byte: register number
    IMM8 = "imm8"    # 1 byte: unsigned 8-bit immediate
    IMM32 = "imm32"  # 4 bytes: signed 32-bit immediate (little endian)
    IMM64 = "imm64"  # 8 bytes: signed 64-bit immediate (little endian)
    REL32 = "rel32"  # 4 bytes: signed 32-bit PC-relative displacement


_WIDTH = {
    OperandKind.REG: 1,
    OperandKind.IMM8: 1,
    OperandKind.IMM32: 4,
    OperandKind.IMM64: 8,
    OperandKind.REL32: 4,
}


class Op(enum.IntEnum):
    """SimISA opcodes.  Values are the first byte of the encoding."""

    NOP = 0x01
    HLT = 0x02
    SYSCALL = 0x03

    MOV_RR = 0x10
    MOV_RI = 0x11
    MOVZX32 = 0x12
    LEA = 0x13          # dst = base + disp32

    ADD_RR = 0x20
    ADD_RI = 0x21
    SUB_RR = 0x22
    SUB_RI = 0x23
    IMUL_RR = 0x24
    IDIV_RR = 0x25      # dst = dst / src (signed, trunc toward zero)
    IMOD_RR = 0x26      # dst = dst % src
    AND_RR = 0x27
    AND_RI = 0x28
    OR_RR = 0x29
    OR_RI = 0x2A
    XOR_RR = 0x2B
    XOR_RI = 0x2C
    SHL_RI = 0x2D
    SHR_RI = 0x2E
    SHL_RR = 0x2F
    SHR_RR = 0x30
    NEG = 0x31
    NOT = 0x32

    CMP_RR = 0x38
    CMP_RI = 0x39
    TEST_RR = 0x3A
    TEST_RI = 0x3B
    CMPW_RR = 0x3C      # compare low 16 bits (ID version comparison)
    TESTB1 = 0x3D       # ZF = ((reg & 1) == 0) (ID validity check)

    LOAD8 = 0x40        # dst = zx(mem8[base + disp32])
    LOAD32 = 0x41       # dst = zx(mem32[base + disp32])
    LOAD64 = 0x42       # dst = mem64[base + disp32]
    STORE8 = 0x43       # mem8[base + disp32] = src (low byte)
    STORE32 = 0x44      # mem32[base + disp32] = src (low 4 bytes)
    STORE64 = 0x45      # mem64[base + disp32] = src
    LOAD16 = 0x46       # dst = zx(mem16[base + disp32])
    STORE16 = 0x47      # mem16[base + disp32] = src (low 2 bytes)

    SAR_RI = 0x34       # arithmetic (sign-preserving) shift right
    SAR_RR = 0x35

    PUSH = 0x48
    POP = 0x49

    CALL = 0x50         # direct call, rel32
    CALL_R = 0x51       # indirect call via register
    JMP = 0x52          # direct jump, rel32
    JMP_R = 0x53        # indirect jump via register
    RET = 0x54

    JE = 0x58
    JNE = 0x59
    JL = 0x5A
    JLE = 0x5B
    JG = 0x5C
    JGE = 0x5D
    JB = 0x5E           # unsigned below
    JAE = 0x5F          # unsigned above-or-equal

    TLOAD_RI = 0x60     # dst32 = table[imm32]   (Bary read)
    TLOAD_RR = 0x61     # dst32 = table[src]     (Tary read)

    FADD_RR = 0x70      # IEEE-754 double ops; registers hold raw bits
    FSUB_RR = 0x71
    FMUL_RR = 0x72
    FDIV_RR = 0x73
    FCMP_RR = 0x74
    CVTSI2F = 0x75      # reg = bits(float(signed reg))
    CVTF2SI = 0x76      # reg = int(trunc(float_bits(reg)))


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    operands: Tuple[OperandKind, ...]
    cost: int
    is_branch: bool = False        # transfers control
    is_indirect: bool = False      # indirect branch (ret / call_r / jmp_r)
    is_cond: bool = False          # conditional branch
    is_call: bool = False
    is_ret: bool = False
    writes_memory: bool = False
    reads_table: bool = False


R = OperandKind.REG
I8 = OperandKind.IMM8
I32 = OperandKind.IMM32
I64 = OperandKind.IMM64
REL = OperandKind.REL32

SPECS: dict[Op, OpSpec] = {
    # Alignment no-ops and the movzx32 sandbox masks issue in
    # spare superscalar slots (Sec. 8.1 discusses why the
    # instrumentation is nearly free on a real CPU); the cycle
    # model charges them nothing.  The two table loads of a
    # check transaction execute in parallel with no mutual
    # dependency ("confirmed by our micro-benchmarks").
    Op.NOP: OpSpec("nop", (), 0),
    Op.HLT: OpSpec("hlt", (), 1),
    Op.SYSCALL: OpSpec("syscall", (), 50),

    Op.MOV_RR: OpSpec("mov", (R, R), 1),
    Op.MOV_RI: OpSpec("mov", (R, I64), 1),
    Op.MOVZX32: OpSpec("movzx32", (R,), 0),
    Op.LEA: OpSpec("lea", (R, R, I32), 1),

    Op.ADD_RR: OpSpec("add", (R, R), 1),
    Op.ADD_RI: OpSpec("add", (R, I32), 1),
    Op.SUB_RR: OpSpec("sub", (R, R), 1),
    Op.SUB_RI: OpSpec("sub", (R, I32), 1),
    Op.IMUL_RR: OpSpec("imul", (R, R), 3),
    Op.IDIV_RR: OpSpec("idiv", (R, R), 10),
    Op.IMOD_RR: OpSpec("imod", (R, R), 10),
    Op.AND_RR: OpSpec("and", (R, R), 1),
    Op.AND_RI: OpSpec("and", (R, I32), 1),
    Op.OR_RR: OpSpec("or", (R, R), 1),
    Op.OR_RI: OpSpec("or", (R, I32), 1),
    Op.XOR_RR: OpSpec("xor", (R, R), 1),
    Op.XOR_RI: OpSpec("xor", (R, I32), 1),
    Op.SHL_RI: OpSpec("shl", (R, I8), 1),
    Op.SHR_RI: OpSpec("shr", (R, I8), 1),
    Op.SHL_RR: OpSpec("shl", (R, R), 1),
    Op.SHR_RR: OpSpec("shr", (R, R), 1),
    Op.NEG: OpSpec("neg", (R,), 1),
    Op.NOT: OpSpec("not", (R,), 1),

    Op.CMP_RR: OpSpec("cmp", (R, R), 1),
    Op.CMP_RI: OpSpec("cmp", (R, I32), 1),
    Op.TEST_RR: OpSpec("test", (R, R), 1),
    Op.TEST_RI: OpSpec("test", (R, I32), 1),
    Op.CMPW_RR: OpSpec("cmpw", (R, R), 1),
    Op.TESTB1: OpSpec("testb1", (R,), 1),

    Op.LOAD8: OpSpec("load8", (R, R, I32), 2),
    Op.LOAD32: OpSpec("load32", (R, R, I32), 2),
    Op.LOAD64: OpSpec("load64", (R, R, I32), 2),
    Op.STORE8: OpSpec("store8", (R, I32, R), 2, writes_memory=True),
    Op.STORE32: OpSpec("store32", (R, I32, R), 2, writes_memory=True),
    Op.STORE64: OpSpec("store64", (R, I32, R), 2, writes_memory=True),
    Op.LOAD16: OpSpec("load16", (R, R, I32), 2),
    Op.STORE16: OpSpec("store16", (R, I32, R), 2, writes_memory=True),
    Op.SAR_RI: OpSpec("sar", (R, I8), 1),
    Op.SAR_RR: OpSpec("sar", (R, R), 1),

    Op.PUSH: OpSpec("push", (R,), 2, writes_memory=True),
    Op.POP: OpSpec("pop", (R,), 2),

    Op.CALL: OpSpec("call", (REL,), 3, is_branch=True, is_call=True,
                    writes_memory=True),
    # Register-indirect transfers cost more than returns: a real
    # ``ret`` is return-address-stack predicted, while ``jmp/call *r``
    # is mispredict-prone.  MCFI's rewritten return (pop + checked
    # ``jmp *rcx``) pays this, which is part of its measured overhead.
    Op.CALL_R: OpSpec("call", (R,), 4, is_branch=True, is_call=True,
                      is_indirect=True, writes_memory=True),
    Op.JMP: OpSpec("jmp", (REL,), 1, is_branch=True),
    Op.JMP_R: OpSpec("jmp", (R,), 4, is_branch=True, is_indirect=True),
    Op.RET: OpSpec("ret", (), 2, is_branch=True, is_indirect=True,
                   is_ret=True),

    Op.JE: OpSpec("je", (REL,), 1, is_branch=True, is_cond=True),
    Op.JNE: OpSpec("jne", (REL,), 1, is_branch=True, is_cond=True),
    Op.JL: OpSpec("jl", (REL,), 1, is_branch=True, is_cond=True),
    Op.JLE: OpSpec("jle", (REL,), 1, is_branch=True, is_cond=True),
    Op.JG: OpSpec("jg", (REL,), 1, is_branch=True, is_cond=True),
    Op.JGE: OpSpec("jge", (REL,), 1, is_branch=True, is_cond=True),
    Op.JB: OpSpec("jb", (REL,), 1, is_branch=True, is_cond=True),
    Op.JAE: OpSpec("jae", (REL,), 1, is_branch=True, is_cond=True),

    Op.TLOAD_RI: OpSpec("tload", (R, I32), 2, reads_table=True),
    Op.TLOAD_RR: OpSpec("tload", (R, R), 2, reads_table=True),

    Op.FADD_RR: OpSpec("fadd", (R, R), 3),
    Op.FSUB_RR: OpSpec("fsub", (R, R), 3),
    Op.FMUL_RR: OpSpec("fmul", (R, R), 3),
    Op.FDIV_RR: OpSpec("fdiv", (R, R), 10),
    Op.FCMP_RR: OpSpec("fcmp", (R, R), 3),
    Op.CVTSI2F: OpSpec("cvtsi2f", (R,), 2),
    Op.CVTF2SI: OpSpec("cvtf2si", (R,), 2),
}


def instruction_length(op: Op) -> int:
    """Return the encoded length in bytes of instructions with opcode ``op``."""
    spec = SPECS[op]
    return 1 + sum(_WIDTH[kind] for kind in spec.operands)


#: Maximum encoded instruction length (used by the decoder and scanner).
MAX_INSTRUCTION_LENGTH = max(instruction_length(op) for op in SPECS)

#: Opcodes that end a decoded basic block in the VM's dispatch plane
#: (:mod:`repro.vm.dispatch`): every control transfer plus the two
#: instructions whose execution leaves the straight-line path by
#: raising or by re-entering the trusted runtime.  Stored as plain ints
#: because the dispatch plane indexes by the opcode byte.
BLOCK_TERMINATORS = frozenset(
    int(op) for op, spec in SPECS.items()
    if spec.is_branch or op in (Op.SYSCALL, Op.HLT))


@dataclass(frozen=True)
class Instruction:
    """A decoded (or to-be-encoded) SimISA instruction.

    ``operands`` holds integers: register numbers for REG operands and
    immediate values for the rest.  PC-relative displacements are stored
    as the raw signed displacement (target = address + length + disp).
    """

    op: Op
    operands: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        spec = SPECS.get(self.op)
        if spec is None:
            raise EncodingError(f"unknown opcode {self.op!r}")
        if len(self.operands) != len(spec.operands):
            raise EncodingError(
                f"{spec.mnemonic}: expected {len(spec.operands)} operands, "
                f"got {len(self.operands)}")

    @property
    def spec(self) -> OpSpec:
        return SPECS[self.op]

    @property
    def length(self) -> int:
        return instruction_length(self.op)

    @property
    def cost(self) -> int:
        return self.spec.cost

    def branch_target(self, address: int) -> int:
        """Absolute target of a direct branch encoded at ``address``."""
        spec = self.spec
        if not spec.is_branch or spec.is_indirect:
            raise EncodingError(f"{spec.mnemonic} has no static target")
        return address + self.length + self.operands[0]

    def __str__(self) -> str:
        spec = self.spec
        parts = []
        for kind, value in zip(spec.operands, self.operands):
            if kind is OperandKind.REG:
                parts.append(str(Reg(value)))
            elif kind is OperandKind.REL32:
                parts.append(f".{value:+d}")
            else:
                parts.append(f"${value:#x}" if abs(value) > 9 else f"${value}")
        return f"{spec.mnemonic} " + ", ".join(parts) if parts else spec.mnemonic
