"""Byte-exact encoder/decoder for SimISA instructions.

The encoding is deliberately simple but *variable length* (1 to 10
bytes): one opcode byte followed by operand bytes, little-endian.  The
decoder validates opcode bytes and register numbers, so — exactly as on
x86 — an arbitrary byte offset into the code image may or may not decode,
and a byte sequence can decode differently depending on where decoding
starts.  The ROP gadget scanner and the paper's "gadgets starting in the
middle of an instruction" discussion rely on this property.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from repro.errors import EncodingError
from repro.isa.instructions import (
    SPECS,
    Instruction,
    Op,
    OperandKind,
)
from repro.isa.registers import NUM_REGS

_OPCODE_VALUES = {int(op) for op in Op}

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _sign_extend(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def encode(instr: Instruction) -> bytes:
    """Encode one instruction to bytes.

    Raises :class:`EncodingError` if an operand does not fit its field.
    """
    out = bytearray([int(instr.op)])
    for kind, value in zip(instr.spec.operands, instr.operands):
        if kind is OperandKind.REG:
            if not 0 <= value < NUM_REGS:
                raise EncodingError(f"bad register number {value}")
            out.append(value)
        elif kind is OperandKind.IMM8:
            if not 0 <= value < 256:
                raise EncodingError(f"imm8 out of range: {value}")
            out.append(value)
        elif kind in (OperandKind.IMM32, OperandKind.REL32):
            if not -(1 << 31) <= value < (1 << 32):
                raise EncodingError(f"imm32 out of range: {value}")
            out += _U32.pack(value & _MASK32)
        elif kind is OperandKind.IMM64:
            if not -(1 << 63) <= value < (1 << 64):
                raise EncodingError(f"imm64 out of range: {value}")
            out += _U64.pack(value & _MASK64)
        else:  # pragma: no cover - exhaustive over OperandKind
            raise EncodingError(f"unknown operand kind {kind}")
    return bytes(out)


def encode_all(instrs: List[Instruction]) -> bytes:
    """Encode a sequence of instructions to a contiguous byte string."""
    return b"".join(encode(i) for i in instrs)


def decode(code: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction at ``offset`` in ``code``.

    Returns ``(instruction, length)``.  Raises :class:`EncodingError` if
    the bytes at ``offset`` are not a valid instruction (bad opcode, bad
    register byte, or truncated operands).
    """
    if offset >= len(code):
        raise EncodingError("decode past end of code")
    opcode = code[offset]
    if opcode not in _OPCODE_VALUES:
        raise EncodingError(f"invalid opcode byte {opcode:#04x}")
    op = Op(opcode)
    spec = SPECS[op]
    pos = offset + 1
    operands = []
    for kind in spec.operands:
        if kind is OperandKind.REG:
            if pos + 1 > len(code):
                raise EncodingError("truncated instruction")
            value = code[pos]
            if value >= NUM_REGS:
                raise EncodingError(f"bad register byte {value:#04x}")
            pos += 1
        elif kind is OperandKind.IMM8:
            if pos + 1 > len(code):
                raise EncodingError("truncated instruction")
            value = code[pos]
            pos += 1
        elif kind in (OperandKind.IMM32, OperandKind.REL32):
            if pos + 4 > len(code):
                raise EncodingError("truncated instruction")
            value = _sign_extend(_U32.unpack_from(code, pos)[0], 32)
            pos += 4
        elif kind is OperandKind.IMM64:
            if pos + 8 > len(code):
                raise EncodingError("truncated instruction")
            value = _sign_extend(_U64.unpack_from(code, pos)[0], 64)
            pos += 8
        else:  # pragma: no cover - exhaustive over OperandKind
            raise EncodingError(f"unknown operand kind {kind}")
        operands.append(value)
    return Instruction(op, tuple(operands)), pos - offset


def decode_stream(code: bytes, offset: int = 0,
                  limit: int | None = None) -> Iterator[Tuple[int, Instruction]]:
    """Decode instructions sequentially starting at ``offset``.

    Yields ``(offset, instruction)`` pairs.  Stops at ``limit`` (an offset
    bound) or the end of ``code``; raises :class:`EncodingError` on the
    first undecodable byte, as a linear-sweep disassembler would.
    """
    end = len(code) if limit is None else min(limit, len(code))
    while offset < end:
        instr, length = decode(code, offset)
        yield offset, instr
        offset += length
