"""Two-pass assembler for symbolic SimISA assembly.

Code generation and MCFI instrumentation both operate on *symbolic
assembly*: a flat list of items mixing instructions (whose operands may
reference labels), labels, alignment directives, raw data, and *marks*.
The assembler lays the items out at a base address, resolves label
references, and returns the final byte image together with everything
downstream consumers need:

* label addresses (function entries, jump tables, ...),
* mark addresses — the auxiliary-information hooks used to build an MCFI
  module's type/CFG metadata after layout,
* Bary-slot patch sites — the ``tload`` immediates that MCFI's loader
  patches with the branch's Bary table index (Sec. 5.1 of the paper),
* absolute relocations, so a module can be re-based.

Two alignment directives mirror the paper's instrumentation needs:

* :class:`Align` pads to an ``n``-byte boundary (used before indirect
  branch *targets*: address-taken function entries, switch-case blocks,
  setjmp resume points).
* :class:`AlignEnd` pads so that the *end* of the next instruction falls
  on an ``n``-byte boundary — used before ``call`` instructions so the
  return site that follows the call is 4-byte aligned and therefore has
  a Tary table entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import AssemblerError
from repro.isa.encoding import encode
from repro.isa.instructions import (
    Instruction,
    Op,
    OperandKind,
    SPECS,
    instruction_length,
)


@dataclass(frozen=True)
class LabelRef:
    """Symbolic reference to a label, usable as an instruction operand.

    In a REL32 operand slot it resolves to a PC-relative displacement; in
    an IMM64 slot it resolves to the label's absolute address (and emits
    an absolute relocation); in an IMM32 slot it resolves to the label's
    absolute address if it fits.
    """

    name: str


@dataclass(frozen=True)
class BarySlot:
    """Placeholder for a Bary table index, patched by the loader.

    ``site`` is the module-local indirect-branch site number.  The
    assembler records the byte offset of the 4-byte immediate so the
    loader can write the process-global Bary index there (the paper's
    "loader patches the code to embed constant Bary table indexes").
    """

    site: int


Operand = Union[int, LabelRef, BarySlot]


@dataclass(frozen=True)
class AsmInstr:
    """An instruction whose operands may be symbolic."""

    op: Op
    operands: Tuple[Operand, ...] = ()

    @property
    def length(self) -> int:
        return instruction_length(self.op)


@dataclass(frozen=True)
class Label:
    name: str


@dataclass(frozen=True)
class Align:
    """Pad with NOPs to an ``n``-byte boundary."""

    n: int = 4


@dataclass(frozen=True)
class AlignEnd:
    """Pad with NOPs so the next instruction *ends* on an ``n`` boundary."""

    n: int = 4


@dataclass(frozen=True)
class Data:
    """Raw bytes placed in the image (read-only data, strings)."""

    payload: bytes


@dataclass(frozen=True)
class DataWord:
    """An 8-byte little-endian word; may reference a label (jump tables)."""

    value: Union[int, LabelRef]


@dataclass(frozen=True)
class Mark:
    """Bind ``(kind, info)`` to the address of the next item emitted.

    Marks carry no bytes.  They are how the compiler and instrumenter
    communicate machine-level facts (function entries, return sites,
    indirect-branch sites) to the MCFI auxiliary-information builder.
    """

    kind: str
    info: object = None


Item = Union[AsmInstr, Label, Align, AlignEnd, Data, DataWord, Mark]


@dataclass
class Assembled:
    """Result of assembling one item list at a base address."""

    base: int
    code: bytes
    labels: Dict[str, int]
    marks: List[Tuple[str, object, int]] = field(default_factory=list)
    bary_slots: Dict[int, int] = field(default_factory=dict)
    abs_relocs: List[int] = field(default_factory=list)
    instr_addresses: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.code)

    def marks_of(self, kind: str) -> List[Tuple[object, int]]:
        """Return ``(info, address)`` for every mark of ``kind``."""
        return [(info, addr) for k, info, addr in self.marks if k == kind]


_NOP = encode(Instruction(Op.NOP))


def assemble(items: Sequence[Item], base: int = 0,
             extern: Dict[str, int] | None = None) -> Assembled:
    """Assemble ``items`` into bytes at ``base``.

    Layout is a single deterministic pass (all instruction lengths are
    static); label resolution is a second pass.  ``extern`` supplies
    addresses of labels defined outside these items (globals in the
    data region, imported functions) — the linker's job.
    """
    # Pass 1: layout -- compute the address of every item.  Locally
    # defined labels shadow extern labels (a library may define a symbol
    # the main program routes through a PLT alias).
    addresses: List[int] = []
    labels: Dict[str, int] = {}
    extern_labels: Dict[str, int] = dict(extern) if extern else {}
    address = base
    for index, item in enumerate(items):
        if isinstance(item, Align):
            pad = (-address) % item.n
            addresses.append(address)
            address += pad
        elif isinstance(item, AlignEnd):
            next_len = _next_instr_length(items, index)
            pad = (-(address + next_len)) % item.n
            addresses.append(address)
            address += pad
        elif isinstance(item, Label):
            if item.name in labels:
                raise AssemblerError(f"duplicate label {item.name!r}")
            labels[item.name] = address
            addresses.append(address)
        elif isinstance(item, Mark):
            addresses.append(address)
        elif isinstance(item, AsmInstr):
            addresses.append(address)
            address += item.length
        elif isinstance(item, Data):
            addresses.append(address)
            address += len(item.payload)
        elif isinstance(item, DataWord):
            addresses.append(address)
            address += 8
        else:
            raise AssemblerError(f"unknown assembly item {item!r}")

    # Pass 2: emit bytes and resolve references.
    resolve: Dict[str, int] = dict(extern_labels)
    resolve.update(labels)
    out = bytearray()
    result = Assembled(base=base, code=b"", labels=labels)
    for index, item in enumerate(items):
        addr = addresses[index]
        if isinstance(item, (Align, AlignEnd)):
            if isinstance(item, Align):
                pad = (-addr) % item.n
            else:
                pad = (-(addr + _next_instr_length(items, index))) % item.n
            out += _NOP * pad
        elif isinstance(item, Label):
            pass
        elif isinstance(item, Mark):
            result.marks.append((item.kind, item.info, addr))
        elif isinstance(item, AsmInstr):
            result.instr_addresses.append(addr)
            out += _resolve_and_encode(item, addr, resolve, result, base)
        elif isinstance(item, Data):
            out += item.payload
        elif isinstance(item, DataWord):
            value = item.value
            if isinstance(value, LabelRef):
                value = _lookup(resolve, value.name)
                result.abs_relocs.append(addr - base)
            out += (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    result.code = bytes(out)
    return result


def _next_instr_length(items: Sequence[Item], index: int) -> int:
    """Length of the first instruction at or after ``index`` + 1."""
    for item in items[index + 1:]:
        if isinstance(item, AsmInstr):
            return item.length
        if isinstance(item, (Data, DataWord, Align, AlignEnd)):
            break
    raise AssemblerError("AlignEnd directive not followed by an instruction")


def _lookup(labels: Dict[str, int], name: str) -> int:
    try:
        return labels[name]
    except KeyError:
        raise AssemblerError(f"undefined label {name!r}") from None


def _resolve_and_encode(item: AsmInstr, addr: int, labels: Dict[str, int],
                        result: Assembled, base: int) -> bytes:
    spec = SPECS[item.op]
    resolved: List[int] = []
    field_offset = 1  # skip the opcode byte
    for kind, operand in zip(spec.operands, item.operands):
        width = {OperandKind.REG: 1, OperandKind.IMM8: 1,
                 OperandKind.IMM32: 4, OperandKind.REL32: 4,
                 OperandKind.IMM64: 8}[kind]
        if isinstance(operand, LabelRef):
            target = _lookup(labels, operand.name)
            if kind is OperandKind.REL32:
                resolved.append(target - (addr + item.length))
            elif kind is OperandKind.IMM64:
                resolved.append(target)
                result.abs_relocs.append(addr + field_offset - base)
            elif kind is OperandKind.IMM32:
                resolved.append(target)
            else:
                raise AssemblerError(
                    f"label {operand.name!r} used in a {kind.value} slot")
        elif isinstance(operand, BarySlot):
            if kind is not OperandKind.IMM32:
                raise AssemblerError("BarySlot must fill an imm32 slot")
            result.bary_slots[operand.site] = addr + field_offset - base
            resolved.append(0)
        else:
            resolved.append(int(operand))
        field_offset += width
    return encode(Instruction(item.op, tuple(resolved)))
