"""Linear-sweep disassembler for SimISA code images.

Used by the modular verifier (:mod:`repro.core.verifier`), the ROP
gadget scanner (:mod:`repro.attacks.gadgets`) and for human-readable
dumps in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import EncodingError
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class DecodedInstr:
    """One decoded instruction, tagged with its absolute address."""

    address: int
    instr: Instruction
    length: int

    @property
    def end(self) -> int:
        return self.address + self.length


def linear_sweep(code: bytes, base: int = 0) -> List[DecodedInstr]:
    """Disassemble ``code`` from its first byte to the end.

    Raises :class:`EncodingError` if any byte fails to decode: a
    well-formed MCFI module must disassemble completely (the paper's
    verifier relies on complete disassembly enabled by the module's
    auxiliary information).
    """
    out: List[DecodedInstr] = []
    offset = 0
    while offset < len(code):
        instr, length = decode(code, offset)
        out.append(DecodedInstr(base + offset, instr, length))
        offset += length
    return out


def sweep_ranges(code: bytes, base: int,
                 ranges: List[Tuple[int, int]]) -> List[DecodedInstr]:
    """Disassemble only the given ``[start, end)`` address ranges.

    MCFI modules interleave code with read-only data (jump tables); the
    auxiliary information tells the verifier which ranges are code.
    """
    out: List[DecodedInstr] = []
    for start, end in ranges:
        offset = start - base
        while offset < end - base:
            instr, length = decode(code, offset)
            out.append(DecodedInstr(base + offset, instr, length))
            offset += length
        if base + offset != end:
            raise EncodingError(
                f"code range [{start:#x},{end:#x}) does not end on an "
                f"instruction boundary")
    return out


def try_decode_at(code: bytes, offset: int) -> Optional[Tuple[Instruction, int]]:
    """Decode at an arbitrary offset; return None if undecodable.

    This is the gadget scanner's primitive: unlike :func:`linear_sweep`,
    decoding may start in the middle of a real instruction.
    """
    try:
        return decode(code, offset)
    except EncodingError:
        return None


def format_instr(decoded: DecodedInstr,
                 labels: Optional[Dict[int, str]] = None) -> str:
    """Render one instruction as ``address: text`` with label annotation."""
    text = str(decoded.instr)
    spec = decoded.instr.spec
    if spec.is_branch and not spec.is_indirect:
        target = decoded.instr.branch_target(decoded.address)
        name = labels.get(target) if labels else None
        suffix = f" <{name}>" if name else ""
        text = f"{spec.mnemonic} {target:#x}{suffix}"
    return f"{decoded.address:#010x}: {text}"


def dump(code: bytes, base: int = 0,
         labels: Optional[Dict[int, str]] = None) -> Iterator[str]:
    """Yield formatted lines for a whole code image."""
    label_at = labels or {}
    for decoded in linear_sweep(code, base):
        if decoded.address in label_at:
            yield f"{label_at[decoded.address]}:"
        yield "  " + format_instr(decoded, labels)
