"""``python -m repro`` — the umbrella command-line interface.

One front door for the tool CLIs, with the shared flags hoisted to the
top level::

    python -m repro [--jobs N] [--cache-dir PATH] [--seed N]
                    [--trace PATH] <command> [tool args...]

    python -m repro spec fig5 --benchmarks gcc lbm --jobs 4
    python -m repro infra run --benchmarks libquantum bzip2
    python -m repro --trace trace.jsonl spec table1
    python -m repro obs demo --seed 0

Each subcommand delegates to the matching ``repro.tools.<command>``
module, whose ``python -m repro.tools.<command>`` entry point keeps
working unchanged — those modules *are* the implementations; this
module only hoists the shared flags and forwards them to the
subcommands that understand them:

* ``--jobs``/``--cache-dir`` are appended for the tools (and tool
  subcommands) that accept them, unless already given after the
  command.
* ``--cache-dir`` also configures the process-wide artifact cache, so
  it takes effect even for tools without their own flag.
* ``--seed`` forwards as ``--seeds N`` to ``faults campaign`` and as
  ``--seed N`` to ``obs demo``.
* ``--trace PATH`` enables :mod:`repro.obs` around the whole command
  (seeded by ``--seed`` when given) and exports the JSONL trace after
  it returns.  The tool's stdout is untouched — the one extra line
  goes to stderr.  ``obs`` subcommands manage tracing themselves and
  are never wrapped.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Callable, List, Optional

#: subcommand -> repro.tools module name (all expose ``main(argv)``)
TOOLS = {
    "spec": "spec",
    "build": "build",
    "infra": "infra",
    "faults": "faults",
    "obs": "obs",
    "cc": "cc",
    "objdump": "objdump",
    "analyze": "analyze",
    "corpus": "corpus",
    "gadgets": "gadgets",
    "lint": "lint",
    "service": "service",
    "verify": "verify",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MCFI reproduction toolbox (umbrella CLI)",
        epilog="Run 'python -m repro <command> --help' for tool help.")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel workers, forwarded to commands "
                             "that fan out")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="artifact cache directory (configures the "
                             "process-wide cache and is forwarded)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="determinism seed, forwarded to seeded "
                             "commands; also seeds --trace")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="trace the whole command with repro.obs "
                             "and export JSONL here")
    parser.add_argument("command", choices=sorted(TOOLS),
                        help="tool to run")
    parser.add_argument("rest", nargs=argparse.REMAINDER,
                        help="arguments for the tool")
    return parser


def _load(command: str) -> Callable[[Optional[List[str]]], int]:
    module = importlib.import_module(f"repro.tools.{TOOLS[command]}")
    return module.main


def _has_flag(rest: List[str], flag: str) -> bool:
    return any(arg == flag or arg.startswith(flag + "=")
               for arg in rest)


def tool_argv(args: argparse.Namespace) -> List[str]:
    """The tool's argv: ``rest`` plus the shared flags it understands."""
    rest = list(args.rest)
    sub = rest[0] if rest and not rest[0].startswith("-") else None

    def add(flag: str, value: object) -> None:
        if value is not None and not _has_flag(rest, flag):
            rest.extend([flag, str(value)])

    if args.command == "spec":
        add("--jobs", args.jobs)
        add("--cache-dir", args.cache_dir)
    elif args.command == "build":
        add("--jobs", args.jobs)
        add("--cache-dir", args.cache_dir)
    elif args.command == "infra":
        if sub in ("build", "run"):
            add("--jobs", args.jobs)
        add("--cache-dir", args.cache_dir)
    elif args.command == "faults":
        if sub == "campaign":
            add("--jobs", args.jobs)
            add("--seeds", args.seed)
    elif args.command == "verify":
        add("--cache-dir", args.cache_dir)
    elif args.command == "corpus":
        if sub == "run":
            add("--jobs", args.jobs)
            add("--cache-dir", args.cache_dir)
        elif sub in ("minimize", "generate"):
            add("--seed", args.seed)
    elif args.command == "obs":
        if sub == "demo":
            add("--seed", args.seed)
            add("--out", args.trace)
    elif args.command == "service":
        if sub in ("run", "scale", "trace", "chaos"):
            add("--seed", args.seed)
    return rest


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cache_dir:
        from repro.infra.campaign import configure
        configure(args.cache_dir)
    run = _load(args.command)

    tracing = args.trace is not None and args.command != "obs"
    if not tracing:
        return run(tool_argv(args))

    from repro import obs
    obs.enable(seed=args.seed)
    try:
        code = run(tool_argv(args))
    finally:
        path = obs.export_trace(args.trace)
        spans = len(obs.OBS.tracer.spans)
        obs.disable()
        print(f"[obs] {spans} spans -> {path}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
