"""Experiment harness: regenerates every table and figure of the paper.

Each public function corresponds to one artifact of the evaluation
(Sec. 8) and returns plain data structures that the benchmark suite
prints and EXPERIMENTS.md records:

========================  =================================================
``fig5_overhead``         Fig. 5  — execution overhead, no updates
``fig6_update_overhead``  Fig. 6  — overhead under periodic update
                          transactions (the 50 Hz simulation)
``table1_analysis``       Table 1 — C1 violations and FP elimination
``table2_analysis``       Table 2 — K1/K2 classification
``stm_micro``             Sec. 8.1 micro-benchmark — MCFI vs TML/RWL/Mutex
``table3_cfg_stats``      Table 3 — IBs / IBTs / EQCs per benchmark
``air_comparison``        Sec. 8.3 — AIR values per CFI policy
``gadget_elimination``    Sec. 8.3 — ROP gadget elimination rates
``space_overhead``        Sec. 8.1 — code-size and table-space overhead
``cfg_generation_time``   Sec. 7  — CFG generation speed
``security_case_study``   Sec. 8.3 — fptr-to-execve / return hijacks
========================  =================================================

Compiled programs are cached per (benchmark, arch, mcfi) so that test
and benchmark runs pay the TinyC->SimISA pipeline once.  Builds route
through :func:`repro.infra.campaign.build_program`: when an artifact
cache is configured (``--cache-dir`` on the CLIs, or ``REPRO_CACHE_DIR``
in the environment), each module is compiled and instrumented exactly
once per configuration *across processes and invocations* and reused
from its ``.mcfo``; without one the build is the plain serial pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.analyzer import AnalysisReport, analyze_source
from repro.baselines.policies import (
    PolicyResult,
    bincfi_policy,
    chunk_policy,
    classic_cfi_policy,
    mcfi_policy,
)
from repro.cfg.generator import Cfg, generate_cfg
from repro.core.stm_baselines import ALGORITHMS, make_workload
from repro.core.transactions import periodic_updater
from repro.linker.static_linker import LinkedProgram
from repro.metrics.air import AirResult, air_table
from repro.metrics.overhead import OverheadResult, SpaceResult
from repro.obs import OBS, clock
from repro.runtime.runtime import Runtime, RunResult
from repro.workloads.spec import BENCHMARKS, Workload, workload

ARCHS = ("x32", "x64")

_PROGRAM_CACHE: Dict[Tuple[str, str, bool], LinkedProgram] = {}


def compiled(name: str, arch: str = "x64", mcfi: bool = True,
             ) -> LinkedProgram:
    """Compile + statically link one benchmark (cached in-process and,
    when an artifact cache is configured, on disk)."""
    key = (name, arch, mcfi)
    if key not in _PROGRAM_CACHE:
        from repro.infra.campaign import build_program
        _PROGRAM_CACHE[key] = build_program(name, arch=arch, mcfi=mcfi)
    return _PROGRAM_CACHE[key]


def run_once(name: str, arch: str = "x64", mcfi: bool = True) -> RunResult:
    """Load and run one benchmark once (fresh runtime).

    With an artifact cache configured the deterministic outcome is
    memoized on disk (see :func:`repro.infra.campaign.run_result`);
    otherwise this is a plain fresh-runtime execution.
    """
    from repro.infra.campaign import default_cache, run_result
    if default_cache() is not None:
        return run_result(name, arch=arch, mcfi=mcfi)
    return Runtime(compiled(name, arch, mcfi)).run()


# ---------------------------------------------------------------------------
# Fig. 5 -- execution overhead (no update transactions)
# ---------------------------------------------------------------------------

def fig5_overhead(benchmarks: Optional[Sequence[str]] = None,
                  archs: Sequence[str] = ("x64",),
                  ) -> Dict[Tuple[str, str], OverheadResult]:
    """Per-benchmark instrumented-vs-native cycle overhead."""
    out: Dict[Tuple[str, str], OverheadResult] = {}
    for name in benchmarks or BENCHMARKS:
        for arch in archs:
            native = run_once(name, arch, mcfi=False)
            hardened = run_once(name, arch, mcfi=True)
            if native.output != hardened.output or not hardened.ok:
                raise AssertionError(
                    f"{name}/{arch}: instrumented run diverged "
                    f"({hardened.violation or hardened.fault})")
            out[(name, arch)] = OverheadResult(
                name=name, arch=arch,
                native_cycles=native.cycles, mcfi_cycles=hardened.cycles,
                native_instructions=native.instructions,
                mcfi_instructions=hardened.instructions)
    return out


# ---------------------------------------------------------------------------
# Fig. 6 -- overhead with periodic update transactions
# ---------------------------------------------------------------------------

def fig6_update_overhead(benchmarks: Optional[Sequence[str]] = None,
                         arch: str = "x64", interval: int = 100_000,
                         burst: int = 32, batch: int = 256,
                         ) -> Dict[str, OverheadResult]:
    """Like Fig. 5, but an updater thread refreshes all ID versions every
    ``interval`` model cycles (the paper's 50 Hz V8-derived rate).

    Check transactions that land mid-update retry, so the measured
    cycles include the paper's "delay on check transactions".
    """
    from repro.vm.scheduler import GeneratorTask
    out: Dict[str, OverheadResult] = {}
    for name in benchmarks or BENCHMARKS:
        native = run_once(name, arch, mcfi=False)
        runtime = Runtime(compiled(name, arch, mcfi=True))
        cpu = runtime.main_cpu()
        counter: Dict[str, int] = {}
        updater = periodic_updater(
            runtime.id_tables, runtime.update_lock,
            cycles_of=lambda c=cpu: c.cycles, interval=interval,
            batch=batch, counter=counter)
        result = runtime.run_scheduled(
            seed=1, burst=burst,
            extra_tasks=[GeneratorTask(updater, name="fig6-updater")])
        if result.output != native.output or not result.ok:
            raise AssertionError(f"{name}: Fig.6 run diverged: "
                                 f"{result.violation or result.fault}")
        out[name] = OverheadResult(
            name=name, arch=arch, native_cycles=native.cycles,
            mcfi_cycles=result.cycles,
            native_instructions=native.instructions,
            mcfi_instructions=result.instructions,
            updates=counter.get("updates", 0))
    return out


# ---------------------------------------------------------------------------
# Tables 1 and 2 -- the C1/C2 analyzer
# ---------------------------------------------------------------------------

def table1_analysis(benchmarks: Optional[Sequence[str]] = None,
                    ) -> Dict[str, AnalysisReport]:
    out: Dict[str, AnalysisReport] = {}
    for name in benchmarks or BENCHMARKS:
        spec = workload(name)
        out[name] = analyze_source(spec.source, name=name)
    return out


def table2_analysis(benchmarks: Optional[Sequence[str]] = None,
                    ) -> Dict[str, Dict[str, int]]:
    return {name: report.table2_row()
            for name, report in table1_analysis(benchmarks).items()
            if report.vae}


# ---------------------------------------------------------------------------
# Sec. 8.1 -- transaction micro-benchmark
# ---------------------------------------------------------------------------

def stm_micro(iterations: int = 200_000,
              n_sites: int = 64, n_targets: int = 1024,
              ) -> Dict[str, float]:
    """Normalized check-transaction times (MCFI = 1.0).

    The paper's table: MCFI 1, TML 2, RWL 29, Mutex 22.  As in a real
    run, (almost) every check is for a *permitted* transfer — branch
    and target ECNs match — so the fast path dominates.
    """
    bary, tary = make_workload(n_sites=n_sites, n_targets=n_targets)
    n_classes = max(bary.values()) + 1
    # Site/target pairs whose ECNs match (the allowed fast path).
    pairs = []
    for i in range(4096):
        site = i % n_sites
        target = (bary[site] + n_classes * (i % (n_targets // n_classes))) \
            % n_targets
        if tary[target] != bary[site]:
            target = bary[site]  # target index == its ECN by construction
        pairs.append((site, target))
    timings: Dict[str, float] = {}
    for algorithm_cls in ALGORITHMS:
        algorithm = algorithm_cls(n_sites, n_targets, bary, tary)
        check = algorithm.check
        with OBS.tracer.span("experiments.stm", algorithm=algorithm.name,
                             iterations=iterations):
            start = clock.now()
            for i in range(iterations):
                site, target = pairs[i & 4095]
                if not check(site, target):
                    raise AssertionError(
                        "micro-benchmark pair not permitted")
            timings[algorithm.name] = clock.now() - start
    base = timings["MCFI"]
    return {name: duration / base for name, duration in timings.items()}


# ---------------------------------------------------------------------------
# Table 3 -- CFG statistics
# ---------------------------------------------------------------------------

def table3_cfg_stats(benchmarks: Optional[Sequence[str]] = None,
                     archs: Sequence[str] = ARCHS,
                     ) -> Dict[Tuple[str, str], Dict[str, int]]:
    """IBs / IBTs / EQCs per benchmark and architecture."""
    out: Dict[Tuple[str, str], Dict[str, int]] = {}
    for name in benchmarks or BENCHMARKS:
        for arch in archs:
            program = compiled(name, arch, mcfi=True)
            cfg = generate_cfg(program.module.aux)
            out[(name, arch)] = cfg.stats()
    return out


# ---------------------------------------------------------------------------
# Sec. 8.3 -- AIR comparison
# ---------------------------------------------------------------------------

def air_comparison(benchmarks: Optional[Sequence[str]] = None,
                   arch: str = "x64") -> Dict[str, float]:
    """Mean AIR per policy across benchmarks (the Sec. 8.3 table)."""
    sums: Dict[str, float] = {}
    count = 0
    for name in benchmarks or BENCHMARKS:
        program = compiled(name, arch, mcfi=True)
        aux = program.module.aux
        code_size = len(program.module.code)
        policies: List[PolicyResult] = [
            mcfi_policy(aux),
            classic_cfi_policy(aux),
            bincfi_policy(aux),
            chunk_policy(aux, program.module.base, code_size, chunk=16),
        ]
        results = air_table(policies, target_space=code_size)
        for policy_name, air_result in results.items():
            sums[policy_name] = sums.get(policy_name, 0.0) + air_result.air
        count += 1
    return {policy_name: total / count
            for policy_name, total in sums.items()}


# ---------------------------------------------------------------------------
# Sec. 8.3 -- gadget elimination
# ---------------------------------------------------------------------------

def gadget_elimination(benchmarks: Optional[Sequence[str]] = None,
                       arch: str = "x64", depth: int = 4,
                       ) -> Dict[str, Dict[str, float]]:
    """Unique-gadget counts: native image vs reachable-under-MCFI."""
    from repro.attacks.gadgets import analyze_image
    out: Dict[str, Dict[str, float]] = {}
    for name in benchmarks or BENCHMARKS:
        native = compiled(name, arch, mcfi=False)
        hardened = compiled(name, arch, mcfi=True)
        cfg = generate_cfg(hardened.module.aux)
        permitted = set(cfg.tary_ecns)
        native_report = analyze_image(native.module.code,
                                      native.module.base, depth=depth)
        hardened_report = analyze_image(hardened.module.code,
                                        hardened.module.base,
                                        permitted_targets=permitted,
                                        depth=depth)
        out[name] = {
            "native_unique": native_report.unique_total,
            "mcfi_unique": hardened_report.unique_total,
            "mcfi_reachable": hardened_report.unique_reachable,
            "elimination_pct": 100.0 * hardened_report.elimination_rate,
        }
    return out


# ---------------------------------------------------------------------------
# Sec. 8.1 -- space overhead
# ---------------------------------------------------------------------------

def space_overhead(benchmarks: Optional[Sequence[str]] = None,
                   arch: str = "x64") -> Dict[str, SpaceResult]:
    out: Dict[str, SpaceResult] = {}
    for name in benchmarks or BENCHMARKS:
        native = compiled(name, arch, mcfi=False)
        hardened = compiled(name, arch, mcfi=True)
        code_bytes = len(hardened.module.code)
        out[name] = SpaceResult(
            name=name,
            native_code_bytes=len(native.module.code),
            mcfi_code_bytes=code_bytes,
            tary_bytes=code_bytes,  # Tary mirrors the code region 1:1
            bary_bytes=4 * len(hardened.module.aux.branch_sites))
    return out


# ---------------------------------------------------------------------------
# Sec. 7 -- CFG generation speed
# ---------------------------------------------------------------------------

def cfg_generation_time(benchmarks: Optional[Sequence[str]] = None,
                        arch: str = "x64",
                        repeats: int = 3) -> Dict[str, float]:
    """Seconds per CFG generation (paper: ~150 ms for gcc)."""
    out: Dict[str, float] = {}
    for name in benchmarks or BENCHMARKS:
        program = compiled(name, arch, mcfi=True)
        best = float("inf")
        for _ in range(repeats):
            start = clock.now()
            generate_cfg(program.module.aux)
            best = min(best, clock.now() - start)
        out[name] = best
    return out


# ---------------------------------------------------------------------------
# Sec. 8.3 -- security case studies
# ---------------------------------------------------------------------------

def security_case_study() -> Dict[str, Dict[str, Tuple[bool, bool]]]:
    """(hijacked, blocked) per scheme for both attack scenarios."""
    from repro.attacks.hijack import fptr_to_execve, return_to_secret
    out: Dict[str, Dict[str, Tuple[bool, bool]]] = {}
    out["fptr-to-execve"] = {
        scheme: (o.hijacked, o.blocked)
        for scheme, o in fptr_to_execve().items()}
    out["return-to-entry"] = {
        scheme: (o.hijacked, o.blocked)
        for scheme, o in return_to_secret().items()}
    return out


# ---------------------------------------------------------------------------
# Formatting helpers used by benchmarks and docs generation
# ---------------------------------------------------------------------------

def format_fig5(results: Dict[Tuple[str, str], OverheadResult]) -> str:
    lines = [f"{'benchmark':12s} {'arch':5s} {'overhead':>9s}"]
    for (name, arch), result in results.items():
        lines.append(f"{name:12s} {arch:5s} {result.overhead_pct:8.2f}%")
    return "\n".join(lines)


def format_table(rows: Dict[str, Dict[str, object]],
                 columns: Sequence[str], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    header = f"{'benchmark':12s} " + " ".join(f"{c:>10s}" for c in columns)
    lines.append(header)
    for name, row in rows.items():
        cells = " ".join(f"{row.get(c, ''):>10}" for c in columns)
        lines.append(f"{name:12s} {cells}")
    return "\n".join(lines)
