"""The MCFI CFG generator (paper Secs. 6-7).

Takes merged auxiliary module information and produces the ECN
assignment that the runtime installs into the ID tables:

* indirect calls / indirect tail calls target type-matched
  address-taken function entries;
* returns target the return sites permitted by the call graph
  (with tail-call chains resolved);
* switch jumps target their jump-table entries;
* longjmp targets every setjmp resume point;
* PLT entries target the (dynamically resolved) imported function.

Branch target sets are then collapsed into equivalence classes exactly
as in the classic CFI: overlapping sets merge (union-find).  The
generator reports the Table 3 statistics (IBs, IBTs, EQCs) and is fast
enough to run during dynamic linking — the paper quotes ~150 ms for
gcc, and this one is linear in branches x matched targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.callgraph import CallGraph, TypeMatcher, build_call_graph
from repro.cfg.eqclass import UnionFind
from repro.core.idencoding import MAX_ECN
from repro.errors import CfgGenerationError
from repro.module.auxinfo import AuxInfo
from repro.obs import OBS


@dataclass
class Cfg:
    """A generated control-flow policy, ready for table installation."""

    #: target address -> ECN
    tary_ecns: Dict[int, int] = field(default_factory=dict)
    #: branch site -> ECN
    bary_ecns: Dict[int, int] = field(default_factory=dict)
    #: per-branch resolved target sets (address sets), for metrics
    branch_targets: Dict[int, Set[int]] = field(default_factory=dict)
    call_graph: Optional[CallGraph] = None
    n_classes: int = 0

    def stats(self) -> Dict[str, int]:
        """Table 3 row: IBs, IBTs, EQCs."""
        return {
            "IBs": len(self.bary_ecns),
            "IBTs": len(self.tary_ecns),
            "EQCs": self.n_classes,
        }

    def permits(self, site: int, address: int) -> bool:
        """Ground-truth query: does the CFG allow site -> address?"""
        branch_ecn = self.bary_ecns.get(site)
        target_ecn = self.tary_ecns.get(address)
        return branch_ecn is not None and branch_ecn == target_ecn


def generate_cfg(aux: AuxInfo,
                 plt_resolution: Optional[Dict[str, int]] = None) -> Cfg:
    """Generate the CFG/ECN assignment for a merged module.

    ``plt_resolution`` maps imported symbol names to their resolved
    entry addresses (supplied by the dynamic linker); PLT branch sites
    target exactly their resolved symbol.
    """
    with OBS.tracer.span("cfg.generate") as span:
        cfg = _generate_cfg(aux, plt_resolution)
        stats = cfg.stats()
        span.set(ibs=stats["IBs"], ibts=stats["IBTs"],
                 eqcs=stats["EQCs"])
        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter("cfg.generations").inc()
            metrics.gauge("cfg.eqcs").set(stats["EQCs"])
            metrics.histogram("cfg.ibts").observe(stats["IBTs"])
        return cfg


def _generate_cfg(aux: AuxInfo,
                  plt_resolution: Optional[Dict[str, int]]) -> Cfg:
    matcher = TypeMatcher(list(aux.functions.values()))
    graph = build_call_graph(aux)
    union = UnionFind()

    # Enumerate all possible indirect-branch targets first: address-taken
    # function entries, return sites, switch cases, setjmp resumes.
    for func in aux.functions.values():
        if func.address_taken:
            union.add(func.entry)
    for retsite in aux.retsites:
        union.add(retsite.address)
    for site in aux.branch_sites:
        for target in site.targets:
            union.add(target)
    for resume in aux.setjmp_resumes:
        union.add(resume)

    branch_targets: Dict[int, Set[int]] = {}
    for site in aux.branch_sites:
        targets = _targets_of(site, aux, graph, matcher, plt_resolution)
        branch_targets[site.site] = targets
        union.union_all(targets)

    tary_ecns = union.class_numbers()
    n_classes = len(set(tary_ecns.values()))
    if n_classes > MAX_ECN:
        raise CfgGenerationError(
            f"{n_classes} equivalence classes exceed the 14-bit ECN space")

    # Branches with an empty target set get a fresh ECN that no target
    # carries: every transfer through them halts (correct: the CFG
    # allows nothing).
    bary_ecns: Dict[int, int] = {}
    next_free = n_classes
    for site in aux.branch_sites:
        targets = branch_targets[site.site]
        if targets:
            bary_ecns[site.site] = tary_ecns[union.find(next(iter(targets)))]
        else:
            bary_ecns[site.site] = next_free
            next_free += 1
    # Re-read ECNs through the union-find for all targets (the find()
    # above returns a representative; class_numbers already assigned per
    # member, so representative and member numbers agree by class).
    for site in aux.branch_sites:
        targets = branch_targets[site.site]
        if targets:
            bary_ecns[site.site] = tary_ecns[next(iter(targets))]

    cfg = Cfg(tary_ecns=tary_ecns, bary_ecns=bary_ecns,
              branch_targets=branch_targets, call_graph=graph,
              n_classes=n_classes)
    return cfg


def _targets_of(site, aux: AuxInfo, graph: CallGraph, matcher: TypeMatcher,
                plt_resolution: Optional[Dict[str, int]]) -> Set[int]:
    if site.kind in ("icall", "tail"):
        matches = {f.entry for f in matcher.matches(site.sig)}
        if site.ptargets:
            # Points-to refinement: intersect with the proven callee
            # set.  The hint may only *narrow* the policy — on an empty
            # intersection (e.g. a hint naming a function the matcher
            # rejects on type grounds) fall back to pure type matching
            # so the CFG never loses the paper's baseline guarantees.
            hinted = {aux.functions[name].entry for name in site.ptargets
                      if name in aux.functions}
            narrowed = matches & hinted
            if narrowed:
                return narrowed
        return matches
    if site.kind == "ret":
        return set(graph.return_targets.get(site.fn, ()))
    if site.kind == "switch":
        return set(site.targets)
    if site.kind == "longjmp":
        return set(aux.setjmp_resumes)
    if site.kind == "plt":
        if plt_resolution and site.plt_symbol in plt_resolution:
            return {plt_resolution[site.plt_symbol]}
        exported = aux.exports.get(site.plt_symbol)
        return {exported} if exported is not None else set()
    raise CfgGenerationError(f"unknown branch-site kind {site.kind!r}")


def describe(cfg: Cfg, aux: AuxInfo) -> List[Tuple[str, int, int]]:
    """Human-readable per-kind summary: (kind, branches, avg targets)."""
    by_kind: Dict[str, List[int]] = {}
    for site in aux.branch_sites:
        by_kind.setdefault(site.kind, []).append(
            len(cfg.branch_targets.get(site.site, ())))
    out = []
    for kind, sizes in sorted(by_kind.items()):
        avg = sum(sizes) // max(len(sizes), 1)
        out.append((kind, len(sizes), avg))
    return out
