"""Equivalence-class partitioning of indirect-branch targets (Sec. 2).

"Two target addresses are equivalent if there is an indirect branch
that can jump to both targets according to the CFG.  [...] If two
indirect branches target two sets of destinations and those two sets
are not disjoint, the two sets are merged into one equivalence class."

This is exactly a union-find over target addresses where each branch
unions its whole target set; the number of resulting classes is the
"EQCs" column of Table 3, and the loss of precision relative to the raw
CFG is the price the classic-CFI/MCFI encoding pays for O(1) checks.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Union-find with path compression over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: Hashable, right: Hashable) -> None:
        lroot = self.find(left)
        rroot = self.find(right)
        if lroot == rroot:
            return
        if self._rank[lroot] < self._rank[rroot]:
            lroot, rroot = rroot, lroot
        self._parent[rroot] = lroot
        if self._rank[lroot] == self._rank[rroot]:
            self._rank[lroot] += 1

    def union_all(self, items: Iterable[Hashable]) -> None:
        items = list(items)
        if not items:
            return
        first = items[0]
        for item in items[1:]:
            self.union(first, item)

    def groups(self) -> List[List[Hashable]]:
        buckets: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            buckets.setdefault(self.find(item), []).append(item)
        return list(buckets.values())

    def class_numbers(self, start: int = 0) -> Dict[Hashable, int]:
        """Assign a stable ECN to every item, grouped by class.

        Classes are numbered in order of their smallest member so the
        assignment is deterministic across runs.
        """
        groups = sorted(self.groups(), key=lambda g: min(g))
        numbering: Dict[Hashable, int] = {}
        for index, group in enumerate(groups):
            for item in group:
                numbering[item] = start + index
        return numbering

    def __len__(self) -> int:
        return len({self.find(item) for item in self._parent})
