"""Call-graph construction with tail-call chains (paper Sec. 6).

"To compute control-flow edges out of return instructions, we construct
a call graph [...].  Tail calls are handled in the following way: if in
function f there is a call node calling g, and g calls h through a
series of tail calls, then an edge from the call node in f to h is
added to the call graph."

The graph is built purely from auxiliary module information: direct
call edges, indirect call signatures resolved by type matching, and
tail-call edges (direct and indirect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.module.auxinfo import AuxInfo, FunctionAux
from repro.tinyc.types import FuncSig, signatures_match


@dataclass
class CallGraph:
    """Resolved call graph over one merged module."""

    #: function name -> set of functions its *calls* may ultimately
    #: enter via tail chains (callees closed under tail edges)
    resolved_callees: Dict[str, Set[str]] = field(default_factory=dict)
    #: function name -> return-site addresses its returns may target
    return_targets: Dict[str, Set[int]] = field(default_factory=dict)
    #: (caller, callee) direct+indirect call edges before tail closure
    edges: Set[Tuple[str, str]] = field(default_factory=set)


class TypeMatcher:
    """Caches type-matching queries: signature -> address-taken functions."""

    def __init__(self, functions: List[FunctionAux]) -> None:
        self._address_taken = [f for f in functions if f.address_taken]
        self._cache: Dict[FuncSig, Tuple[FunctionAux, ...]] = {}

    def matches(self, sig: Optional[FuncSig]) -> Tuple[FunctionAux, ...]:
        """Address-taken functions an fptr of signature ``sig`` may call."""
        if sig is None:
            return ()
        cached = self._cache.get(sig)
        if cached is None:
            cached = tuple(f for f in self._address_taken
                           if signatures_match(sig, f.sig))
            self._cache[sig] = cached
        return cached


def _tail_closure(aux: AuxInfo, matcher: TypeMatcher) -> Dict[str, Set[str]]:
    """For every function g: the set of functions a call to g may be
    *in* when it finally returns (g itself plus tail-chain targets)."""
    tail_edges: Dict[str, Set[str]] = {}
    for caller, callee, is_tail in aux.direct_calls:
        if is_tail:
            tail_edges.setdefault(caller, set()).add(callee)
    for site in aux.branch_sites:
        if site.kind == "tail":
            targets = {f.name for f in matcher.matches(site.sig)}
            tail_edges.setdefault(site.fn, set()).update(targets)

    closure: Dict[str, Set[str]] = {}

    def close(name: str, visiting: Set[str]) -> Set[str]:
        if name in closure:
            return closure[name]
        if name in visiting:
            return {name}  # tail-recursion cycle
        visiting.add(name)
        result = {name}
        for succ in tail_edges.get(name, ()):
            result |= close(succ, visiting)
        visiting.discard(name)
        closure[name] = result
        return result

    for name in set(aux.functions) | set(tail_edges):
        close(name, set())
    return closure


def build_call_graph(aux: AuxInfo) -> CallGraph:
    """Build the call graph and per-function return-target sets."""
    matcher = TypeMatcher(list(aux.functions.values()))
    closure = _tail_closure(aux, matcher)
    graph = CallGraph()
    return_targets: Dict[str, Set[int]] = {name: set()
                                           for name in aux.functions}

    def landing_functions(callee: str) -> Set[str]:
        return closure.get(callee, {callee})

    for retsite in aux.retsites:
        if retsite.callee is not None:
            callees = {retsite.callee}
        else:
            callees = {f.name for f in matcher.matches(retsite.sig)}
        for callee in callees:
            graph.edges.add((retsite.caller, callee))
            for landing in landing_functions(callee):
                return_targets.setdefault(landing, set()).add(
                    retsite.address)

    # Non-returning tail positions contribute edges too (for AIR and
    # reachability analyses), though no return sites.
    for caller, callee, is_tail in aux.direct_calls:
        if is_tail:
            graph.edges.add((caller, callee))
    for site in aux.branch_sites:
        if site.kind == "tail":
            for target in matcher.matches(site.sig):
                graph.edges.add((site.fn, target.name))

    graph.return_targets = return_targets
    for caller, callee in graph.edges:
        graph.resolved_callees.setdefault(caller, set()).add(callee)
    return graph
