"""Type-matching utilities with *explanations*.

The matching rule itself lives in
:func:`repro.tinyc.types.signatures_match` (structural equality with
the variadic fixed-prefix relaxation) and is consumed by
:class:`repro.cfg.callgraph.TypeMatcher`.  This module adds the
debugging surface a CFG user needs when a call unexpectedly halts:
*why* does (or doesn't) this function match that pointer type?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.module.auxinfo import AuxInfo, FunctionAux
from repro.tinyc.types import FuncSig, signatures_match


@dataclass(frozen=True)
class MatchVerdict:
    """Why a (pointer signature, function) pair matches or does not."""

    function: str
    matches: bool
    reason: str


def explain_match(pointer_sig: FuncSig, func: FunctionAux) -> MatchVerdict:
    """Explain the type-matching decision for one candidate function."""
    name = func.name
    if not func.address_taken:
        return MatchVerdict(name, False,
                            "function is never address-taken, so it is "
                            "not an indirect-call target at all")
    sig = func.sig
    if pointer_sig == sig:
        return MatchVerdict(name, True, "signatures are structurally "
                            "identical")
    if pointer_sig.variadic:
        fixed = pointer_sig.params
        if pointer_sig.ret != sig.ret:
            return MatchVerdict(
                name, False,
                f"variadic pointer returns {pointer_sig.ret} but the "
                f"function returns {sig.ret}")
        if sig.params[:len(fixed)] != fixed:
            return MatchVerdict(
                name, False,
                f"fixed parameter prefix {fixed} does not match the "
                f"function's parameters {sig.params[:len(fixed)]}")
        return MatchVerdict(name, True,
                            "variadic rule: return type and fixed "
                            "parameter prefix match")
    if pointer_sig.ret != sig.ret:
        return MatchVerdict(name, False,
                            f"return types differ: pointer "
                            f"{pointer_sig.ret} vs function {sig.ret}")
    if len(pointer_sig.params) != len(sig.params):
        return MatchVerdict(
            name, False,
            f"arity differs: pointer takes {len(pointer_sig.params)} "
            f"parameters, function takes {len(sig.params)}")
    for index, (want, have) in enumerate(zip(pointer_sig.params,
                                             sig.params)):
        if want != have:
            return MatchVerdict(
                name, False,
                f"parameter {index} differs: pointer {want} vs "
                f"function {have}")
    if pointer_sig.variadic != sig.variadic:
        return MatchVerdict(name, False,
                            "one side is variadic, the other is not")
    return MatchVerdict(name, False, "signatures differ structurally")


def match_report(pointer_sig: FuncSig, aux: AuxInfo,
                 include_matches: bool = True,
                 include_misses: bool = True) -> List[MatchVerdict]:
    """Explain the decision for every function in a module."""
    out: List[MatchVerdict] = []
    for func in aux.functions.values():
        verdict = explain_match(pointer_sig, func)
        if verdict.matches and include_matches:
            out.append(verdict)
        elif not verdict.matches and include_misses:
            out.append(verdict)
    return out


def why_blocked(pointer_sig: FuncSig, target_entry: int,
                aux: AuxInfo) -> str:
    """Human answer to "why did my indirect call halt here?"."""
    for func in aux.functions.values():
        if func.entry == target_entry:
            verdict = explain_match(pointer_sig, func)
            if verdict.matches:
                return (f"{func.name} DOES match {pointer_sig.render()} "
                        f"— if the transfer halted, the tables are stale "
                        f"or the site was resolved differently")
            return f"{func.name}: {verdict.reason}"
    retsites = {r.address for r in aux.retsites}
    if target_entry in retsites:
        return ("target is a return site: only returns (per the call "
                "graph) may land there, never indirect calls")
    return (f"{target_entry:#x} is not a function entry, return site, "
            f"or any other indirect-branch target in this module")


def sanity_check(pointer_sig: FuncSig, aux: AuxInfo) -> Optional[str]:
    """Warn when a pointer type has no targets at all (likely a K1)."""
    matches = [f for f in aux.functions.values()
               if f.address_taken and signatures_match(pointer_sig,
                                                       f.sig)]
    if matches:
        return None
    near = [f.name for f in aux.functions.values()
            if f.sig.ret == pointer_sig.ret
            and len(f.sig.params) == len(pointer_sig.params)]
    hint = f"; near-misses by shape: {', '.join(near[:4])}" if near else ""
    return (f"no address-taken function matches "
            f"{pointer_sig.render()} — every call through this pointer "
            f"will halt (a K1 case; see the analyzer){hint}")
