"""Content fingerprints for function-grain build artifacts.

A unit fingerprint is a SHA-256 over everything that determines the
unit's compiled artifact: the function's MIR (canonically serialized,
with string ids replaced by content digests so the fingerprint is
independent of module-level string numbering), its signature and
storage class, the per-function metadata merged at link time
(address-taken contributions, setjmp use), the architecture mode and
the toolchain/schema tags.  Two sources whose edits leave a function's
MIR unchanged therefore share its artifact; any change that could
affect the unit's bytes or metadata changes the key.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable

from repro.mir import ir
from repro.tinyc.types import canonical

#: Bump when the UnitArtifact schema or the unit assembly encoding
#: changes shape: invalidates every unit key.
UNIT_SCHEMA = 1

from repro.infra.cache import TOOLCHAIN_TAG  # noqa: E402  (tag reuse)


def prelude_digest(prelude: bool) -> str:
    """Digest of the implicit prelude a module was compiled against.

    The prelude declarations shape typechecking (and thus the MIR), so
    both the flag *and* the prelude text participate in module-grain
    cache keys — two sources differing only in ``prelude`` must never
    share an entry.
    """
    if not prelude:
        return "none"
    from repro.toolchain import BUILTIN_PRELUDE
    return hashlib.sha256(BUILTIN_PRELUDE.encode("utf-8")).hexdigest()


def unit_fingerprint(func: ir.MirFunction, sid_contents: Dict[int, bytes],
                     arch: str, takes: Iterable[str],
                     uses_setjmp: bool) -> str:
    """Fingerprint one function's MIR + metadata for the unit cache."""
    h = hashlib.sha256()

    def feed(value: object) -> None:
        h.update(repr(value).encode("utf-8"))
        h.update(b"\x00")

    feed(("unit", UNIT_SCHEMA, TOOLCHAIN_TAG, arch))
    feed((func.name, canonical(func.ftype), func.is_static,
          tuple(func.params), func.n_vregs))
    feed(tuple((name, canonical(ctype))
               for name, ctype in func.locals.items()))
    feed((tuple(sorted(takes)), uses_setjmp))
    for block in func.blocks:
        feed(block.label)
        for inst in block.instrs:
            if isinstance(inst, ir.ConstStr):
                digest = hashlib.sha256(sid_contents[inst.sid]).hexdigest()
                feed(("ConstStr", inst.dst, digest))
            else:
                feed(inst)
    return h.hexdigest()


def source_body_key(module: str, arch: str, body_text: str,
                    prelude: bool) -> str:
    """Key for the source-level body memo (steady-state churn path).

    Maps a function body's *text* to its unit fingerprint so re-editing
    back to a previously seen body skips the mini-frontend entirely.
    """
    h = hashlib.sha256()
    h.update(repr((module, arch, prelude_digest(prelude),
                   UNIT_SCHEMA, TOOLCHAIN_TAG)).encode("utf-8"))
    h.update(body_text.encode("utf-8"))
    return h.hexdigest()
