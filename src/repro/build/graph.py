"""Function-grain build graph: fingerprints, dirty sets, unit compiles.

A :class:`BuildGraph` is the change-detection view of one module: each
function's MIR (plus its signature, storage class, per-function
address-taken contributions and the architecture mode) hashed into a
unit fingerprint.  Comparing two graphs yields the dirty set — the only
functions whose units must be recompiled after an edit.

:func:`compile_module_units` drives the unit compiles cache-first and,
when enough units are dirty, fans them across a
:class:`repro.infra.pool.WorkerPool`.  Workers only *return* artifacts;
the parent validates each result against its expected fingerprint
before publishing anything to the cache, so a crashed or fault-injected
worker can never publish a partial unit.

Fingerprint validation proves *identity*, not *safety*: a tampering
worker could still return bytes that merely look like the unit it was
asked for.  With ``verify_units`` (the default) every pool-returned
artifact, and every artifact about to be published to the shared
cache, must additionally pass the machine-code verifier
(:func:`repro.analysis.binverify.verify_unit`) — a pool result that
fails is discarded and recompiled inline; an inline-compiled unit that
fails raises :class:`repro.errors.UnitVerificationError` (a genuine
miscompile must never be published).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.build.fingerprint import unit_fingerprint
from repro.build.link import ModuleUnits
from repro.build.units import UnitArtifact, compile_unit
from repro.mir import ir
from repro.tinyc.typecheck import CheckedUnit


@dataclass
class BuildGraph:
    """Per-function fingerprint view of one module, in definition order."""

    module: str
    arch: str
    fingerprints: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, mir: ir.MirModule, checked: CheckedUnit,
           arch: str) -> "BuildGraph":
        graph = cls(module=mir.name, arch=arch)
        for func in mir.functions:
            meta = checked.functions[func.name]
            graph.fingerprints[func.name] = unit_fingerprint(
                func, mir.strings, arch, meta.takes, meta.uses_setjmp)
        return graph

    def dirty_against(self, previous: Optional["BuildGraph"]) -> Set[str]:
        """Function names whose fingerprint changed (or are new)."""
        if previous is None:
            return set(self.fingerprints)
        return {name for name, fingerprint in self.fingerprints.items()
                if previous.fingerprints.get(name) != fingerprint}


def _compile_one(func: ir.MirFunction, module: str, arch: str,
                 strings: Dict[int, bytes], takes: Tuple[str, ...],
                 uses_setjmp: bool, fingerprint: str) -> UnitArtifact:
    return compile_unit(func, module, arch, strings, takes, uses_setjmp,
                        fingerprint)


def unit_verifies(artifact: UnitArtifact, arch: str, module: str) -> bool:
    """True iff the binary verifier accepts the unit artifact."""
    from repro.analysis.binverify import verify_unit
    from repro.errors import UnitVerificationError
    try:
        verify_unit(artifact, arch=arch, module=module)
    except UnitVerificationError:
        return False
    return True


def compile_module_units(mir: ir.MirModule, checked: CheckedUnit, arch: str,
                         cache=None, pool=None, parallel_threshold: int = 4,
                         verify_units: bool = True,
                         ) -> Tuple[ModuleUnits, BuildGraph, Dict[str, int]]:
    """Compile one module's function units, cache-first.

    Dirty units fan out across ``pool`` when at least
    ``parallel_threshold`` of them miss the cache; pool failures (worker
    crash, fault injection, unpicklable result) degrade to an inline
    recompile — the build still succeeds and only parent-validated
    artifacts are ever published.  ``verify_units`` additionally runs
    the binary verifier over every pool-returned artifact and before
    every cache publish (the untrusted-toolchain trust boundary).
    """
    graph = BuildGraph.of(mir, checked, arch)
    units: Dict[str, UnitArtifact] = {}
    misses: List[ir.MirFunction] = []
    for func in mir.functions:
        fingerprint = graph.fingerprints[func.name]
        cached = cache.get_unit(fingerprint) if cache is not None else None
        if cached is not None and cached.fn == func.name:
            units[func.name] = cached
        else:
            misses.append(func)

    def job_args(func: ir.MirFunction) -> tuple:
        meta = checked.functions[func.name]
        return (func, mir.name, arch, mir.strings,
                tuple(sorted(meta.takes)), meta.uses_setjmp,
                graph.fingerprints[func.name])

    compiled: Dict[str, UnitArtifact] = {}
    pool_ok = 0
    pool_rejected = 0
    if pool is not None and len(misses) >= parallel_threshold:
        results = pool.map(_compile_one, [job_args(f) for f in misses])
        for func, result in zip(misses, results):
            artifact = result.value if result.ok else None
            if (isinstance(artifact, UnitArtifact) and artifact.code
                    and artifact.fn == func.name
                    and artifact.fingerprint ==
                    graph.fingerprints[func.name]):
                if verify_units and not unit_verifies(artifact, arch,
                                                      mir.name):
                    # Verifiable-looking but unsafe bytes from a
                    # tampering worker: drop and recompile inline.
                    pool_rejected += 1
                    continue
                compiled[func.name] = artifact
                pool_ok += 1
    for func in misses:
        if func.name not in compiled:
            compiled[func.name] = _compile_one(*job_args(func))

    for name, artifact in compiled.items():
        units[name] = artifact
        if cache is not None:
            if verify_units:
                # Publish gate: nothing lands in the shared cache
                # unverified.  An inline-compiled unit failing here is
                # a genuine miscompile and must abort the build.
                from repro.analysis.binverify import verify_unit
                verify_unit(artifact, arch=arch, module=mir.name)
            cache.put_unit(artifact.fingerprint, artifact)

    module_units = ModuleUnits(
        name=mir.name, arch=arch,
        units=[units[func.name] for func in mir.functions],
        globals=mir.globals,
        intern_refs={scope: list(refs)
                     for scope, refs in mir.intern_refs.items()},
        global_takes=tuple(sorted(checked.global_takes)))
    stats = {"units": len(mir.functions),
             "unit_hits": len(mir.functions) - len(misses),
             "unit_compiled": len(misses),
             "unit_parallel": pool_ok,
             "unit_rejected": pool_rejected}
    return module_units, graph, stats
