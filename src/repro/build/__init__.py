"""repro.build — the incremental, parallel compile-as-a-service API.

This package is the one public compile surface of the toolchain:

* :class:`BuildSession` — owns incremental state (source indexes,
  function-grain fingerprints, unit artifacts, the last link) and
  rebuilds programs at the price of what actually changed;
* :class:`BuildGraph` — per-function fingerprints and dirty sets;
* :class:`BuildResult` — one build's program + provenance metadata.

The legacy ``repro.toolchain`` entry points remain as thin shims that
delegate here; new code should use this package directly::

    from repro.build import BuildSession

    session = BuildSession(arch="x64", cache=open_cache(".cache"))
    result = session.build({"prog": source})     # cold
    result = session.build({"prog": edited})     # incremental splice

Internals, layered bottom-up: :mod:`repro.build.fingerprint` (content
keys), :mod:`repro.build.units` (position-independent per-function
assembly), :mod:`repro.build.link` (unit-splicing linker),
:mod:`repro.build.graph` (dirty-set computation + pool fan-out),
:mod:`repro.build.source_index` (the textual mini-frontend),
:mod:`repro.build.session` (the service facade).  See docs/BUILD.md.
"""

from repro.build.api import build_program, compile_object
from repro.build.fingerprint import (
    UNIT_SCHEMA,
    prelude_digest,
    source_body_key,
    unit_fingerprint,
)
from repro.build.graph import BuildGraph, compile_module_units
from repro.build.link import (
    LinkState,
    ModuleUnits,
    link_units,
    splice_unit,
)
from repro.build.session import BuildResult, BuildSession
from repro.build.units import UnitArtifact, compile_unit

__all__ = [
    "BuildGraph",
    "BuildResult",
    "BuildSession",
    "LinkState",
    "ModuleUnits",
    "UNIT_SCHEMA",
    "UnitArtifact",
    "build_program",
    "compile_module_units",
    "compile_object",
    "compile_unit",
    "link_units",
    "prelude_digest",
    "source_body_key",
    "splice_unit",
    "unit_fingerprint",
]
