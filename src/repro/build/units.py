"""Function-grain compilation units: codegen, instrument and assemble
one function position-independently, so its bytes can be cached and
spliced into any link.

Why this is byte-exact: every instrumented unit begins with ``Align(4)``
followed by the function's entry label (function entries are always
indirect-branch targets, so :func:`instrument_stream` aligns them), and
``Align(4)``/``AlignEnd(4)`` are the only alignment directives the
pipeline emits.  Assembling the unit's items at base 0 therefore
reproduces exactly the bytes the monolithic assembler would emit at any
4-aligned address — the linker only has to insert the leading NOP pad
(``(-cursor) % 4``, the same pad the monolithic ``Align(4)`` would have
produced) and patch the recorded relocations:

* intra-unit REL32 displacements are position-independent and resolved
  here, once, at unit-assembly time;
* cross-unit and data references (direct calls, globals, strings, GOT
  slots, jump-table words, IMM64 label immediates) become relocation
  entries patched at link;
* string references are *content-addressed* — a relocation stores an
  index into the unit's ordered string-content list, never a module
  string id, so a cached unit survives string-table renumbering;
* ``BarySlot`` immediates always assemble to 0 (the loader patches
  them), so renumbering branch sites never changes bytes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instrument import (
    SiteInfo,
    _collect_aligned_labels,
    instrument_stream,
)
from repro.errors import AssemblerError
from repro.isa.assembler import (
    Align,
    AlignEnd,
    AsmInstr,
    BarySlot,
    Data,
    DataWord,
    Item,
    Label,
    LabelRef,
    Mark,
    _next_instr_length,
)
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction, Op, OperandKind, SPECS
from repro.mir import ir
from repro.mir.codegen import FunctionCodegen
from repro.tinyc.types import FuncSig

NOP = encode(Instruction(Op.NOP))

#: Relocation kinds: how the linker patches the hole at ``field_off``.
#: 'rel32'  4-byte PC-relative (extra = offset just past the instruction)
#: 'abs64'  8-byte absolute immediate (recorded as an abs relocation)
#: 'abs32'  4-byte absolute immediate (no abs relocation, as monolithic)
#: 'word'   8-byte data word (recorded as an abs relocation)
Reloc = Tuple[int, str, Tuple[str, object], int]


@dataclass
class UnitArtifact:
    """One function's compiled, instrumented, relocatable bytes +
    everything the incremental linker needs to splice it into an image.

    Offsets are relative to the unit body start, which the linker
    places at the next ``lead_align``-aligned address.  ``sites`` use
    unit-local numbering from 0; the linker renumbers globally.
    """

    fn: str
    fingerprint: str
    code: bytes = b""
    lead_align: int = 1
    labels: Dict[str, int] = field(default_factory=dict)
    relocs: List[Reloc] = field(default_factory=list)
    marks: List[Tuple[str, object, int]] = field(default_factory=list)
    #: (unit-local site, byte offset of its Bary immediate)
    bary_slots: List[Tuple[int, int]] = field(default_factory=list)
    sites: List[SiteInfo] = field(default_factory=list)
    setjmp_resumes: List[str] = field(default_factory=list)
    instr_offsets: List[int] = field(default_factory=list)
    #: ordered string contents this unit references ('S' reloc targets)
    strings: List[bytes] = field(default_factory=list)
    # -- metadata merged into the linked module's auxiliary info --
    sig: Optional[FuncSig] = None
    exported: bool = True
    takes: Tuple[str, ...] = ()
    referenced: Tuple[str, ...] = ()
    direct_calls: List[Tuple[str, str, bool]] = field(default_factory=list)
    uses_setjmp: bool = False

    @property
    def size(self) -> int:
        return len(self.code)


_WIDTHS = {OperandKind.REG: 1, OperandKind.IMM8: 1, OperandKind.IMM32: 4,
           OperandKind.REL32: 4, OperandKind.IMM64: 8}


def assemble_unit(items: Sequence[Item], module_name: str,
                  sid_contents: Dict[int, bytes],
                  artifact: UnitArtifact) -> UnitArtifact:
    """Assemble one unit's instrumented items at base 0 into
    ``artifact`` (code, labels, relocs, marks, slots, offsets)."""
    str_re = re.compile(r"\A" + re.escape(module_name) + r"\.str(\d+)\Z")
    str_index: Dict[bytes, int] = {}

    def ref_of(name: str) -> Tuple[str, object]:
        match = str_re.match(name)
        if match is None:
            return ("L", name)
        content = sid_contents[int(match.group(1))]
        index = str_index.get(content)
        if index is None:
            index = str_index[content] = len(artifact.strings)
            artifact.strings.append(content)
        return ("S", index)

    if items and isinstance(items[0], Align):
        artifact.lead_align = items[0].n

    # Pass 1: layout at base 0 (identical arithmetic to the monolithic
    # assembler at any lead_align-congruent address).
    offsets: List[int] = []
    labels = artifact.labels
    offset = 0
    for index, item in enumerate(items):
        if isinstance(item, Align):
            offsets.append(offset)
            offset += (-offset) % item.n
        elif isinstance(item, AlignEnd):
            next_len = _next_instr_length(items, index)
            offsets.append(offset)
            offset += (-(offset + next_len)) % item.n
        elif isinstance(item, Label):
            if item.name in labels:
                raise AssemblerError(f"duplicate label {item.name!r}")
            labels[item.name] = offset
            offsets.append(offset)
        elif isinstance(item, Mark):
            offsets.append(offset)
        elif isinstance(item, AsmInstr):
            offsets.append(offset)
            offset += item.length
        elif isinstance(item, Data):
            offsets.append(offset)
            offset += len(item.payload)
        elif isinstance(item, DataWord):
            offsets.append(offset)
            offset += 8
        else:
            raise AssemblerError(f"unknown assembly item {item!r}")

    # Pass 2: emit bytes; local REL32 refs resolve now, everything else
    # becomes a relocation hole.
    out = bytearray()
    relocs = artifact.relocs
    for index, item in enumerate(items):
        off = offsets[index]
        if isinstance(item, Align):
            out += NOP * ((-off) % item.n)
        elif isinstance(item, AlignEnd):
            pad = (-(off + _next_instr_length(items, index))) % item.n
            out += NOP * pad
        elif isinstance(item, Label):
            pass
        elif isinstance(item, Mark):
            artifact.marks.append((item.kind, item.info, off))
        elif isinstance(item, AsmInstr):
            artifact.instr_offsets.append(off)
            out += _encode_unit_instr(item, off, labels, relocs,
                                      artifact.bary_slots, ref_of)
        elif isinstance(item, Data):
            out += item.payload
        elif isinstance(item, DataWord):
            value = item.value
            if isinstance(value, LabelRef):
                relocs.append((off, "word", ref_of(value.name), 0))
                value = 0
            out += (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    artifact.code = bytes(out)
    return artifact


def _encode_unit_instr(item: AsmInstr, off: int, labels: Dict[str, int],
                       relocs: List[Reloc],
                       bary_slots: List[Tuple[int, int]],
                       ref_of) -> bytes:
    spec = SPECS[item.op]
    resolved: List[int] = []
    field_offset = 1  # skip the opcode byte
    for kind, operand in zip(spec.operands, item.operands):
        width = _WIDTHS[kind]
        if isinstance(operand, LabelRef):
            if kind is OperandKind.REL32:
                target = labels.get(operand.name)
                if target is not None:
                    resolved.append(target - (off + item.length))
                else:
                    relocs.append((off + field_offset, "rel32",
                                   ref_of(operand.name), off + item.length))
                    resolved.append(0)
            elif kind is OperandKind.IMM64:
                relocs.append((off + field_offset, "abs64",
                               ref_of(operand.name), 0))
                resolved.append(0)
            elif kind is OperandKind.IMM32:
                relocs.append((off + field_offset, "abs32",
                               ref_of(operand.name), 0))
                resolved.append(0)
            else:
                raise AssemblerError(
                    f"label {operand.name!r} used in a {kind.value} slot")
        elif isinstance(operand, BarySlot):
            if kind is not OperandKind.IMM32:
                raise AssemblerError("BarySlot must fill an imm32 slot")
            bary_slots.append((operand.site, off + field_offset))
            resolved.append(0)
        else:
            resolved.append(int(operand))
        field_offset += width
    return encode(Instruction(item.op, tuple(resolved)))


def compile_unit(func: ir.MirFunction, module_name: str, arch: str,
                 sid_contents: Dict[int, bytes],
                 takes: Sequence[str], uses_setjmp: bool,
                 fingerprint: str) -> UnitArtifact:
    """Run one function through codegen + instrumentation + unit
    assembly, producing its cacheable :class:`UnitArtifact`."""
    codegen = FunctionCodegen(func, module_name, arch)
    raw_items = codegen.generate()
    aligned = _collect_aligned_labels(raw_items, {func.name})
    asm = instrument_stream(raw_items, aligned,
                            namespace=f"{module_name}.{func.name}",
                            sandbox_writes=(arch == "x64"))
    artifact = UnitArtifact(
        fn=func.name, fingerprint=fingerprint,
        sig=FuncSig.of(func.ftype), exported=not func.is_static,
        takes=tuple(sorted(takes)),
        referenced=tuple(sorted(codegen.referenced)),
        direct_calls=list(codegen.direct_calls),
        uses_setjmp=uses_setjmp)
    assemble_unit(asm.items, module_name, sid_contents, artifact)
    artifact.sites = asm.sites
    artifact.setjmp_resumes = asm.setjmp_resumes
    return artifact


def assemble_plt_unit(items: Sequence[Item],
                      sites: List[SiteInfo]) -> UnitArtifact:
    """Assemble the program's PLT section as a pseudo-unit (no string
    refs; GOT labels resolve through the link's extern symbols)."""
    artifact = UnitArtifact(fn="__plt", fingerprint="", exported=False,
                            sig=None, takes=(), referenced=(),
                            direct_calls=[], uses_setjmp=False)
    assemble_unit(items, "__plt", {}, artifact)
    artifact.sites = sites
    return artifact
