"""Textual source index: top-level spans, body diffs, stub templates.

The incremental frontend avoids re-parsing a whole module when one
function body changed: a lexical scan splits the source into top-level
spans (function definitions vs everything else), two indexes are
diffed span-by-span, and a *stub source* is built in which every clean
function's body is replaced by a declaration (``head;``).  Parsing and
type-checking the stub sees the same global declarations and signatures
— so the dirty functions' MIR is identical to a full compile — at a
fraction of the frontend cost.

The scanner is deliberately conservative: anything it cannot classify
(unbalanced braces, trailing garbage) makes :func:`index_source` return
``None`` and the caller falls back to the full frontend.  Comments and
string/char literals are skipped, so braces inside them never confuse
the span structure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple


@dataclass(frozen=True)
class SourceSpan:
    """One top-level construct: a function definition or anything else."""

    kind: str           # 'func' | 'other'
    name: str           # function name; '' for 'other'
    head: str           # text up to (not including) the body '{'
    body: str           # the brace group '{...}'; '' for 'other'

    @property
    def text(self) -> str:
        return self.head + self.body


_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def _skip_noncode(source: str, i: int) -> int:
    """Advance past a comment or string/char literal starting at ``i``;
    returns the new position, or ``i`` if nothing to skip."""
    ch = source[i]
    if ch == "/" and i + 1 < len(source):
        if source[i + 1] == "/":
            end = source.find("\n", i)
            return len(source) if end < 0 else end + 1
        if source[i + 1] == "*":
            end = source.find("*/", i + 2)
            return len(source) if end < 0 else end + 2
    if ch in "\"'":
        quote = ch
        j = i + 1
        while j < len(source):
            if source[j] == "\\":
                j += 2
                continue
            if source[j] == quote:
                return j + 1
            j += 1
        return len(source)
    return i


def index_source(source: str) -> Optional[List[SourceSpan]]:
    """Split ``source`` into top-level spans; ``None`` if unclassifiable."""
    spans: List[SourceSpan] = []
    i = 0
    start = 0
    depth = 0
    body_start = -1
    last_code = ""      # last non-whitespace code character seen at depth 0
    n = len(source)
    while i < n:
        j = _skip_noncode(source, i)
        if j != i:
            i = j
            continue
        ch = source[i]
        if ch == "{":
            if depth == 0:
                body_start = i
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return None
            if depth == 0:
                head = source[start:body_start]
                body = source[body_start:i + 1]
                if last_code == ")":
                    # a top-level brace group directly after a parameter
                    # list is a function body
                    paren = head.find("(")
                    if paren < 0:
                        return None
                    match = _NAME_RE.search(head[:paren])
                    if match is None:
                        return None
                    spans.append(SourceSpan("func", match.group(1),
                                            head, body))
                    start = i + 1
                else:
                    # global initializer braces etc.: wait for the ';'
                    pass
        elif ch == ";" and depth == 0:
            spans.append(SourceSpan("other", "", source[start:i + 1], ""))
            start = i + 1
        if depth == 0 and not ch.isspace() and ch not in "{};":
            last_code = ch
        i += 1
    if depth != 0 or source[start:].strip():
        return None
    names = [span.name for span in spans if span.kind == "func"]
    if len(names) != len(set(names)):
        return None
    return spans


def diff_bodies(old: List[SourceSpan],
                new: List[SourceSpan]) -> Optional[Set[str]]:
    """Names of functions whose text changed between two indexes.

    Only *body-local* edits qualify: the two indexes must have the same
    span structure (same kinds, names, order) with every 'other' span
    and every function head textually identical.  Anything structural —
    added/removed/reordered functions, a changed signature, an edited
    global — returns ``None`` and the caller rebuilds the module.
    """
    if len(old) != len(new):
        return None
    dirty: Set[str] = set()
    for old_span, new_span in zip(old, new):
        if old_span.kind != new_span.kind or old_span.name != new_span.name:
            return None
        if old_span.kind == "other":
            if old_span.head != new_span.head:
                return None
        else:
            if old_span.head != new_span.head:
                return None
            if old_span.body != new_span.body:
                dirty.add(new_span.name)
    return dirty


def stub_source(spans: List[SourceSpan], keep: Set[str]) -> str:
    """Rebuild the source with every function body *not* in ``keep``
    replaced by a declaration (``head;``)."""
    parts: List[str] = []
    for span in spans:
        if span.kind == "func" and span.name not in keep:
            parts.append(span.head.rstrip() + ";\n")
        else:
            parts.append(span.text)
    return "".join(parts)
