"""One-shot entry points over :class:`~repro.build.session.BuildSession`.

Two call shapes cover everything the legacy ``repro.toolchain`` surface
did:

* :func:`compile_object` — one TinyC module to an (uninstrumented)
  :class:`~repro.mir.codegen.RawModule`, the module-grain pipeline used
  by the JIT engine, the campaign object cache and the object-file
  tools;
* :func:`build_program` — named sources to a linked program via a
  throwaway :class:`BuildSession`; pass ``cache``/``pool`` to share
  function-grain artifacts across calls.

Hold a :class:`BuildSession` yourself when you rebuild the *same*
program repeatedly — that is where warm and incremental rebuilds come
from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.build.session import BuildResult, BuildSession
from repro.mir.codegen import RawModule, generate
from repro.mir.lowering import lower_unit
from repro.obs import OBS


def compile_object(source: str, name: str = "unit", arch: str = "x64",
                   prelude: bool = True,
                   devirtualize: bool = False) -> RawModule:
    """Compile one TinyC module to (uninstrumented) symbolic assembly.

    ``devirtualize`` runs the function-pointer points-to pass between
    lowering and codegen: singleton-target indirect calls become direct
    calls and small resolved sets become CFG target hints (see
    :mod:`repro.analysis.dataflow.pointsto`).  Off by default so the
    baseline artifacts the paper's tables are built from stay stable.
    """
    from repro.toolchain import frontend
    with OBS.tracer.span("toolchain.compile", module=name, arch=arch):
        with OBS.tracer.span("toolchain.frontend", module=name):
            checked = frontend(source, name=name, prelude=prelude)
        with OBS.tracer.span("toolchain.lower", module=name):
            mir_module = lower_unit(checked)
        if devirtualize:
            from repro.analysis.dataflow import devirtualize_module
            devirtualize_module(mir_module)
        with OBS.tracer.span("toolchain.codegen", module=name):
            return generate(mir_module, checked, arch=arch)


def build_program(sources: Dict[str, str], arch: str = "x64",
                  mcfi: bool = True, with_libc: bool = True,
                  allow_unresolved: Optional[List[str]] = None,
                  devirtualize: bool = False,
                  cache=None, pool=None,
                  verify_units: bool = True) -> BuildResult:
    """Build named sources (plus simlibc) into a linked program.

    A one-shot :class:`BuildSession`: every build is cold at the
    session level, but with a ``cache`` the function-grain unit
    artifacts still carry over between calls (and processes).
    ``verify_units`` is the machine-code trust boundary: pool results
    and cache publishes must pass :mod:`repro.analysis.binverify`.
    """
    session = BuildSession(arch=arch, mcfi=mcfi, with_libc=with_libc,
                           allow_unresolved=allow_unresolved,
                           devirtualize=devirtualize,
                           cache=cache, pool=pool,
                           verify_units=verify_units)
    return session.build(sources)
