"""Unit-splicing linker: place cached function units, patch relocations,
merge metadata — byte-identical to the monolithic static linker.

The monolithic path (:mod:`repro.linker.static_linker`) instruments and
assembles every module's full item stream on every link.  This linker
consumes pre-assembled :class:`~repro.build.units.UnitArtifact` bodies
instead: placement is a cursor walk (each body starts at the next
``lead_align``-aligned address, padded with the same NOPs the monolithic
``Align`` directive would emit), resolution is one dict, and patching
writes the recorded relocation holes.  A rebuild that changed one
function re-patches one unit and re-concatenates — the incremental
re-link the paper's dlopen-churn story needs.

Byte-compatibility invariants (exercised by the differential tests):

* unit bodies are assembled at base 0 and placed 4-aligned, so all
  intra-unit padding and displacements match the monolithic layout;
* string relocations are content-addressed and the module string table
  is renumbered here by replaying each scope's lowering-time reference
  list through a fresh interner — reproducing cold ``sid`` numbering
  even after single-function edits add or drop literals;
* static-collision renaming (``{module}${name}``) happens at the
  metadata level only: label names never affect image bytes, so cached
  units stay name-stable across programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import SimpleNamespace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.build.units import NOP, UnitArtifact, assemble_plt_unit
from repro.core.instrument import build_plt
from repro.errors import AssemblerError, LinkError
from repro.isa.assembler import Label
from repro.linker.static_linker import (
    LinkedProgram,
    build_data_image,
    layout_data,
)
from repro.mir import ir
from repro.module.auxinfo import (
    AuxInfo,
    BranchSiteAux,
    FunctionAux,
    RetSiteAux,
)
from repro.module.module import DataLayout, McfiModule
from repro.vm.memory import CODE_BASE, DATA_BASE, PAGE_SIZE

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


@dataclass
class ModuleUnits:
    """One module's link input: ordered function units + its data."""

    name: str
    arch: str
    units: List[UnitArtifact]
    globals: Dict[str, ir.GlobalData] = field(default_factory=dict)
    #: per-scope ordered string references from lowering ('' = global
    #: initializers, else function name).  The link replays these — not
    #: the units' referenced-content lists — because cold ``sid``
    #: numbering includes strings whose code was pruned as unreachable;
    #: replaying reproduces the cold data layout exactly.
    intern_refs: Dict[str, List[bytes]] = field(default_factory=dict)
    #: function names whose address is taken at top level
    global_takes: Tuple[str, ...] = ()

    def unit(self, fn: str) -> UnitArtifact:
        for unit in self.units:
            if unit.fn == fn:
                return unit
        raise KeyError(fn)


@dataclass
class UnitFrag:
    """One placed, patched unit plus its precomputed aux fragments."""

    key: Tuple[int, str]              # (module index, fn); (-1, '__plt')
    unit: UnitArtifact
    module_name: str
    pad: int
    base: int                         # absolute address of the body
    site_base: int                    # global number of local site 0
    code: bytes                       # patched body (pad not included)
    labels: Dict[str, int]            # renamed label -> absolute address
    bary: Dict[int, int]              # global site -> offset from code base
    n_sites: int = 0
    retsites: List[RetSiteAux] = field(default_factory=list)
    branch_sites: List[BranchSiteAux] = field(default_factory=list)
    data_ranges: List[Tuple[int, int]] = field(default_factory=list)
    setjmp_resume_addrs: List[int] = field(default_factory=list)
    # renamed metadata
    fn_name: str = ""
    direct_calls: List[Tuple[str, str, bool]] = field(default_factory=list)
    takes: Tuple[str, ...] = ()
    referenced: Tuple[str, ...] = ()


@dataclass
class LinkState:
    """Everything needed to re-finalize a program after a unit splice."""

    modules: List[ModuleUnits]
    mcfi: bool
    code_base: int
    data_base: int
    entry_symbol: str
    allow_unresolved: Tuple[str, ...]
    renames: List[Dict[str, str]] = field(default_factory=list)
    frags: List[UnitFrag] = field(default_factory=list)
    resolve: Dict[str, int] = field(default_factory=dict)
    layout: Optional[DataLayout] = None
    #: per-module content -> absolute string address
    string_addr: List[Dict[bytes, int]] = field(default_factory=list)
    imports: List[str] = field(default_factory=list)
    dynamic_symbols: List[str] = field(default_factory=list)
    got_names: Dict[str, str] = field(default_factory=dict)
    #: per-module RawModule stand-ins (name/strings/globals) for the
    #: data layout and image builders
    raw_likes: List[object] = field(default_factory=list)
    program: Optional[LinkedProgram] = None


def _renamer(rmap: Dict[str, str]) -> Callable[[str], str]:
    """Prefix-aware label renamer matching the static linker's rule:
    rename exact matches and ``old.``-prefixed block/table labels."""
    if not rmap:
        return lambda label: label

    def rn(label: str) -> str:
        head, sep, rest = label.partition(".")
        new = rmap.get(head)
        if new is None:
            return label
        return new + sep + rest

    return rn


def _compute_renames(modules: Sequence[ModuleUnits]) -> List[Dict[str, str]]:
    """Replicate ``_resolve_static_collisions`` at the metadata level."""
    renames: List[Dict[str, str]] = [{} for _ in modules]
    owner: Dict[str, Tuple[int, UnitArtifact]] = {}
    for index, module in enumerate(modules):
        for unit in module.units:
            name = unit.fn
            if name not in owner:
                owner[name] = (index, unit)
                continue
            other_index, other = owner[name]
            if not unit.exported:
                renames[index][name] = f"{module.name}${name}"
            elif not other.exported:
                renames[other_index][name] = \
                    f"{modules[other_index].name}${name}"
                owner[name] = (index, unit)
            # two exported definitions: reported by the merge below
    return renames


def _module_imports(modules: Sequence[ModuleUnits],
                    renames: List[Dict[str, str]],
                    defined: Dict[str, Tuple[int, UnitArtifact]]) -> List[str]:
    referenced: set = set()
    for index, module in enumerate(modules):
        rmap = renames[index]
        for unit in module.units:
            referenced.update(rmap.get(n, n) for n in unit.referenced)
        for data in module.globals.values():
            for _, kind, symbol in data.relocs:
                if kind == "func":
                    referenced.add(rmap.get(symbol, symbol))
    return sorted(name for name in referenced if name not in defined)


def link_units(modules: List[ModuleUnits], mcfi: bool = True,
               code_base: int = CODE_BASE, data_base: int = DATA_BASE,
               entry_symbol: str = "_start",
               allow_unresolved: Optional[List[str]] = None) -> LinkState:
    """Full unit-level link: place every unit, patch, finalize."""
    if not modules:
        raise LinkError("nothing to link")
    if not mcfi:
        raise LinkError("the unit-splicing linker is MCFI-only; native "
                        "builds go through the monolithic path")
    arch = modules[0].arch
    if any(m.arch != arch for m in modules):
        raise LinkError("cannot mix x32 and x64 modules")

    state = LinkState(modules=modules, mcfi=mcfi, code_base=code_base,
                      data_base=data_base, entry_symbol=entry_symbol,
                      allow_unresolved=tuple(allow_unresolved or ()))
    state.renames = _compute_renames(modules)

    defined: Dict[str, Tuple[int, UnitArtifact]] = {}
    for index, module in enumerate(modules):
        rmap = state.renames[index]
        for unit in module.units:
            new = rmap.get(unit.fn, unit.fn)
            if new in defined:
                raise LinkError(f"multiple definitions of {new!r}")
            defined[new] = (index, unit)

    state.imports = _module_imports(modules, state.renames, defined)
    allow = set(state.allow_unresolved)
    state.dynamic_symbols = [i for i in state.imports if i in allow]
    unresolved = [i for i in state.imports if i not in allow]
    if unresolved:
        raise LinkError(f"unresolved symbols: {', '.join(unresolved)}")

    # PLT pseudo-unit for dynamically bound imports.
    state.got_names = {sym: f"__got.{sym}" for sym in state.dynamic_symbols}
    plt_unit = None
    if state.dynamic_symbols:
        plt_asm = build_plt(state.dynamic_symbols, state.got_names)
        aliased = []
        for item in plt_asm.items:
            if isinstance(item, Label) and item.name.startswith("__plt."):
                aliased.append(Label(item.name[len("__plt."):]))
            aliased.append(item)
        plt_unit = assemble_plt_unit(aliased, plt_asm.sites)

    _layout_strings_and_data(state)

    # Placement: cursor walk over every unit (then the PLT).
    placements: List[Tuple[Tuple[int, str], UnitArtifact, Dict[str, str]]] = []
    for index, module in enumerate(modules):
        for unit in module.units:
            placements.append(((index, unit.fn), unit, state.renames[index]))
    if plt_unit is not None:
        placements.append(((-1, "__plt"), plt_unit, {}))

    cursor = code_base
    site_base = 0
    placed = []
    for key, unit, rmap in placements:
        pad = (-cursor) % unit.lead_align
        base = cursor + pad
        placed.append((key, unit, rmap, pad, base, site_base))
        cursor = base + unit.size
        site_base += len(unit.sites)

    # Resolution map: data symbols first, code labels shadow them.
    resolve = dict(state.layout.symbols)
    for key, unit, rmap, pad, base, sbase in placed:
        rn = _renamer(rmap)
        for name, off in unit.labels.items():
            resolve[rn(name)] = base + off
    state.resolve = resolve

    state.frags = [
        _build_frag(state, key, unit, rmap, pad, base, sbase)
        for key, unit, rmap, pad, base, sbase in placed]
    _finalize(state)
    return state


def _layout_strings_and_data(state: LinkState) -> None:
    """Renumber each module's string table and lay out the data region.

    Replaying the ordered per-scope reference lists (globals first, then
    units in definition order) through a fresh interner reproduces the
    lowering-time ``sid`` numbering exactly — including after an edit
    added or removed literals in one function.
    """
    raw_likes = []
    state.string_addr = []
    for index, module in enumerate(state.modules):
        interner: Dict[bytes, int] = {}
        ordered: List[bytes] = []

        def intern(content: bytes) -> None:
            if content not in interner:
                interner[content] = len(ordered)
                ordered.append(content)

        for content in module.intern_refs.get("", ()):
            intern(content)
        for unit in module.units:
            for content in module.intern_refs.get(unit.fn, ()):
                intern(content)
            for content in unit.strings:  # safety net: cached units must
                intern(content)           # always resolve their 'S' relocs
        strings = {f"{module.name}.str{sid}": content
                   for sid, content in enumerate(ordered)}
        rmap = state.renames[index]
        globals_eff = module.globals
        if rmap:
            globals_eff = {
                name: replace(data, relocs=[
                    (off, kind,
                     rmap.get(sym, sym) if kind == "func" else sym)
                    for off, kind, sym in data.relocs])
                for name, data in module.globals.items()}
        raw_likes.append(SimpleNamespace(name=module.name, strings=strings,
                                         globals=globals_eff))
        state.string_addr.append(interner)  # indices for now; addresses below

    state.layout = layout_data(raw_likes, base=state.data_base,
                               got_names=state.got_names)
    for index, module in enumerate(state.modules):
        interner = state.string_addr[index]
        state.string_addr[index] = {
            content: state.layout.symbols[f"{module.name}.str{sid}"]
            for content, sid in interner.items()}
    state.raw_likes = raw_likes


def _build_frag(state: LinkState, key: Tuple[int, str], unit: UnitArtifact,
                rmap: Dict[str, str], pad: int, base: int,
                site_base: int) -> UnitFrag:
    rn = _renamer(rmap)
    module_index = key[0]
    module_name = state.modules[module_index].name if module_index >= 0 \
        else "__plt"
    str_addr = state.string_addr[module_index] if module_index >= 0 else {}
    resolve = state.resolve

    labels = {rn(name): base + off for name, off in unit.labels.items()}

    body = bytearray(unit.code)
    for field_off, kind, ref, extra in unit.relocs:
        if ref[0] == "S":
            target = str_addr[unit.strings[ref[1]]]
        else:
            name = rn(ref[1])
            target = resolve.get(name)
            if target is None:
                raise AssemblerError(f"undefined label {name!r}")
        if kind == "rel32":
            value = (target - (base + extra)) & _MASK32
            body[field_off:field_off + 4] = value.to_bytes(4, "little")
        elif kind == "abs32":
            body[field_off:field_off + 4] = \
                (target & _MASK32).to_bytes(4, "little")
        else:  # abs64 | word — 8-byte absolute
            body[field_off:field_off + 8] = \
                (target & _MASK64).to_bytes(8, "little")

    frag = UnitFrag(key=key, unit=unit, module_name=module_name, pad=pad,
                    base=base, site_base=site_base, code=bytes(body),
                    labels=labels, bary={}, n_sites=len(unit.sites),
                    fn_name=rmap.get(unit.fn, unit.fn))

    code_off = base - state.code_base
    frag.bary = {site_base + local: code_off + off
                 for local, off in unit.bary_slots}

    # Aux fragments (addresses absolute, site numbers global).
    for mark_kind, info, off in unit.marks:
        if mark_kind == "retsite":
            if len(info) == 3:
                caller, callee, sig = info
            else:
                caller, callee = info
                sig = None
            frag.retsites.append(RetSiteAux(
                address=base + off,
                caller=rmap.get(caller, caller) if caller else caller,
                callee=rmap.get(callee, callee) if callee else callee,
                sig=sig))
    jt_starts = {}
    for mark_kind, info, off in unit.marks:
        if mark_kind == "jt_start":
            jt_starts[rn(info)] = base + off
        elif mark_kind == "jt_end":
            frag.data_ranges.append((jt_starts[rn(info)], base + off))
    for site in unit.sites:
        frag.branch_sites.append(BranchSiteAux(
            site=site_base + site.site, kind=site.kind,
            fn=rmap.get(site.fn, site.fn),
            sig=site.sig,
            targets=tuple(labels[rn(t)] for t in site.targets),
            plt_symbol=site.plt_symbol,
            ptargets=tuple(rmap.get(t, t) for t in site.ptargets)))
    frag.setjmp_resume_addrs = [labels[rn(l)] for l in unit.setjmp_resumes]
    frag.direct_calls = [
        (rmap.get(cr, cr), rmap.get(ce, ce), tail)
        for cr, ce, tail in unit.direct_calls]
    frag.takes = tuple(rmap.get(t, t) for t in unit.takes)
    frag.referenced = tuple(rmap.get(t, t) for t in unit.referenced)
    return frag


def _finalize(state: LinkState) -> LinkedProgram:
    """Concatenate fragments into the final :class:`LinkedProgram`."""
    code = bytearray()
    labels: Dict[str, int] = {}
    bary: Dict[int, int] = {}
    aux = AuxInfo()
    n_sites = 0

    for frag in state.frags:
        code += NOP * frag.pad
        code += frag.code
        labels.update(frag.labels)
        bary.update(frag.bary)
        aux.retsites.extend(frag.retsites)
        aux.branch_sites.extend(frag.branch_sites)
        aux.data_ranges.extend(frag.data_ranges)
        aux.setjmp_resumes.extend(frag.setjmp_resume_addrs)
        aux.direct_calls.extend(frag.direct_calls)
        n_sites += frag.n_sites

    taken: set = set()
    for index, module in enumerate(state.modules):
        rmap = state.renames[index]
        taken.update(rmap.get(t, t) for t in module.global_takes)
        for data in module.globals.values():
            for _, kind, symbol in data.relocs:
                if kind == "func":
                    taken.add(rmap.get(symbol, symbol))
    for frag in state.frags:
        taken.update(frag.takes)

    seen_globals: set = set()
    for module in state.modules:
        for gname in module.globals:
            if gname in seen_globals:
                raise LinkError(f"multiple definitions of global {gname!r}")
            seen_globals.add(gname)

    for frag in state.frags:
        if frag.key[0] < 0:
            continue
        unit = frag.unit
        entry = labels[frag.fn_name]
        aux.functions[frag.fn_name] = FunctionAux(
            name=frag.fn_name, sig=unit.sig, entry=entry,
            address_taken=frag.fn_name in taken, exported=unit.exported,
            module=frag.module_name)
        if unit.exported:
            aux.exports[frag.fn_name] = entry

    aux.imports = list(state.imports)
    aux.data_ranges.sort()

    name = "+".join(m.name for m in state.modules)
    base = state.code_base
    code_bytes = bytes(code)
    code_ranges: List[Tuple[int, int]] = []
    cursor = base
    end = base + len(code_bytes)
    for start, stop in aux.data_ranges:
        if start > cursor:
            code_ranges.append((cursor, start))
        cursor = max(cursor, stop)
    if cursor < end:
        code_ranges.append((cursor, end))

    if state.mcfi and len(bary) != n_sites:
        raise ValueError(
            f"{name}: {n_sites} sites but {len(bary)} patched Bary slots")

    module = McfiModule(name=name, arch=state.modules[0].arch, base=base,
                        code=code_bytes, aux=aux, bary_slots=bary,
                        labels=labels, code_ranges=code_ranges)

    layout = state.layout
    layout.image = build_data_image(state.raw_likes, layout, labels)

    entry = labels.get(state.entry_symbol)
    if entry is None:
        raise LinkError(f"no entry symbol {state.entry_symbol!r}")
    heap_base = (layout.base + layout.size + PAGE_SIZE - 1) & \
        ~(PAGE_SIZE - 1)
    got_slots = {sym: layout.symbols[label]
                 for sym, label in state.got_names.items()}
    state.program = LinkedProgram(
        arch=state.modules[0].arch, mcfi=state.mcfi, module=module,
        data=layout, entry=entry, heap_base=heap_base,
        parts=[m.name for m in state.modules], got_slots=got_slots)
    return state.program


def splice_unit(state: LinkState, module_name: str, new_unit: UnitArtifact,
                intern_refs: Optional[List[bytes]] = None,
                ) -> Optional[LinkedProgram]:
    """Re-link after replacing one function's unit, reusing the layout.

    ``intern_refs`` is the edited function's new lowering-time string
    reference list (it participates in the module string table, so a
    change invalidates the reused data layout).  Returns the new
    program, or ``None`` when the replacement cannot be spliced in
    place (size, alignment, string references, site count, export
    status or import set changed) and the caller must fall back to a
    full :func:`link_units`.
    """
    module_index = next((i for i, m in enumerate(state.modules)
                         if m.name == module_name), None)
    if module_index is None:
        return None
    frag_index = next((i for i, f in enumerate(state.frags)
                       if f.key == (module_index, new_unit.fn)), None)
    if frag_index is None:
        return None
    old_frag = state.frags[frag_index]
    old_unit = old_frag.unit
    if (new_unit.size != old_unit.size
            or new_unit.lead_align != old_unit.lead_align
            or new_unit.strings != old_unit.strings
            or len(new_unit.sites) != len(old_unit.sites)
            or new_unit.exported != old_unit.exported):
        return None
    if intern_refs is not None and list(intern_refs) != list(
            state.modules[module_index].intern_refs.get(new_unit.fn, [])):
        return None

    rmap = state.renames[module_index]
    if new_unit.fn in rmap:
        return None  # entangled in a static-collision rename: replay fully

    module = state.modules[module_index]
    old_in_module = module.unit(new_unit.fn)
    unit_index = module.units.index(old_in_module)
    module.units[unit_index] = new_unit

    # The import set must not change: a new unresolved reference needs
    # the full link's error path, and added/dropped imports change the
    # PLT (hence bytes) and the merged aux.
    if tuple(new_unit.referenced) != tuple(old_in_module.referenced):
        defined: Dict[str, Tuple[int, UnitArtifact]] = {}
        for mi, mod in enumerate(state.modules):
            for unit in mod.units:
                defined[state.renames[mi].get(unit.fn, unit.fn)] = (mi, unit)
        imports = _module_imports(state.modules, state.renames, defined)
        if imports != state.imports:
            module.units[unit_index] = old_in_module  # roll back
            return None

    # Internal labels may have moved: update the resolution map before
    # re-patching (generated label names are deterministic per unit
    # namespace, so same-name entries are overwritten; stale entries
    # from removed labels are harmless).
    rn = _renamer(rmap)
    for lname, off in new_unit.labels.items():
        state.resolve[rn(lname)] = old_frag.base + off

    state.frags[frag_index] = _build_frag(
        state, old_frag.key, new_unit, rmap, old_frag.pad, old_frag.base,
        old_frag.site_base)
    return _finalize(state)
