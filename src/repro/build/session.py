"""BuildSession: the toolchain's public compile surface.

A session owns the incremental state of one program being rebuilt over
time: per-module source indexes, per-function build graphs
(fingerprints), the function-grain unit artifacts, and the last link.
Rebuilds are priced by what actually changed:

* **warm** — nothing changed (or only comments/whitespace): the
  previous program is returned, or every unit hits the cache;
* **incremental** — a few function bodies changed: the mini-frontend
  re-checks only those bodies against a *stub* of the module (every
  clean function reduced to its declaration), recompiles the dirty
  units, and — when exactly one unit changed shape-compatibly — splices
  it into the previous link in place;
* **cold** — a new module, a structural edit (signatures, globals,
  added/removed functions) or a fresh session: full frontend, but still
  unit-cache-first and optionally pool-parallel.

All products are byte-identical to a cold monolithic
``compile_and_link``: the differential property tests in
``tests/test_build_api.py`` hold the incremental paths to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.build.fingerprint import source_body_key, unit_fingerprint
from repro.build.graph import BuildGraph, compile_module_units
from repro.build.link import LinkState, ModuleUnits, link_units, splice_unit
from repro.build.source_index import (
    SourceSpan,
    diff_bodies,
    index_source,
    stub_source,
)
from repro.build.units import UnitArtifact, compile_unit
from repro.linker.static_linker import LinkedProgram, link as static_link
from repro.obs import OBS


@dataclass
class BuildResult:
    """Outcome of one :meth:`BuildSession.build` call.

    ``program`` is the linked image (never serialized); everything else
    is provenance/accounting metadata and round-trips through
    :meth:`to_dict`/:meth:`from_dict`.
    """

    program: Optional[LinkedProgram]
    kind: str                      # 'cold' | 'warm' | 'incremental'
    arch: str
    mcfi: bool
    modules: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "arch": self.arch, "mcfi": self.mcfi,
                "modules": list(self.modules), "stats": dict(self.stats)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BuildResult":
        return cls(program=None, kind=data["kind"], arch=data["arch"],
                   mcfi=data["mcfi"], modules=list(data.get("modules", [])),
                   stats=dict(data.get("stats", {})))


@dataclass
class _ModuleState:
    source: str
    spans: Optional[List[SourceSpan]]
    graph: BuildGraph
    units: ModuleUnits


class BuildSession:
    """Incremental, parallel compile-as-a-service for one program.

    Parameters mirror the legacy ``compile_and_link`` knobs; ``cache``
    is a :class:`repro.infra.cache.ArtifactCache` shared across
    sessions (function-grain unit entries), ``pool`` an optional
    :class:`repro.infra.pool.WorkerPool` dirty unit compiles fan out
    across once at least ``parallel_threshold`` of them miss.
    """

    def __init__(self, arch: str = "x64", mcfi: bool = True,
                 prelude: bool = True, devirtualize: bool = False,
                 with_libc: bool = True,
                 allow_unresolved: Optional[List[str]] = None,
                 cache=None, pool=None, parallel_threshold: int = 4,
                 verify_units: bool = True):
        self.arch = arch
        self.mcfi = mcfi
        self.prelude = prelude
        self.devirtualize = devirtualize
        self.with_libc = with_libc
        self.allow_unresolved = list(allow_unresolved or [])
        self.cache = cache
        self.pool = pool
        self.parallel_threshold = parallel_threshold
        #: run the binary verifier over pool results and before every
        #: cache publish (see repro.analysis.binverify)
        self.verify_units = verify_units
        self._modules: Dict[str, _ModuleState] = {}
        self._link: Optional[LinkState] = None
        self._order: List[str] = []
        self._built_once = False
        #: body-text memo: key -> (fingerprint, intern refs, artifact)
        self._body_memo: Dict[str, Tuple[str, List[bytes], UnitArtifact]] = {}

    # -- public API --------------------------------------------------

    def build(self, sources: Dict[str, str]) -> BuildResult:
        """(Re)build the program from named sources; incremental where
        the session state allows, byte-identical to a cold build."""
        all_sources = dict(sources)
        if self.with_libc and "libc" not in all_sources:
            from repro.workloads.libc import LIBC_SOURCE
            all_sources["libc"] = LIBC_SOURCE
        with OBS.tracer.span("build.session", modules=len(all_sources),
                             arch=self.arch, mcfi=self.mcfi):
            if not self.mcfi:
                return self._build_native(all_sources)
            return self._build_mcfi(all_sources)

    def build_source(self, source: str, name: str = "prog") -> BuildResult:
        """Convenience: one-module program (plus simlibc)."""
        return self.build({name: source})

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop session state for ``name`` (or everything)."""
        if name is None:
            self._modules.clear()
            self._body_memo.clear()
        else:
            self._modules.pop(name, None)
        self._link = None
        self._order = []

    # -- MCFI unit-grain path ----------------------------------------

    def _build_mcfi(self, sources: Dict[str, str]) -> BuildResult:
        stats: Dict[str, int] = {"units": 0, "unit_hits": 0,
                                 "unit_compiled": 0, "unit_parallel": 0,
                                 "modules_rebuilt": 0, "modules_mini": 0}
        order = list(sources)
        structural = (order != self._order or self._link is None)
        #: (module name, new artifact, unit index) applied after the
        #: link-strategy decision
        pending: List[Tuple[str, UnitArtifact, int]] = []

        for name, text in sources.items():
            state = self._modules.get(name)
            if state is not None and state.source == text:
                continue
            updates = None
            if state is not None and not self.devirtualize:
                updates = self._mini_rebuild(state, name, text)
            if updates is None:
                self._full_rebuild(name, text, stats)
                structural = True
                stats["modules_rebuilt"] += 1
            else:
                stats["modules_mini"] += 1
                for fn, artifact in updates:
                    index = next(
                        i for i, unit in enumerate(state.units.units)
                        if unit.fn == fn)
                    pending.append((name, artifact, index))

        kind = "cold" if not self._built_once else (
            "incremental" if (pending or structural) else "warm")

        spliced = False
        if not structural and not pending and self._link is not None:
            program = self._link.program           # nothing changed
        elif (not structural and len(pending) == 1
                and self._link is not None):
            name, artifact, index = pending[0]
            program = splice_unit(self._link, name, artifact)
            if program is not None:
                spliced = True
                state = self._modules[name]
                state.graph.fingerprints[artifact.fn] = artifact.fingerprint
                OBS.metrics.counter("build.splices").inc()
            else:
                self._apply_pending(pending)
                program = self._full_link(order)
        else:
            self._apply_pending(pending)
            program = self._full_link(order)

        for key in ("units", "unit_hits", "unit_compiled", "unit_parallel"):
            if stats[key]:
                OBS.metrics.counter(f"build.{key}").inc(stats[key])
        self._built_once = True
        stats["spliced"] = int(spliced)
        return BuildResult(program=program, kind=kind, arch=self.arch,
                           mcfi=True, modules=order, stats=stats)

    def _apply_pending(self,
                       pending: List[Tuple[str, UnitArtifact, int]]) -> None:
        for name, artifact, index in pending:
            state = self._modules[name]
            state.units.units[index] = artifact
            state.graph.fingerprints[artifact.fn] = artifact.fingerprint

    def _full_link(self, order: List[str]) -> LinkedProgram:
        # Invalidate first so a failed link can never leave a stale
        # program behind a later 'warm' short-circuit.
        self._link = None
        self._order = []
        with OBS.tracer.span("build.link", modules=len(order)):
            self._link = link_units(
                [self._modules[name].units for name in order],
                mcfi=True, allow_unresolved=self.allow_unresolved)
        self._order = order
        return self._link.program

    def _frontend(self, text: str, name: str):
        from repro.mir.lowering import lower_unit
        from repro.toolchain import frontend
        with OBS.tracer.span("build.frontend", module=name):
            checked = frontend(text, name=name, prelude=self.prelude)
        with OBS.tracer.span("build.lower", module=name):
            mir = lower_unit(checked)
        if self.devirtualize:
            from repro.analysis.dataflow import devirtualize_module
            devirtualize_module(mir)
        return checked, mir

    def _full_rebuild(self, name: str, text: str,
                      stats: Dict[str, int]) -> None:
        checked, mir = self._frontend(text, name)
        with OBS.tracer.span("build.units", module=name):
            units, graph, ustats = compile_module_units(
                mir, checked, self.arch, cache=self.cache, pool=self.pool,
                parallel_threshold=self.parallel_threshold,
                verify_units=self.verify_units)
        for key, value in ustats.items():
            stats[key] = stats.get(key, 0) + value
        self._modules[name] = _ModuleState(
            source=text, spans=index_source(text), graph=graph, units=units)

    def _mini_rebuild(self, state: _ModuleState, name: str, text: str,
                      ) -> Optional[List[Tuple[str, UnitArtifact]]]:
        """Body-local rebuild: returns the changed (fn, artifact) list,
        or ``None`` when the edit is structural and the caller must do
        a full rebuild.  Clean functions are never recompiled; dirty
        bodies go through the body-text memo, then the unit cache, then
        a stub-source compile of just those functions."""
        if state.spans is None:
            return None
        new_spans = index_source(text)
        if new_spans is None:
            return None
        dirty = diff_bodies(state.spans, new_spans)
        if dirty is None:
            return None

        updates: List[Tuple[str, UnitArtifact]] = []
        unresolved: List[str] = []
        by_name = {span.name: span for span in new_spans
                   if span.kind == "func"}
        memo_hits = {}
        for fn in sorted(dirty):
            key = source_body_key(name, self.arch, by_name[fn].text,
                                  self.prelude)
            memo = self._body_memo.get(key)
            if memo is not None:
                memo_hits[fn] = (key, memo)
            else:
                unresolved.append(fn)

        compiled: Dict[str, Tuple[UnitArtifact, List[bytes]]] = {}
        if unresolved:
            with OBS.tracer.span("build.mini_frontend", module=name,
                                 dirty=len(unresolved)):
                stub = stub_source(new_spans, set(unresolved))
                try:
                    checked, mir = self._frontend(stub, name)
                except Exception:
                    return None  # stub didn't compile: rebuild fully
            if set(checked.functions) != set(unresolved):
                return None
            for func in mir.functions:
                meta = checked.functions[func.name]
                fingerprint = unit_fingerprint(
                    func, mir.strings, self.arch, meta.takes,
                    meta.uses_setjmp)
                artifact = None
                if self.cache is not None:
                    artifact = self.cache.get_unit(fingerprint)
                if artifact is None:
                    artifact = compile_unit(
                        func, name, self.arch, mir.strings,
                        tuple(sorted(meta.takes)), meta.uses_setjmp,
                        fingerprint)
                    if self.cache is not None:
                        if self.verify_units:
                            from repro.analysis.binverify import verify_unit
                            verify_unit(artifact, arch=self.arch,
                                        module=name)
                        self.cache.put_unit(fingerprint, artifact)
                refs = list(mir.intern_refs.get(func.name, []))
                compiled[func.name] = (artifact, refs)

        for fn in sorted(dirty):
            if fn in compiled:
                artifact, refs = compiled[fn]
                key = source_body_key(name, self.arch, by_name[fn].text,
                                      self.prelude)
                self._body_memo[key] = (artifact.fingerprint, refs,
                                        artifact)
            else:
                key, (fingerprint, refs, artifact) = memo_hits[fn]
            old_refs = state.units.intern_refs.get(fn, [])
            if list(refs) != list(old_refs):
                return None  # string table changed shape: full rebuild
            if state.graph.fingerprints.get(fn) != artifact.fingerprint:
                updates.append((fn, artifact))

        state.source = text
        state.spans = new_spans
        return updates

    # -- native (uninstrumented) path --------------------------------

    def _build_native(self, sources: Dict[str, str]) -> BuildResult:
        from repro.build.api import compile_object
        from repro.build.fingerprint import prelude_digest
        raws = []
        stats = {"objects": 0, "object_hits": 0}
        digest = prelude_digest(self.prelude)
        for name, text in sources.items():
            raw = None
            key = None
            if self.cache is not None:
                key = self.cache.object_key(name, self.arch, text,
                                            prelude=digest)
                raw = self.cache.get_object(key, self.arch)
            if raw is None:
                raw = compile_object(text, name=name, arch=self.arch,
                                     prelude=self.prelude,
                                     devirtualize=self.devirtualize)
                if self.cache is not None:
                    self.cache.put_object(key, raw)
            else:
                stats["object_hits"] += 1
            stats["objects"] += 1
            raws.append(raw)
        program = static_link(raws, mcfi=False,
                              allow_unresolved=self.allow_unresolved)
        kind = "cold" if not self._built_once else "warm"
        self._built_once = True
        return BuildResult(program=program, kind=kind, arch=self.arch,
                           mcfi=False, modules=list(sources), stats=stats)
