"""Campaign orchestration: fan the target×instance matrix across cores.

The glue between the registries (:mod:`repro.infra.targets`,
:mod:`repro.infra.instances`), the artifact cache
(:mod:`repro.infra.cache`), the worker pool (:mod:`repro.infra.pool`)
and the result store (:mod:`repro.infra.results`):

* :func:`build_program` — the cache-aware replacement for
  :func:`repro.toolchain.compile_and_link`: each module is compiled to
  a ``.mcfo`` exactly once per (source, arch, toolchain) across *all*
  artifacts and invocations, and linked images are reused per
  (modules, arch, mcfi);
* :func:`run_target` — build + execute one matrix cell, returning
  JSONL-ready records;
* :func:`run_campaign` — the full matrix through the pool;
* :func:`parallel_artifact` — per-benchmark fan-out of the
  :mod:`repro.experiments` artifact functions, merging results in
  submission order so the output is byte-identical to a serial run.

The process-wide cache is configured once (:func:`configure`) — from
``--cache-dir`` flags or the ``REPRO_CACHE_DIR`` environment variable —
and every compile in the process, including the ones
:func:`repro.experiments.compiled` triggers, routes through it.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.infra.cache import ArtifactCache, CacheStats, open_cache
from repro.infra.instances import Instance, expand, instance as get_instance
from repro.infra.pool import Job, JobResult, WorkerPool
from repro.infra.results import ResultStore
from repro.infra.targets import Target, target as get_target
from repro.linker.static_linker import LinkedProgram, link
from repro.mir.codegen import RawModule
from repro.obs import clock

# ---------------------------------------------------------------------------
# Process-wide cache configuration
# ---------------------------------------------------------------------------

_cache_dir: Optional[str] = None
_cache_max_mb: Optional[float] = None
_cache_singleton: Optional[ArtifactCache] = None


def configure(cache_dir: Optional[str],
              max_mb: Optional[float] = None) -> None:
    """Set (or clear, with None) the process-wide artifact cache.

    ``max_mb`` bounds it: stores that push the cache over budget evict
    least-recently-used entries (``--cache-max-mb`` on the CLIs).
    """
    global _cache_dir, _cache_max_mb, _cache_singleton
    _cache_dir = str(cache_dir) if cache_dir else None
    _cache_max_mb = max_mb
    _cache_singleton = None


def default_cache() -> Optional[ArtifactCache]:
    """The configured cache (``configure()`` or ``REPRO_CACHE_DIR``),
    a per-process singleton so statistics aggregate per invocation."""
    global _cache_singleton
    cache_dir = _cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    if cache_dir is None:
        return None
    if _cache_singleton is None or \
            str(_cache_singleton.root) != str(cache_dir):
        _cache_singleton = open_cache(cache_dir, max_mb=_cache_max_mb)
    return _cache_singleton


# ---------------------------------------------------------------------------
# Cache-aware build pipeline
# ---------------------------------------------------------------------------

def _object_key(cache: ArtifactCache, name: str, arch: str,
                source: str) -> str:
    """Campaign object keys always carry the builtin-prelude digest —
    every registry compile runs with the prelude on."""
    # Lazy import: repro.infra.__init__ pulls this module in, and
    # repro.build's own imports reach back into repro.infra.cache.
    from repro.build.fingerprint import prelude_digest
    return cache.object_key(name, arch, source,
                            prelude=prelude_digest(True))


def build_modules(target_name: str, arch: str,
                  cache: Optional[ArtifactCache] = None,
                  ) -> Tuple[List[RawModule], List[str]]:
    """Compile (or fetch) every module of a target, in link order.

    Returns the raw modules plus their cache keys (the provenance the
    program key is derived from).
    """
    from repro.build import compile_object
    spec = get_target(target_name)
    raws: List[RawModule] = []
    keys: List[str] = []
    for module_name, source in spec.sources().items():
        if cache is not None:
            key = _object_key(cache, module_name, arch, source)
            keys.append(key)
            raw = cache.get_object(key, arch)
            if raw is None:
                raw = compile_object(source, name=module_name, arch=arch)
                cache.put_object(key, raw)
        else:
            keys.append("")
            raw = compile_object(source, name=module_name, arch=arch)
        raws.append(raw)
    return raws, keys


def build_program(target_name: str, arch: str = "x64", mcfi: bool = True,
                  cache: Optional[ArtifactCache] = None,
                  ) -> LinkedProgram:
    """Cache-aware compile+link of one target (drop-in for
    :func:`repro.toolchain.compile_and_link` on registry targets).

    With no cache configured this is exactly the serial pipeline.
    """
    if cache is None:
        cache = default_cache()
    spec = get_target(target_name)
    if not spec.linkable:
        raise ValueError(f"target {target_name!r} is library-only")
    if cache is not None:
        # Key the image off the module keys first: a warm program cache
        # still needs the object keys, but not the objects themselves.
        sources = spec.sources()
        module_keys = [_object_key(cache, name, arch, source)
                       for name, source in sources.items()]
        program_key = cache.program_key(arch, mcfi, module_keys)
        program = cache.get_program(program_key)
        if program is not None:
            return program
        raws, _ = build_modules(target_name, arch, cache)
        program = link(raws, mcfi=mcfi)
        cache.put_program(program_key, program)
        return program
    raws, _ = build_modules(target_name, arch, cache=None)
    return link(raws, mcfi=mcfi)


def run_result(target_name: str, arch: str = "x64", mcfi: bool = True,
               cache: Optional[ArtifactCache] = None,
               ) -> "RunResult":
    """Build and execute one target, memoizing the deterministic
    outcome.

    The SimVM interpreter is deterministic, so a plain run's cycles,
    instructions and output are a pure function of the linked image;
    with a cache configured, a warm campaign replays stored outcomes
    instead of re-simulating millions of model cycles.  Faulting runs
    are never memoized.
    """
    from repro.runtime.runtime import Runtime, RunResult  # noqa: F811
    if cache is None:
        cache = default_cache()
    if cache is None:
        return Runtime(build_program(target_name, arch=arch,
                                     mcfi=mcfi)).run()
    sources = get_target(target_name).sources()
    module_keys = [_object_key(cache, name, arch, source)
                   for name, source in sources.items()]
    program_key = cache.program_key(arch, mcfi, module_keys)
    run_key = cache.run_key(program_key)
    cached = cache.get_run(run_key)
    if cached is not None:
        return cached
    result = Runtime(build_program(target_name, arch=arch, mcfi=mcfi,
                                   cache=cache)).run()
    # Cache the result without its obs snapshot: a replayed run did no
    # work, so a stale snapshot would misattribute metrics to it.
    obs_snapshot, result.obs = result.obs, None
    cache.put_run(run_key, result)
    result.obs = obs_snapshot
    return result


# ---------------------------------------------------------------------------
# One matrix cell
# ---------------------------------------------------------------------------

def run_target(target_name: str, instance_name: str,
               cache: Optional[ArtifactCache] = None,
               execute: bool = True) -> List[Dict[str, Any]]:
    """Build (and, for executable instances, run) one matrix cell.

    Returns JSONL-ready records: a ``build`` record with the cache
    delta, then a ``run``, ``cfgstats`` or ``policy`` record depending
    on the instance.
    """
    inst = get_instance(instance_name)
    if cache is None:
        cache = default_cache()
    before = cache.stats.snapshot() if cache is not None else CacheStats()
    start = clock.now()
    program = build_program(target_name, arch=inst.arch, mcfi=inst.mcfi,
                            cache=cache)
    build_seconds = clock.now() - start
    delta = (cache.stats.delta(before) if cache is not None
             else CacheStats())
    records: List[Dict[str, Any]] = [{
        "kind": "build", "target": target_name, "instance": inst.name,
        "arch": inst.arch, "mcfi": inst.mcfi,
        "seconds": round(build_seconds, 6), **delta.as_dict(),
    }]
    if inst.policy == "native" or inst.policy == "mcfi":
        if execute:
            start = clock.now()
            result = run_result(target_name, arch=inst.arch,
                                mcfi=inst.mcfi, cache=cache)
            fields = result.to_dict()
            fields.pop("kind", None)
            fields["output"] = fields["output"].strip()
            records.append({
                "kind": "run", "target": target_name,
                "instance": inst.name, "arch": inst.arch,
                "mcfi": inst.mcfi,
                "seconds": round(clock.now() - start, 6),
                **fields,
            })
        if inst.mcfi:
            from repro.cfg.generator import generate_cfg
            cfg = generate_cfg(program.module.aux)
            records.append({
                "kind": "cfgstats", "target": target_name,
                "instance": inst.name, "arch": inst.arch,
                **cfg.stats(),
            })
    else:
        records.append(_policy_record(target_name, inst, program))
    return records


def _policy_record(target_name: str, inst: Instance,
                   program: LinkedProgram) -> Dict[str, Any]:
    """Judge an MCFI build under a baseline policy (AIR metric)."""
    from repro.baselines.policies import (bincfi_policy, chunk_policy,
                                          classic_cfi_policy)
    from repro.metrics.air import air_table
    aux = program.module.aux
    code_size = len(program.module.code)
    if inst.policy == "classic-cfi":
        policy = classic_cfi_policy(aux)
    elif inst.policy == "bincfi":
        policy = bincfi_policy(aux)
    elif inst.policy == "nacl":
        policy = chunk_policy(aux, program.module.base, code_size,
                              chunk=16)
    else:
        raise ValueError(f"unknown policy {inst.policy!r}")
    air = air_table([policy], target_space=code_size)[policy.name]
    return {"kind": "policy", "target": target_name,
            "instance": inst.name, "arch": inst.arch,
            "policy": policy.name, "air": air.air}


# ---------------------------------------------------------------------------
# The full matrix
# ---------------------------------------------------------------------------

def run_campaign(target_names: Sequence[str],
                 instance_names: Sequence[str],
                 jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 store: Optional[ResultStore] = None,
                 execute: bool = True,
                 timeout: Optional[float] = None,
                 retries: int = 1) -> Dict[str, Any]:
    """Fan ``targets × instances`` across ``jobs`` workers.

    Every cell's records land in ``store`` (if given); the returned
    summary carries wall time, failure count and the aggregated cache
    statistics, which is where a warm cache shows up as a >=90% hit
    rate and a smaller wall time.
    """
    if cache_dir is not None:
        configure(cache_dir)
    instances = expand(list(instance_names))
    cells = [(t, i.name) for t in target_names for i in instances]
    start = clock.now()
    # Group jobs by target so a target whose every cell fails trips the
    # breaker instead of timing out once per instance.
    pool = WorkerPool(workers=max(1, jobs), timeout=timeout,
                      retries=retries, breaker_threshold=3)
    outcomes = pool.run([
        Job(fn=run_target, args=(t, i), kwargs={"execute": execute},
            id=f"{t}/{i}", group=t)
        for t, i in cells])
    wall = clock.now() - start
    stats = CacheStats()
    failures: List[str] = []
    for (t, i), outcome in zip(cells, outcomes):
        if outcome.ok:
            for record in outcome.value:
                stats.hits += record.get("cache_hits", 0)
                stats.misses += record.get("cache_misses", 0)
                stats.evictions += record.get("cache_evictions", 0)
                if record.get("attempts") is None and outcome.attempts:
                    record["attempts"] = outcome.attempts
                if store is not None:
                    store.append(**record)
        else:
            failures.append(outcome.id)
            if store is not None:
                store.append_job(outcome, target=t, instance=i)
    summary = {
        "kind": "summary", "cells": len(cells), "jobs": jobs,
        "wall_seconds": round(wall, 3), "failures": failures,
        **stats.as_dict(),
    }
    if store is not None:
        store.append(**summary)
    return summary


# ---------------------------------------------------------------------------
# Parallel artifact computation (the repro.tools.spec fast path)
# ---------------------------------------------------------------------------

#: Artifacts whose per-benchmark results merge without cross-benchmark
#: state; the rest (stm, security, air's cross-benchmark mean) run
#: serially.
PARALLEL_ARTIFACTS = ("fig5", "fig6", "table1", "table2", "table3",
                      "gadgets", "space", "cfggen")


def _artifact_fn(artifact: str) -> Callable[..., Dict[Any, Any]]:
    import repro.experiments as ex
    return {
        "fig5": lambda names, archs: ex.fig5_overhead(names, archs=archs),
        "fig6": lambda names, archs: ex.fig6_update_overhead(
            names, arch=archs[0]),
        "table1": lambda names, archs: ex.table1_analysis(names),
        "table2": lambda names, archs: ex.table2_analysis(names),
        "table3": lambda names, archs: ex.table3_cfg_stats(
            names, archs=archs),
        "gadgets": lambda names, archs: ex.gadget_elimination(
            names, arch=archs[0]),
        "space": lambda names, archs: ex.space_overhead(
            names, arch=archs[0]),
        "cfggen": lambda names, archs: ex.cfg_generation_time(
            names, arch=archs[0]),
    }[artifact]


def _artifact_job(artifact: str, name: str,
                  archs: Sequence[str]) -> Dict[str, Any]:
    """Worker body: one benchmark's slice of one artifact."""
    cache = default_cache()
    before = cache.stats.snapshot() if cache is not None else None
    start = clock.now()
    result = _artifact_fn(artifact)([name], tuple(archs))
    delta = (cache.stats.delta(before).as_dict()
             if cache is not None else {})
    return {"result": result,
            "seconds": round(clock.now() - start, 6),
            "cache": delta}


def parallel_artifact(artifact: str, names: Sequence[str],
                      archs: Sequence[str] = ("x64",), jobs: int = 2,
                      store: Optional[ResultStore] = None,
                      timeout: Optional[float] = None,
                      retries: int = 1) -> Dict[Any, Any]:
    """Compute one artifact with one pool job per benchmark.

    Merging follows the submission (benchmark) order, so the resulting
    mapping iterates exactly like the serial
    :mod:`repro.experiments` call and formats byte-identically.
    """
    if artifact not in PARALLEL_ARTIFACTS:
        raise ValueError(f"artifact {artifact!r} cannot be parallelized")
    pool = WorkerPool(workers=max(1, jobs), timeout=timeout,
                      retries=retries)
    outcomes = pool.run([
        Job(fn=_artifact_job, args=(artifact, name, tuple(archs)),
            id=f"{artifact}/{name}")
        for name in names])
    merged: Dict[Any, Any] = {}
    errors: List[str] = []
    for name, outcome in zip(names, outcomes):
        if not outcome.ok:
            errors.append(f"{outcome.id}: {outcome.error}")
            if store is not None:
                store.append_job(outcome, artifact=artifact,
                                 benchmark=name)
            continue
        payload = outcome.value
        merged.update(payload["result"])
        if store is not None:
            store.append("artifact", artifact=artifact, benchmark=name,
                         seconds=payload["seconds"],
                         attempts=outcome.attempts, **payload["cache"])
    if errors:
        raise RuntimeError(
            f"{len(errors)} {artifact} job(s) failed:\n  "
            + "\n  ".join(errors))
    return merged
