"""Instance registry: the policy/arch configurations of the matrix.

An *instance* (instrumentation-infra vocabulary) is one way of building
or judging a target.  Executable instances produce a runnable image —
``native`` (uninstrumented baseline) and ``mcfi`` (full check
transactions), each in the two architecture modes the paper evaluates
(x86-32-shaped ``x32``, x86-64-shaped ``x64`` with tail-call
optimization).  Analysis instances reuse the MCFI build but judge it
under a *different CFI policy* from :mod:`repro.baselines.policies`
(classic CFI, binCFI/CCFIR-style, NaCl-style chunking) — the
policy×benchmark comparison grid of the Burow et al. CFI survey.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

ARCHS = ("x32", "x64")


@dataclass(frozen=True)
class Instance:
    """One build/evaluation configuration."""

    name: str
    arch: str
    #: whether the image carries MCFI instrumentation
    mcfi: bool
    #: "native", "mcfi", or a baseline policy judged on the mcfi build
    policy: str

    @property
    def executable(self) -> bool:
        """Analysis-only instances are judged, not run."""
        return self.policy in ("native", "mcfi")


def _registry() -> Dict[str, Instance]:
    out: Dict[str, Instance] = {}
    for arch in ARCHS:
        out[f"native-{arch}"] = Instance(
            name=f"native-{arch}", arch=arch, mcfi=False, policy="native")
        out[f"mcfi-{arch}"] = Instance(
            name=f"mcfi-{arch}", arch=arch, mcfi=True, policy="mcfi")
        for policy in ("classic-cfi", "bincfi", "nacl"):
            out[f"{policy}-{arch}"] = Instance(
                name=f"{policy}-{arch}", arch=arch, mcfi=True,
                policy=policy)
    return out


INSTANCES: Dict[str, Instance] = _registry()

#: The Fig. 5 pair on the primary architecture.
DEFAULT_INSTANCES = ("native-x64", "mcfi-x64")


def instance(name: str) -> Instance:
    try:
        return INSTANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown instance {name!r}; known: "
            f"{', '.join(sorted(INSTANCES))}") from None


def expand(names: Sequence[str]) -> List[Instance]:
    """Resolve instance names; bare policy names get every arch."""
    out: List[Instance] = []
    for name in names:
        if name in INSTANCES:
            out.append(INSTANCES[name])
        elif any(f"{name}-{arch}" in INSTANCES for arch in ARCHS):
            out.extend(INSTANCES[f"{name}-{arch}"] for arch in ARCHS
                       if f"{name}-{arch}" in INSTANCES)
        else:
            instance(name)  # raises with the known-instances message
    return out
