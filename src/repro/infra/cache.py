"""Content-addressed artifact cache: compile and instrument once.

The paper's headline property — modules are instrumented once and
reused across programs (Sec. 1) — is exactly what an experiment
campaign wants: the twelve SPEC-shaped workloads plus simlibc are
compiled to ``.mcfo`` object files and linked images *once per compile
configuration*, then every artifact (Fig. 5/6, Table 3, AIR, gadgets,
...) and every parallel worker reuses them from disk.

Keys are SHA-256 over the canonical JSON of the entry's provenance:
module source digest, architecture mode, the ``.mcfo`` format version
and a compiler/linker tag (bumped on codegen-affecting changes).  A
source edit, an arch flip or a toolchain upgrade therefore *cannot* hit
a stale entry — the key changes.  Entry integrity is separately
verified on read (the object-file digest for ``.mcfo``, a SHA-256 frame
for linked images); a corrupted entry is evicted and counted, and the
read degrades to a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.linker.static_linker import LinkedProgram
from repro.mir.codegen import RawModule
from repro.module import objectfile
from repro.module.objectfile import ObjectFileError
from repro.runtime.runtime import RunResult

#: Bump when codegen/linker output changes shape: invalidates every key.
TOOLCHAIN_TAG = "simcc-2"

_PROGRAM_DIGEST_BYTES = 32


def source_digest(source: str) -> str:
    """Stable digest of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (or an aggregate of many)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"cache_hits": self.hits, "cache_misses": self.misses,
                "cache_stores": self.stores,
                "cache_evictions": self.evictions,
                "cache_hit_rate": round(self.hit_rate, 4)}

    def add(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          stores=self.stores - earlier.stores,
                          evictions=self.evictions - earlier.evictions)

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores,
                          self.evictions)


@dataclass
class ArtifactCache:
    """On-disk store of ``.mcfo`` objects and linked program images."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)
    #: total on-disk budget in MiB; ``None`` = unbounded.  When a store
    #: pushes the cache over budget, least-recently-used entries (by
    #: mtime, refreshed on hit) are evicted until it fits.
    max_mb: Optional[float] = None

    SUBDIRS = ("objects", "programs", "runs", "units")

    def __post_init__(self):
        self.root = Path(self.root)
        for sub in self.SUBDIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- keys --------------------------------------------------------

    @staticmethod
    def _key(parts: Dict[str, Any]) -> str:
        canonical = json.dumps(parts, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def object_key(self, name: str, arch: str, source: str,
                   prelude: str = "none") -> str:
        """Key of one compiled (pre-link) module.

        ``prelude`` is the digest of the implicit prelude the module was
        compiled against (``repro.build.fingerprint.prelude_digest``).
        It participates in the key because the prelude declarations
        shape typechecking: two compiles of the same source differing
        only in the ``prelude`` flag must never share an entry.
        """
        return self._key({
            "kind": "object",
            "name": name,
            "arch": arch,
            "source": source_digest(source),
            "prelude": prelude,
            "format": objectfile.FORMAT_VERSION,
            "toolchain": TOOLCHAIN_TAG,
        })

    def program_key(self, arch: str, mcfi: bool,
                    module_keys: Sequence[str]) -> str:
        """Key of a linked image, derived from its modules' keys."""
        return self._key({
            "kind": "program",
            "arch": arch,
            "mcfi": mcfi,
            "modules": list(module_keys),
            "toolchain": TOOLCHAIN_TAG,
        })

    # -- .mcfo objects -----------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / f"{key}.mcfo"

    def get_object(self, key: str, arch: str) -> Optional[RawModule]:
        """Load a cached module; integrity-checked, evicted if bad."""
        path = self._object_path(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            raw = objectfile.load(path, expect_arch=arch)
        except ObjectFileError:
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(path)
        return raw

    def put_object(self, key: str, raw: RawModule) -> Path:
        path = objectfile.save(raw, self._object_path(key))
        self.stats.stores += 1
        self._enforce_budget()
        return path

    # -- framed pickle entries (programs, run results) ---------------

    def _get_framed(self, path: Path, expected_cls: type) -> Optional[Any]:
        """Read a digest-framed pickled entry; evict anything wrong."""
        if not path.exists():
            self.stats.misses += 1
            return None
        blob = path.read_bytes()
        digest = blob[:_PROGRAM_DIGEST_BYTES]
        payload = blob[_PROGRAM_DIGEST_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            self._evict(path)
            self.stats.misses += 1
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:  # noqa: BLE001 — corrupt pickle == corrupt entry
            self._evict(path)
            self.stats.misses += 1
            return None
        if not isinstance(entry, expected_cls):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(path)
        return entry

    def _put_framed(self, path: Path, entry: Any) -> Path:
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(hashlib.sha256(payload).digest() + payload)
        self.stats.stores += 1
        self._enforce_budget()
        return path

    # -- linked programs ---------------------------------------------

    def _program_path(self, key: str) -> Path:
        return self.root / "programs" / f"{key}.img"

    def get_program(self, key: str) -> Optional[LinkedProgram]:
        return self._get_framed(self._program_path(key), LinkedProgram)

    def put_program(self, key: str, program: LinkedProgram) -> Path:
        return self._put_framed(self._program_path(key), program)

    # -- deterministic run results -----------------------------------
    #
    # The SimVM is fully deterministic: a plain (unscheduled,
    # attacker-free) run's outcome is a pure function of the linked
    # image.  Memoizing it is what makes a warm-cache fig5 campaign
    # fast — the model *cycles* are what the artifact reports, and
    # those are identical whether re-simulated or replayed.

    #: Bump when the pickled RunResult schema changes shape, so stale
    #: cache entries from an older layout are never unpickled into the
    #: new dataclass (the ``obs`` field arrived in schema 2,
    #: ``tx_checks`` in schema 3).
    RUN_SCHEMA = 3

    def run_key(self, program_key: str, **params: Any) -> str:
        return self._key({"kind": "run", "program": program_key,
                          "params": dict(sorted(params.items())),
                          "schema": self.RUN_SCHEMA,
                          "toolchain": TOOLCHAIN_TAG})

    def _run_path(self, key: str) -> Path:
        return self.root / "runs" / f"{key}.res"

    def get_run(self, key: str) -> Optional[RunResult]:
        return self._get_framed(self._run_path(key), RunResult)

    def put_run(self, key: str, result: RunResult) -> Optional[Path]:
        if not result.ok:
            return None  # never memoize faults/violations
        return self._put_framed(self._run_path(key), result)

    # -- function-grain build units (repro.build) --------------------
    #
    # Keyed directly by the unit fingerprint (already a SHA-256 over
    # the function's MIR, metadata, arch and toolchain tags — see
    # ``repro.build.fingerprint.unit_fingerprint``).

    def _unit_path(self, fingerprint: str) -> Path:
        return self.root / "units" / f"{fingerprint}.unit"

    def get_unit(self, fingerprint: str):
        from repro.build.units import UnitArtifact
        return self._get_framed(self._unit_path(fingerprint), UnitArtifact)

    def put_unit(self, fingerprint: str, artifact) -> Path:
        return self._put_framed(self._unit_path(fingerprint), artifact)

    # -- maintenance -------------------------------------------------

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.evictions += 1

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime so LRU eviction sees the hit."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _enforce_budget(self) -> None:
        if self.max_mb is None:
            return
        budget = int(self.max_mb * 1024 * 1024)
        entries = []
        total = 0
        for sub in self.SUBDIRS:
            for path in (self.root / sub).iterdir():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if total <= budget:
            return
        for _, size, path in sorted(entries, key=lambda e: (e[0], str(e[2]))):
            self._evict(path)
            total -= size
            if total <= budget:
                break

    def trim(self) -> int:
        """Apply the LRU budget now; returns the entries evicted."""
        before = self.stats.evictions
        self._enforce_budget()
        return self.stats.evictions - before

    def size_bytes(self) -> int:
        total = 0
        for sub in self.SUBDIRS:
            for path in (self.root / sub).iterdir():
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def entry_count(self) -> Dict[str, int]:
        return {sub: sum(1 for _ in (self.root / sub).iterdir())
                for sub in self.SUBDIRS}

    def clear(self) -> None:
        for sub in self.SUBDIRS:
            for path in (self.root / sub).iterdir():
                path.unlink()


def open_cache(root: Union[str, Path, None],
               max_mb: Optional[float] = None) -> Optional[ArtifactCache]:
    """Open (creating if needed) a cache at ``root``; None passes
    through so call sites can thread an optional cache untouched."""
    if root is None:
        return None
    return ArtifactCache(Path(root), max_mb=max_mb)
