"""Target registry: what a campaign can build and run.

Modeled on instrumentation-infra's ``Target`` abstraction: a target
names a buildable thing — here the twelve SPEC-shaped workloads plus
the shared simlibc library module.  Workload targets link against libc;
the libc target itself is library-only (no entry point) and exists so
its ``.mcfo`` object is built, cached and shared exactly once per
architecture across the whole campaign — the paper's
instrument-once-reuse-anywhere property at campaign scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.spec import BENCHMARKS, workload

LIBC_MODULE = "libc"


@dataclass(frozen=True)
class Target:
    """One buildable unit of the campaign matrix."""

    name: str
    #: module names in link order (workload first, then libraries)
    modules: Tuple[str, ...]
    #: linkable targets produce an executable image; library-only
    #: targets stop at their .mcfo object
    linkable: bool = True

    def sources(self) -> Dict[str, str]:
        """Module name -> TinyC source, in link order."""
        out: Dict[str, str] = {}
        for module_name in self.modules:
            out[module_name] = module_source(module_name)
        return out


def module_source(module_name: str) -> str:
    """Source text of one module (workload kernel or simlibc)."""
    if module_name == LIBC_MODULE:
        from repro.workloads.libc import LIBC_SOURCE
        return LIBC_SOURCE
    return workload(module_name).source


def _registry() -> Dict[str, Target]:
    targets = {name: Target(name=name, modules=(name, LIBC_MODULE))
               for name in BENCHMARKS}
    targets[LIBC_MODULE] = Target(name=LIBC_MODULE,
                                  modules=(LIBC_MODULE,), linkable=False)
    return targets


TARGETS: Dict[str, Target] = _registry()


def target(name: str) -> Target:
    try:
        return TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; known: {', '.join(sorted(TARGETS))}"
        ) from None


def all_targets(include_libraries: bool = False) -> List[Target]:
    """The twelve workloads, optionally plus library-only targets."""
    names = list(BENCHMARKS) + ([LIBC_MODULE] if include_libraries else [])
    return [TARGETS[name] for name in names]
