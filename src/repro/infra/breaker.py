"""A reusable circuit-breaker state machine (closed / open / half-open).

PR 2's per-group breaker in :class:`repro.infra.pool.WorkerPool` was a
bare consecutive-failure counter: once a group tripped it stayed open
for the rest of the run, so a *transiently* broken target (a flaky
shared resource that recovers) could never re-admit work.  This module
factors the counter into a real three-state breaker:

* **closed** — requests flow; consecutive failures are counted, and
  reaching ``threshold`` trips the breaker open;
* **open** — requests fail fast until ``cooldown`` clock units elapse
  (plus a seeded jitter so many breakers opened by one incident do not
  probe in lockstep);
* **half-open** — after the cooldown, exactly **one** probe request is
  admitted.  Success closes the breaker and clears the count; failure
  re-opens it with an escalated cooldown
  (``cooldown * cooldown_factor**(trips-1)``, capped by
  ``max_cooldown``).

The clock is injected (``clock()`` returns a float or int "now"), so
the same state machine serves both consumers:

* the worker pool, on the wall clock (:data:`repro.obs.clock.now`);
* the table service's per-shard health monitor
  (:class:`repro.service.health.ShardHealthMonitor`), on the seeded
  scheduler's logical tick counter — fully deterministic.

State transitions are recorded in :attr:`transitions` as
``(when, from_state, to_state, reason)`` tuples, the raw feed for the
service's health/MTTR accounting.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

#: The three states (strings, so they serialize verbatim into traces).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Three-state breaker over an injected clock.

    ``allow()`` asks whether a request may proceed *now* (it performs
    the open -> half-open transition when the cooldown has elapsed and
    claims the single probe slot); ``record(ok)`` reports the outcome
    of an admitted request.  ``force_open(reason)`` trips immediately
    regardless of the count — the service uses it for non-negotiable
    evidence like a failed integrity audit.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Optional[Callable[[], float]] = None,
                 cooldown_factor: float = 2.0,
                 max_cooldown: Optional[float] = None,
                 jitter: float = 0.0, seed: int = 0,
                 name: str = "") -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self.cooldown_factor = max(1.0, cooldown_factor)
        self.max_cooldown = max_cooldown
        self.jitter = max(0.0, jitter)
        self.name = name
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._rng = random.Random(seed)
        self.state = CLOSED
        self.failures = 0          # consecutive, while closed
        self.trips = 0             # times the breaker opened
        self.probes = 0            # half-open probes admitted
        self.opened_at: Optional[float] = None
        self.reopen_at: Optional[float] = None
        self.transitions: List[Tuple[float, str, str, str]] = []

    # -- queries -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    def allow(self) -> bool:
        """May a request proceed now?  Admits one half-open probe."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.reopen_at is not None and \
                    self._clock() >= self.reopen_at:
                self._move(HALF_OPEN, "cooldown elapsed")
                self.probes += 1
                return True
            return False
        # HALF_OPEN: the single probe slot was claimed by the allow()
        # that transitioned; further requests wait for its verdict.
        return False

    # -- outcomes ------------------------------------------------------

    def record(self, ok: bool, reason: str = "") -> None:
        """Report the outcome of an admitted request."""
        if self.state == HALF_OPEN:
            if ok:
                self.failures = 0
                self._move(CLOSED, reason or "probe succeeded")
            else:
                self._open(reason or "probe failed")
            return
        if self.state == OPEN:
            return  # late result from before the trip: irrelevant
        if ok:
            self.failures = 0
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self._open(reason or
                       f"{self.failures} consecutive failures")

    def force_open(self, reason: str = "forced") -> None:
        """Trip immediately (integrity evidence, not a failure count)."""
        if self.state != OPEN:
            self._open(reason)

    def reset(self) -> None:
        """Back to a pristine closed breaker (new run)."""
        if self.state != CLOSED:
            self._move(CLOSED, "reset")
        self.failures = 0
        self.trips = 0
        self.probes = 0
        self.opened_at = None
        self.reopen_at = None

    # -- internals -----------------------------------------------------

    def current_cooldown(self) -> float:
        """The cooldown for the *latest* trip (escalates per trip)."""
        scale = self.cooldown_factor ** max(0, self.trips - 1)
        cooldown = self.cooldown * scale
        if self.max_cooldown is not None:
            cooldown = min(cooldown, self.max_cooldown)
        return cooldown

    def _open(self, reason: str) -> None:
        self.trips += 1
        self.opened_at = self._clock()
        delay = self.current_cooldown()
        if self.jitter > 0:
            delay += self._rng.uniform(0, self.jitter)
        self.reopen_at = self.opened_at + delay
        self._move(OPEN, reason)

    def _move(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            (self._clock(), self.state, to_state, reason))
        self.state = to_state
