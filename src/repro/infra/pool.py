"""Parallel worker pool for the experiment campaign.

A deliberately small process pool in the spirit of
instrumentation-infra's parallel builds: every job runs in its own
forked worker so a crashing or wedged build can never take the
orchestrator down with it.  The pool gives each job

* a **per-job timeout** — a worker that exceeds it is terminated and
  the job is marked ``timed_out``;
* **bounded retries** — exceptions, crashes and timeouts are retried up
  to ``retries`` extra attempts before the failure is surfaced;
* **worker-crash capture** — a worker that dies without reporting
  (``os._exit``, OOM-kill, segfault) yields a ``crashed`` result with
  its exit code instead of a hang;
* **exponential backoff with seeded jitter** — retries wait
  ``backoff * backoff_factor**(attempt-1)`` plus a deterministic jitter
  before respawning, so a flaky shared resource is not hammered;
* a **per-group circuit breaker** — after ``breaker_threshold``
  consecutive failures within one ``Job.group``, remaining jobs in that
  group fail fast with ``error_type="CircuitOpen"`` instead of burning
  a full timeout each (a campaign with one broken target finishes in
  seconds, not hours).  The breaker is a real three-state machine
  (:class:`repro.infra.breaker.CircuitBreaker`, shared with the table
  service's shard health monitor): after ``breaker_cooldown`` seconds
  it goes *half-open* and admits exactly one probe job — success
  closes the circuit and the group flows again, failure re-opens it
  with an escalated cooldown.  PR 2's breaker stayed open forever.

Results come back in *submission order* regardless of completion order,
so a parallel campaign produces byte-identical tables to a serial one.
``JobResult.seconds`` is cumulative across all attempts of a job, in
both forked and inline modes.

On platforms without ``fork`` the pool degrades to in-process serial
execution (retries still honoured; timeouts unenforceable and ignored).
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.infra.breaker import CircuitBreaker
from repro.obs import OBS, clock, wall_metrics_enabled

_POLL_SECONDS = 0.01


@dataclass
class Job:
    """One unit of work: ``fn(*args, **kwargs)`` in a worker process.

    ``fn``'s return value must be picklable (it crosses a pipe back to
    the orchestrator); ``fn`` itself need not be, since workers fork.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    id: Optional[str] = None
    #: seconds before the worker is killed; None = pool default
    timeout: Optional[float] = None
    #: extra attempts after the first; None = pool default
    retries: Optional[int] = None
    #: circuit-breaker group (e.g. the campaign target); None = no breaker
    group: Optional[str] = None


@dataclass
class JobResult:
    """Outcome of one job, after all retry attempts."""

    id: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    tb: Optional[str] = None
    attempts: int = 0
    seconds: float = 0.0
    timed_out: bool = False
    crashed: bool = False

    KIND = "job"

    @property
    def status(self) -> str:
        if self.ok:
            return "ok"
        if self.timed_out:
            return "timeout"
        if self.crashed:
            return "crashed"
        return "error"

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-friendly summary (value omitted: it may be large)."""
        return {
            "job": self.id,
            "status": self.status,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "error": self.error,
            "error_type": self.error_type,
        }

    def record(self) -> Dict[str, Any]:
        """Deprecated alias for :meth:`to_dict` (one-release shim)."""
        warnings.warn(
            "JobResult.record() is deprecated; use to_dict()",
            DeprecationWarning, stacklevel=2)
        return self.to_dict()


def _worker(conn, fn, args, kwargs) -> None:
    try:
        value = fn(*args, **(kwargs or {}))
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 — report, don't die silent
        conn.send(("error", type(exc).__name__, str(exc),
                   traceback.format_exc()))
    finally:
        conn.close()


class _Active:
    """Bookkeeping for one in-flight attempt."""

    def __init__(self, index, job, process, conn, attempt, deadline,
                 spent=0.0):
        self.index = index
        self.job = job
        self.process = process
        self.conn = conn
        self.attempt = attempt
        self.deadline = deadline
        self.spent = spent           # seconds burned by earlier attempts
        self.started = clock.now()
        # Spans are recorded parent-side (workers fork; their tracer
        # state dies with them), one per attempt.
        self.span = OBS.tracer.begin("pool.job", job=job.id,
                                     attempt=attempt)


class WorkerPool:
    """Fan jobs across ``workers`` forked processes.

    ``timeout`` and ``retries`` are defaults a :class:`Job` may
    override per job.  ``backoff`` (base delay, in seconds, before the
    second attempt), ``backoff_factor`` and ``jitter`` shape the retry
    schedule; ``seed`` makes the jitter replayable.
    ``breaker_threshold`` consecutive failures within one
    :attr:`Job.group` open that group's circuit: later jobs in the
    group fail fast without spawning a worker, until
    ``breaker_cooldown`` seconds pass and a half-open probe job is
    admitted (success re-closes the circuit).
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, backoff: float = 0.0,
                 backoff_factor: float = 2.0, jitter: float = 0.0,
                 seed: int = 0,
                 breaker_threshold: Optional[int] = None,
                 breaker_cooldown: float = 30.0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.seed = seed
        self._rng = random.Random(seed)
        self._breakers: Dict[str, CircuitBreaker] = {}
        methods = multiprocessing.get_all_start_methods()
        self._ctx = (multiprocessing.get_context("fork")
                     if "fork" in methods else None)

    # -- retry schedule / circuit breaker ----------------------------

    def _retry_delay(self, failed_attempt: int) -> float:
        """Delay before re-running after attempt ``failed_attempt``."""
        if self.backoff <= 0 and self.jitter <= 0:
            return 0.0
        base = self.backoff * (self.backoff_factor ** (failed_attempt - 1))
        return base + (self._rng.uniform(0, self.jitter)
                       if self.jitter > 0 else 0.0)

    def _breaker_for(self, group: str) -> CircuitBreaker:
        breaker = self._breakers.get(group)
        if breaker is None:
            # Seed composed from the group bytes (no hash(): stable
            # across processes and PYTHONHASHSEED values).
            group_seed = self.seed
            for byte in group.encode("utf-8"):
                group_seed = (group_seed * 0x9E3779B1 + byte) & 0xFFFFFFFF
            breaker = CircuitBreaker(
                threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
                clock=clock.now, jitter=self.jitter,
                seed=group_seed, name=group)
            self._breakers[group] = breaker
        return breaker

    def _breaker_open(self, job: Job) -> bool:
        if self.breaker_threshold is None or job.group is None:
            return False
        return not self._breaker_for(job.group).allow()

    def _breaker_result(self, job: Job) -> JobResult:
        breaker = self._breaker_for(job.group)
        if OBS.enabled:
            OBS.metrics.counter("pool.breaker_fast_fails").inc()
        return JobResult(
            id=job.id, ok=False, attempts=0,
            error=(f"circuit open for group {job.group!r} after "
                   f"{breaker.failures} consecutive failures "
                   f"(trip {breaker.trips}, cooling down)"),
            error_type="CircuitOpen")

    def _note_metrics(self, result: JobResult) -> None:
        """Record one *final* (post-retry) job outcome."""
        metrics = OBS.metrics
        metrics.counter("pool.jobs").inc()
        if not result.ok:
            metrics.counter("pool.failures").inc()
        if result.timed_out:
            metrics.counter("pool.timeouts").inc()
        if result.crashed:
            metrics.counter("pool.crashes").inc()
        if result.attempts > 1:
            metrics.counter("pool.retries").inc(result.attempts - 1)
        if wall_metrics_enabled():
            # Seconds are wall-clock valued: skipped under a seeded
            # tracer so deterministic traces stay byte-identical.
            metrics.histogram("pool.job_seconds").observe(result.seconds)

    def _note_outcome(self, job: Job, ok: bool) -> None:
        if job.group is None or self.breaker_threshold is None:
            return
        self._breaker_for(job.group).record(ok)

    # -- public API --------------------------------------------------

    def map(self, fn: Callable[..., Any],
            argslist: Iterable[tuple]) -> List[JobResult]:
        """Convenience: one job per args tuple."""
        return self.run([Job(fn=fn, args=args) for args in argslist])

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Run all jobs; results in submission order."""
        jobs = list(jobs)
        for i, job in enumerate(jobs):
            if job.id is None:
                job.id = f"job-{i}"
        self._breakers = {}
        if self._ctx is None:
            return [self._run_inline(job) for job in jobs]
        return self._run_forked(jobs)

    # -- serial fallback ---------------------------------------------

    def _run_inline(self, job: Job) -> JobResult:
        if self._breaker_open(job):
            return self._breaker_result(job)
        retries = self.retries if job.retries is None else job.retries
        start = clock.now()
        last: Optional[JobResult] = None
        for attempt in range(1, retries + 2):
            if attempt > 1:
                delay = self._retry_delay(attempt - 1)
                if delay > 0:
                    time.sleep(delay)
            span = OBS.tracer.begin("pool.job", job=job.id,
                                    attempt=attempt)
            try:
                value = job.fn(*job.args, **(job.kwargs or {}))
                span.end(status="ok")
                self._note_outcome(job, ok=True)
                result = JobResult(id=job.id, ok=True, value=value,
                                   attempts=attempt,
                                   seconds=clock.now() - start)
                if OBS.enabled:
                    self._note_metrics(result)
                return result
            except BaseException as exc:  # noqa: BLE001
                span.end(status="error")
                last = JobResult(id=job.id, ok=False, error=str(exc),
                                 error_type=type(exc).__name__,
                                 tb=traceback.format_exc(),
                                 attempts=attempt,
                                 seconds=clock.now() - start)
        self._note_outcome(job, ok=False)
        if OBS.enabled and last is not None:
            self._note_metrics(last)
        return last

    # -- forked execution --------------------------------------------

    def _spawn(self, index: int, job: Job, attempt: int,
               spent: float = 0.0) -> _Active:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker, args=(child_conn, job.fn, job.args, job.kwargs),
            daemon=True)
        process.start()
        child_conn.close()
        timeout = self.timeout if job.timeout is None else job.timeout
        deadline = (clock.now() + timeout
                    if timeout is not None else None)
        return _Active(index, job, process, parent_conn, attempt, deadline,
                       spent=spent)

    def _reap(self, active: _Active) -> Optional[JobResult]:
        """Check one in-flight attempt; a result means it finished."""
        job = active.job
        elapsed = clock.now() - active.started
        if active.conn.poll():
            try:
                message = active.conn.recv()
            except (EOFError, OSError):
                message = None
            active.process.join(1.0)
            code = active.process.exitcode
            self._finish_process(active)
            if message is None:
                return JobResult(id=job.id, ok=False, crashed=True,
                                 error="worker crashed without reporting "
                                       f"(exit code {code})",
                                 error_type="WorkerCrash",
                                 attempts=active.attempt, seconds=elapsed)
            if message[0] == "ok":
                return JobResult(id=job.id, ok=True, value=message[1],
                                 attempts=active.attempt, seconds=elapsed)
            _, error_type, error, tb = message
            return JobResult(id=job.id, ok=False, error=error,
                             error_type=error_type, tb=tb,
                             attempts=active.attempt, seconds=elapsed)
        if not active.process.is_alive():
            code = active.process.exitcode
            self._finish_process(active)
            return JobResult(id=job.id, ok=False, crashed=True,
                             error=f"worker crashed (exit code {code})",
                             error_type="WorkerCrash",
                             attempts=active.attempt, seconds=elapsed)
        if active.deadline is not None and \
                clock.now() > active.deadline:
            active.process.terminate()
            active.process.join(1.0)
            if active.process.is_alive():
                active.process.kill()
                active.process.join(1.0)
            self._finish_process(active)
            return JobResult(id=job.id, ok=False, timed_out=True,
                             error=f"timed out after {elapsed:.1f}s",
                             error_type="Timeout",
                             attempts=active.attempt, seconds=elapsed)
        return None

    @staticmethod
    def _finish_process(active: _Active) -> None:
        active.conn.close()
        active.process.join(1.0)
        if active.process.is_alive():
            active.process.kill()
            active.process.join(1.0)
        active.process.close()

    def _run_forked(self, jobs: List[Job]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending = list(enumerate(jobs))
        pending.reverse()  # pop() from the front of the submission order
        active: List[_Active] = []
        #: retries waiting out their backoff: (ready_at, index, job,
        #: attempt, seconds_spent_so_far)
        waiting: List[tuple] = []
        try:
            while pending or active or waiting:
                now = clock.now()
                # Backoff-expired retries re-enter first: they hold a
                # result slot that everything after them waits on.
                ready = [w for w in waiting if w[0] <= now]
                if ready:
                    waiting = [w for w in waiting if w[0] > now]
                    for _, index, job, attempt, spent in ready:
                        active.append(self._spawn(index, job, attempt,
                                                  spent=spent))
                while pending and len(active) < self.workers:
                    index, job = pending.pop()
                    if self._breaker_open(job):
                        results[index] = self._breaker_result(job)
                        continue
                    active.append(self._spawn(index, job, attempt=1))
                still_running: List[_Active] = []
                for entry in active:
                    outcome = self._reap(entry)
                    if outcome is None:
                        still_running.append(entry)
                        continue
                    entry.span.end(status=outcome.status)
                    outcome.seconds += entry.spent
                    retries = (self.retries if entry.job.retries is None
                               else entry.job.retries)
                    if not outcome.ok and entry.attempt <= retries:
                        delay = self._retry_delay(entry.attempt)
                        if delay > 0 and wall_metrics_enabled():
                            OBS.metrics.histogram(
                                "pool.backoff_seconds").observe(delay)
                        waiting.append((clock.now() + delay,
                                        entry.index, entry.job,
                                        entry.attempt + 1,
                                        outcome.seconds))
                        continue
                    outcome.attempts = entry.attempt
                    self._note_outcome(entry.job, ok=outcome.ok)
                    if OBS.enabled:
                        self._note_metrics(outcome)
                    results[entry.index] = outcome
                active = still_running
                if active or waiting:
                    time.sleep(_POLL_SECONDS)
        finally:
            for entry in active:
                if entry.process.is_alive():
                    entry.process.kill()
                    entry.process.join(1.0)
        return results
