"""Parallel worker pool for the experiment campaign.

A deliberately small process pool in the spirit of
instrumentation-infra's parallel builds: every job runs in its own
forked worker so a crashing or wedged build can never take the
orchestrator down with it.  The pool gives each job

* a **per-job timeout** — a worker that exceeds it is terminated and
  the job is marked ``timed_out``;
* **bounded retries** — exceptions, crashes and timeouts are retried up
  to ``retries`` extra attempts before the failure is surfaced;
* **worker-crash capture** — a worker that dies without reporting
  (``os._exit``, OOM-kill, segfault) yields a ``crashed`` result with
  its exit code instead of a hang.

Results come back in *submission order* regardless of completion order,
so a parallel campaign produces byte-identical tables to a serial one.

On platforms without ``fork`` the pool degrades to in-process serial
execution (retries still honoured; timeouts unenforceable and ignored).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

_POLL_SECONDS = 0.01


@dataclass
class Job:
    """One unit of work: ``fn(*args, **kwargs)`` in a worker process.

    ``fn``'s return value must be picklable (it crosses a pipe back to
    the orchestrator); ``fn`` itself need not be, since workers fork.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    id: Optional[str] = None
    #: seconds before the worker is killed; None = pool default
    timeout: Optional[float] = None
    #: extra attempts after the first; None = pool default
    retries: Optional[int] = None


@dataclass
class JobResult:
    """Outcome of one job, after all retry attempts."""

    id: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    tb: Optional[str] = None
    attempts: int = 0
    seconds: float = 0.0
    timed_out: bool = False
    crashed: bool = False

    def record(self) -> Dict[str, Any]:
        """JSONL-friendly summary (value omitted: it may be large)."""
        return {
            "job": self.id,
            "status": "ok" if self.ok else (
                "timeout" if self.timed_out else
                "crashed" if self.crashed else "error"),
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "error": self.error,
            "error_type": self.error_type,
        }


def _worker(conn, fn, args, kwargs) -> None:
    try:
        value = fn(*args, **(kwargs or {}))
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 — report, don't die silent
        conn.send(("error", type(exc).__name__, str(exc),
                   traceback.format_exc()))
    finally:
        conn.close()


class _Active:
    """Bookkeeping for one in-flight attempt."""

    def __init__(self, index, job, process, conn, attempt, deadline):
        self.index = index
        self.job = job
        self.process = process
        self.conn = conn
        self.attempt = attempt
        self.deadline = deadline
        self.started = time.perf_counter()


class WorkerPool:
    """Fan jobs across ``workers`` forked processes.

    ``timeout`` and ``retries`` are defaults a :class:`Job` may
    override per job.
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = None,
                 retries: int = 0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        methods = multiprocessing.get_all_start_methods()
        self._ctx = (multiprocessing.get_context("fork")
                     if "fork" in methods else None)

    # -- public API --------------------------------------------------

    def map(self, fn: Callable[..., Any],
            argslist: Iterable[tuple]) -> List[JobResult]:
        """Convenience: one job per args tuple."""
        return self.run([Job(fn=fn, args=args) for args in argslist])

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Run all jobs; results in submission order."""
        jobs = list(jobs)
        for i, job in enumerate(jobs):
            if job.id is None:
                job.id = f"job-{i}"
        if self._ctx is None:
            return [self._run_inline(job) for job in jobs]
        return self._run_forked(jobs)

    # -- serial fallback ---------------------------------------------

    def _run_inline(self, job: Job) -> JobResult:
        retries = self.retries if job.retries is None else job.retries
        start = time.perf_counter()
        last: Optional[JobResult] = None
        for attempt in range(1, retries + 2):
            try:
                value = job.fn(*job.args, **(job.kwargs or {}))
                return JobResult(id=job.id, ok=True, value=value,
                                 attempts=attempt,
                                 seconds=time.perf_counter() - start)
            except BaseException as exc:  # noqa: BLE001
                last = JobResult(id=job.id, ok=False, error=str(exc),
                                 error_type=type(exc).__name__,
                                 tb=traceback.format_exc(),
                                 attempts=attempt,
                                 seconds=time.perf_counter() - start)
        return last

    # -- forked execution --------------------------------------------

    def _spawn(self, index: int, job: Job, attempt: int) -> _Active:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker, args=(child_conn, job.fn, job.args, job.kwargs),
            daemon=True)
        process.start()
        child_conn.close()
        timeout = self.timeout if job.timeout is None else job.timeout
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        return _Active(index, job, process, parent_conn, attempt, deadline)

    def _reap(self, active: _Active) -> Optional[JobResult]:
        """Check one in-flight attempt; a result means it finished."""
        job = active.job
        elapsed = time.perf_counter() - active.started
        if active.conn.poll():
            try:
                message = active.conn.recv()
            except (EOFError, OSError):
                message = None
            active.process.join(1.0)
            code = active.process.exitcode
            self._finish_process(active)
            if message is None:
                return JobResult(id=job.id, ok=False, crashed=True,
                                 error="worker crashed without reporting "
                                       f"(exit code {code})",
                                 error_type="WorkerCrash",
                                 attempts=active.attempt, seconds=elapsed)
            if message[0] == "ok":
                return JobResult(id=job.id, ok=True, value=message[1],
                                 attempts=active.attempt, seconds=elapsed)
            _, error_type, error, tb = message
            return JobResult(id=job.id, ok=False, error=error,
                             error_type=error_type, tb=tb,
                             attempts=active.attempt, seconds=elapsed)
        if not active.process.is_alive():
            code = active.process.exitcode
            self._finish_process(active)
            return JobResult(id=job.id, ok=False, crashed=True,
                             error=f"worker crashed (exit code {code})",
                             error_type="WorkerCrash",
                             attempts=active.attempt, seconds=elapsed)
        if active.deadline is not None and \
                time.perf_counter() > active.deadline:
            active.process.terminate()
            active.process.join(1.0)
            if active.process.is_alive():
                active.process.kill()
                active.process.join(1.0)
            self._finish_process(active)
            return JobResult(id=job.id, ok=False, timed_out=True,
                             error=f"timed out after {elapsed:.1f}s",
                             error_type="Timeout",
                             attempts=active.attempt, seconds=elapsed)
        return None

    @staticmethod
    def _finish_process(active: _Active) -> None:
        active.conn.close()
        active.process.join(1.0)
        if active.process.is_alive():
            active.process.kill()
            active.process.join(1.0)
        active.process.close()

    def _run_forked(self, jobs: List[Job]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending = list(enumerate(jobs))
        pending.reverse()  # pop() from the front of the submission order
        active: List[_Active] = []
        try:
            while pending or active:
                while pending and len(active) < self.workers:
                    index, job = pending.pop()
                    active.append(self._spawn(index, job, attempt=1))
                still_running: List[_Active] = []
                for entry in active:
                    outcome = self._reap(entry)
                    if outcome is None:
                        still_running.append(entry)
                        continue
                    retries = (self.retries if entry.job.retries is None
                               else entry.job.retries)
                    if not outcome.ok and entry.attempt <= retries:
                        still_running.append(
                            self._spawn(entry.index, entry.job,
                                        attempt=entry.attempt + 1))
                        continue
                    outcome.attempts = entry.attempt
                    results[entry.index] = outcome
                active = still_running
                if active:
                    time.sleep(_POLL_SECONDS)
        finally:
            for entry in active:
                if entry.process.is_alive():
                    entry.process.kill()
                    entry.process.join(1.0)
        return results
