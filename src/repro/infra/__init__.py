"""``repro.infra`` — parallel experiment-orchestration subsystem.

The campaign runner for the paper's SPEC-shaped evaluation, modeled on
the instrumentation-infra framework: target×instance registries, a
forked worker pool with per-job timeouts and bounded retries, a
content-addressed artifact cache for ``.mcfo`` objects and linked
images, and a structured JSONL result store with reporters.

Quickstart (see ``docs/INFRA.md``)::

    python -m repro.tools.infra build --jobs 4 --cache-dir .cache/infra
    python -m repro.tools.infra run   --jobs 4 --cache-dir .cache/infra
    python -m repro.tools.infra report --cache-dir .cache/infra
"""

from repro.infra.breaker import (CLOSED, HALF_OPEN, OPEN,
                                 CircuitBreaker)
from repro.infra.cache import (ArtifactCache, CacheStats, open_cache,
                               source_digest)
from repro.infra.campaign import (build_modules, build_program, configure,
                                  default_cache, parallel_artifact,
                                  run_campaign, run_target,
                                  PARALLEL_ARTIFACTS)
from repro.infra.instances import (ARCHS, DEFAULT_INSTANCES, INSTANCES,
                                   Instance, expand, instance)
from repro.infra.pool import Job, JobResult, WorkerPool
from repro.infra.results import (ResultStore, load_records, regenerate,
                                 render_fig5, render_summary,
                                 render_table3, summarize)
from repro.infra.targets import TARGETS, Target, all_targets, target

__all__ = [
    "ARCHS", "ArtifactCache", "CLOSED", "CacheStats", "CircuitBreaker",
    "DEFAULT_INSTANCES", "HALF_OPEN",
    "INSTANCES", "Instance", "Job", "JobResult", "OPEN",
    "PARALLEL_ARTIFACTS",
    "ResultStore", "TARGETS", "Target", "WorkerPool", "all_targets",
    "build_modules", "build_program", "configure", "default_cache",
    "expand", "instance", "load_records", "open_cache",
    "parallel_artifact", "regenerate", "render_fig5", "render_summary",
    "render_table3", "run_campaign", "run_target", "source_digest",
    "summarize", "target",
]
