"""Structured result store: append-only JSONL run records + reporters.

Every build, run and artifact job of a campaign appends one JSON object
per line to a ``results.jsonl``.  Records are self-describing via their
``kind`` field:

==============  =====================================================
``build``       one (target, instance) build: cache hits/misses,
                seconds, whether the link was served from cache
``run``         one workload execution: cycles, instructions, retries
``cfgstats``    Table-3 statistics for one (target, arch)
``artifact``    one parallel artifact job (fig5, table3, ...) with its
                per-job wall time and cache delta
``summary``     end-of-campaign aggregate (wall time, hit rate)
==============  =====================================================

The reporters regenerate the repo's ``benchmarks/results/*.txt``
artifact files from stored records — the same formats the benchmark
suite writes — so a cached parallel campaign and a serial pytest run
produce interchangeable artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.infra.pool import JobResult


class ResultStore:
    """Append-only JSONL record sink (one campaign, one file).

    ``timestamps=False`` omits the wall-clock ``ts`` field so a seeded
    campaign writes byte-identical files across runs — the corpus
    findings store is ``cmp``-pinned against a golden file in CI.
    """

    def __init__(self, path: Union[str, Path], timestamps: bool = True):
        self.path = Path(path)
        self.timestamps = timestamps
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": kind}
        if self.timestamps:
            record["ts"] = round(time.time(), 3)
        record.update(fields)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def append_job(self, result: JobResult,
                   **extra: Any) -> Dict[str, Any]:
        """Record one pool job outcome (value omitted)."""
        fields = result.to_dict()
        fields.update(extra)
        return self.append("job", **fields)

    def append_record(self, obj: Any, **extra: Any) -> Dict[str, Any]:
        """Record any object exposing the ``to_dict()`` protocol.

        The record kind comes from the object's ``KIND`` attribute
        (falling back to the lowercased class name), and every result
        type in the repo — :class:`~repro.runtime.runtime.RunResult`,
        :class:`~repro.infra.pool.JobResult`,
        :class:`~repro.faults.harness.SurvivalRecord`,
        :class:`~repro.vm.attacker.AttackReport`,
        :class:`~repro.obs.Snapshot` — lands in the store through this
        one shape.
        """
        fields = obj.to_dict()
        kind = fields.pop("kind", None) or \
            getattr(obj, "KIND", None) or type(obj).__name__.lower()
        fields.update(extra)
        return self.append(kind, **fields)

    def records(self) -> List[Dict[str, Any]]:
        return load_records(self.path)


def load_records(path: Union[str, Path]) -> List[Dict[str, Any]]:
    path = Path(path)
    if not path.exists():
        return []
    out: List[Dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def summarize(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Campaign-level aggregate of a record stream."""
    totals = {"records": 0, "builds": 0, "runs": 0, "failures": 0,
              "retries": 0, "cache_hits": 0, "cache_misses": 0,
              "seconds": 0.0}
    kinds: Dict[str, int] = {}
    for record in records:
        totals["records"] += 1
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "build":
            totals["builds"] += 1
        elif kind == "run":
            totals["runs"] += 1
        if record.get("status") not in (None, "ok"):
            totals["failures"] += 1
        attempts = record.get("attempts")
        if isinstance(attempts, int) and attempts > 1:
            totals["retries"] += attempts - 1
        totals["cache_hits"] += record.get("cache_hits", 0) or 0
        totals["cache_misses"] += record.get("cache_misses", 0) or 0
        if kind != "summary":
            totals["seconds"] += record.get("seconds", 0.0) or 0.0
    lookups = totals["cache_hits"] + totals["cache_misses"]
    totals["cache_hit_rate"] = (totals["cache_hits"] / lookups
                                if lookups else 0.0)
    totals["kinds"] = kinds
    return totals


def render_summary(records: Iterable[Dict[str, Any]]) -> str:
    t = summarize(records)
    lines = [
        f"records      : {t['records']} "
        f"({', '.join(f'{k}={n}' for k, n in sorted(t['kinds'].items()))})",
        f"builds/runs  : {t['builds']} / {t['runs']}",
        f"failures     : {t['failures']} (retries spent: {t['retries']})",
        f"artifact cache: {t['cache_hits']} hits / "
        f"{t['cache_misses']} misses "
        f"({100.0 * t['cache_hit_rate']:.1f}% hit rate)",
        f"job seconds  : {t['seconds']:.2f} (sum over jobs)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Artifact-file reporters (benchmarks/results/*.txt formats)
# ---------------------------------------------------------------------------

def render_fig5(records: Iterable[Dict[str, Any]],
                arch: str = "x64") -> Optional[str]:
    """Rebuild the ``fig5_overhead_<arch>.txt`` table from run records.

    Uses the latest native+mcfi ``run`` record pair per benchmark.
    """
    native: Dict[str, Dict[str, Any]] = {}
    mcfi: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for record in records:
        if record.get("kind") != "run" or record.get("arch") != arch:
            continue
        if record.get("status") not in (None, "ok"):
            continue
        name = record["target"]
        (mcfi if record.get("mcfi") else native)[name] = record
        if name not in order:
            order.append(name)
    rows = [name for name in order if name in native and name in mcfi]
    if not rows:
        return None
    lines = [f"{'benchmark':12s} {'native cycles':>14s} "
             f"{'mcfi cycles':>12s} {'overhead':>9s}"]
    overheads = []
    for name in rows:
        n, m = native[name]["cycles"], mcfi[name]["cycles"]
        pct = 100.0 * (m - n) / n
        overheads.append(pct)
        lines.append(f"{name:12s} {n:14d} {m:12d} {pct:8.2f}%")
    mean = sum(overheads) / len(overheads)
    lines.append(f"{'average':12s} {'':14s} {'':12s} {mean:8.2f}%")
    return "\n".join(lines)


def render_table3(records: Iterable[Dict[str, Any]]) -> Optional[str]:
    """Rebuild ``table3_cfg_stats.txt`` from cfgstats records."""
    stats: Dict[str, Dict[str, Dict[str, int]]] = {}
    order: List[str] = []
    for record in records:
        if record.get("kind") != "cfgstats":
            continue
        name, arch = record["target"], record["arch"]
        stats.setdefault(name, {})[arch] = record
        if name not in order:
            order.append(name)
    rows = [name for name in order
            if "x32" in stats.get(name, {}) and "x64" in stats[name]]
    if not rows:
        return None
    lines = [f"{'benchmark':12s} {'IBs32':>6s} {'IBTs32':>7s} "
             f"{'EQCs32':>7s}  {'IBs64':>6s} {'IBTs64':>7s} "
             f"{'EQCs64':>7s}"]
    for name in rows:
        a, b = stats[name]["x32"], stats[name]["x64"]
        lines.append(f"{name:12s} {a['IBs']:6d} {a['IBTs']:7d} "
                     f"{a['EQCs']:7d}  {b['IBs']:6d} {b['IBTs']:7d} "
                     f"{b['EQCs']:7d}")
    return "\n".join(lines)


def regenerate(records: Iterable[Dict[str, Any]],
               results_dir: Union[str, Path]) -> List[Path]:
    """Write every artifact file derivable from ``records``."""
    records = list(records)
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    fig5 = render_fig5(records)
    if fig5 is not None:
        path = results_dir / "fig5_overhead_x64.txt"
        path.write_text(fig5 + "\n", encoding="utf-8")
        written.append(path)
    table3 = render_table3(records)
    if table3 is not None:
        path = results_dir / "table3_cfg_stats.txt"
        path.write_text(table3 + "\n", encoding="utf-8")
        written.append(path)
    return written
