"""End-to-end MCFI toolchain driver (paper Sec. 7).

Chains the pipeline for one module::

    TinyC source -> parse -> type check -> MIR -> codegen -> RawModule

and for whole programs::

    [RawModule, ...] -> static link (separate instrumentation) -> load -> run

The ``BUILTIN_PRELUDE`` plays the role of the C headers: declarations of
the libc API every module may use.  ``__syscall``, ``setjmp`` and
``longjmp`` are compiler intrinsics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.linker.static_linker import LinkedProgram, link
from repro.mir.codegen import RawModule, generate
from repro.mir.lowering import lower_unit
from repro.obs import OBS
from repro.runtime.runtime import Runtime, RunResult
from repro.tinyc.parser import parse
from repro.tinyc.typecheck import CheckedUnit, check
from repro.tinyc.types import TypeTable

BUILTIN_PRELUDE = """
void *malloc(unsigned long n);
void *calloc(unsigned long n, unsigned long m);
void *realloc(void *p, unsigned long n);
void free(void *p);
void *memcpy(void *d, void *s, unsigned long n);
void *memset(void *d, int c, unsigned long n);
unsigned long strlen(char *s);
int strcmp(char *a, char *b);
char *strcpy(char *d, char *s);
int strncmp(char *a, char *b, unsigned long n);
char *strchr(char *s, int c);
int memcmp(void *a, void *b, unsigned long n);
long atoi_l(char *s);
void qsort(void *base, unsigned long n, unsigned long width,
           int (*cmp)(void *, void *));
long __syscall(long n, long a, long b, long c);
int setjmp(long *buf);
void longjmp(long *buf, int v);
void exit(int code);
long write(int fd, char *buf, long n);
void print_str(char *s);
void print_int(long v);
void print_char(int c);
long time_now(void);
int thread_spawn(void (*fn)(long), long arg);
void thread_exit(void);
long dlopen(char *path);
long dlsym(long handle, char *name);
long jit_compile(char *src, char *name);
long dlclose(long handle);
void sched_yield(void);
long abs_long(long x);
long rand_next(void);
void rand_seed(long s);
double fabs_d(double x);
double sqrt_d(double x);
"""


def frontend(source: str, name: str = "unit", prelude: bool = True,
             types: Optional[TypeTable] = None) -> CheckedUnit:
    """Parse and type-check one TinyC module."""
    text = (BUILTIN_PRELUDE + source) if prelude else source
    unit = parse(text, name=name, types=types)
    return check(unit)


def compile_module(source: str, name: str = "unit", arch: str = "x64",
                   prelude: bool = True,
                   optimize: bool = False) -> RawModule:
    """Compile one TinyC module to (uninstrumented) symbolic assembly.

    ``optimize`` runs the function-pointer points-to pass between
    lowering and codegen: singleton-target indirect calls become direct
    calls and small resolved sets become CFG target hints (see
    :mod:`repro.analysis.dataflow.pointsto`).  Off by default so the
    baseline artifacts the paper's tables are built from stay stable.
    """
    with OBS.tracer.span("toolchain.compile", module=name, arch=arch):
        with OBS.tracer.span("toolchain.frontend", module=name):
            checked = frontend(source, name=name, prelude=prelude)
        with OBS.tracer.span("toolchain.lower", module=name):
            mir_module = lower_unit(checked)
        if optimize:
            from repro.analysis.dataflow import devirtualize_module
            devirtualize_module(mir_module)
        with OBS.tracer.span("toolchain.codegen", module=name):
            return generate(mir_module, checked, arch=arch)


def compile_and_link(sources: Dict[str, str], arch: str = "x64",
                     mcfi: bool = True, with_libc: bool = True,
                     allow_unresolved: Optional[List[str]] = None,
                     optimize: bool = False) -> LinkedProgram:
    """Compile named sources (plus simlibc) and statically link them."""
    raws = [compile_module(text, name=name, arch=arch, optimize=optimize)
            for name, text in sources.items()]
    if with_libc:
        from repro.workloads.libc import LIBC_SOURCE
        raws.append(compile_module(LIBC_SOURCE, name="libc", arch=arch,
                                   optimize=optimize))
    return link(raws, mcfi=mcfi, allow_unresolved=allow_unresolved)


def run_program(program: LinkedProgram, verify: bool = False,
                max_steps: int = 200_000_000) -> RunResult:
    """Load a linked program into a fresh runtime and run it."""
    runtime = Runtime(program, verify=verify)
    return runtime.run(max_steps=max_steps)


def compile_and_run(sources: Dict[str, str], arch: str = "x64",
                    mcfi: bool = True, verify: bool = False,
                    max_steps: int = 200_000_000) -> RunResult:
    """Convenience: compile, link, load and run in one call."""
    program = compile_and_link(sources, arch=arch, mcfi=mcfi)
    return run_program(program, verify=verify, max_steps=max_steps)
