"""Legacy toolchain entry points — thin shims over :mod:`repro.build`.

The pipeline (paper Sec. 7) chains, for one module::

    TinyC source -> parse -> type check -> MIR -> codegen -> RawModule

and for whole programs::

    [module, ...] -> static link (separate instrumentation) -> load -> run

Since the ``repro.build`` redesign the *implementation* lives there —
function-grain compilation units, content-addressed caching, pool
parallelism and incremental re-link behind
:class:`~repro.build.session.BuildSession`.  This module keeps the
original call shapes working: :func:`compile_module`,
:func:`compile_and_link` and :func:`compile_and_run` delegate to
:mod:`repro.build` and produce byte-identical programs.  The ``optimize``
keyword was renamed ``devirtualize`` in the new API; passing it here
still works but emits a :class:`DeprecationWarning`.

What genuinely lives here is the language frontend: the
``BUILTIN_PRELUDE`` plays the role of the C headers (declarations of
the libc API every module may use; ``__syscall``, ``setjmp`` and
``longjmp`` are compiler intrinsics), and :func:`frontend` is the
parse+typecheck step every build path shares.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from repro.linker.static_linker import LinkedProgram
from repro.mir.codegen import RawModule
from repro.runtime.runtime import Runtime, RunResult
from repro.tinyc.parser import parse
from repro.tinyc.typecheck import CheckedUnit, check
from repro.tinyc.types import TypeTable

BUILTIN_PRELUDE = """
void *malloc(unsigned long n);
void *calloc(unsigned long n, unsigned long m);
void *realloc(void *p, unsigned long n);
void free(void *p);
void *memcpy(void *d, void *s, unsigned long n);
void *memset(void *d, int c, unsigned long n);
unsigned long strlen(char *s);
int strcmp(char *a, char *b);
char *strcpy(char *d, char *s);
int strncmp(char *a, char *b, unsigned long n);
char *strchr(char *s, int c);
int memcmp(void *a, void *b, unsigned long n);
long atoi_l(char *s);
void qsort(void *base, unsigned long n, unsigned long width,
           int (*cmp)(void *, void *));
long __syscall(long n, long a, long b, long c);
int setjmp(long *buf);
void longjmp(long *buf, int v);
void exit(int code);
long write(int fd, char *buf, long n);
void print_str(char *s);
void print_int(long v);
void print_char(int c);
long time_now(void);
int thread_spawn(void (*fn)(long), long arg);
void thread_exit(void);
long dlopen(char *path);
long dlsym(long handle, char *name);
long jit_compile(char *src, char *name);
long dlclose(long handle);
void sched_yield(void);
long abs_long(long x);
long rand_next(void);
void rand_seed(long s);
double fabs_d(double x);
double sqrt_d(double x);
"""


def frontend(source: str, name: str = "unit", prelude: bool = True,
             types: Optional[TypeTable] = None) -> CheckedUnit:
    """Parse and type-check one TinyC module."""
    text = (BUILTIN_PRELUDE + source) if prelude else source
    unit = parse(text, name=name, types=types)
    return check(unit)


def _renamed_optimize(fn: str, optimize: Optional[bool]) -> bool:
    """Resolve the legacy ``optimize`` keyword (renamed ``devirtualize``
    in :mod:`repro.build`), warning when it was explicitly passed."""
    if optimize is None:
        return False
    warnings.warn(
        f"{fn}(optimize=...) is deprecated: the keyword is named "
        f"'devirtualize' in the repro.build API — use repro.build."
        f"{'compile_object' if fn == 'compile_module' else 'build_program'}",
        DeprecationWarning, stacklevel=3)
    return optimize


def compile_module(source: str, name: str = "unit", arch: str = "x64",
                   prelude: bool = True,
                   optimize: Optional[bool] = None) -> RawModule:
    """Compile one TinyC module to (uninstrumented) symbolic assembly.

    Thin shim over :func:`repro.build.compile_object`; ``optimize`` is
    the deprecated spelling of ``devirtualize``.
    """
    from repro.build.api import compile_object
    return compile_object(source, name=name, arch=arch, prelude=prelude,
                          devirtualize=_renamed_optimize(
                              "compile_module", optimize))


def compile_and_link(sources: Dict[str, str], arch: str = "x64",
                     mcfi: bool = True, with_libc: bool = True,
                     allow_unresolved: Optional[List[str]] = None,
                     optimize: Optional[bool] = None) -> LinkedProgram:
    """Compile named sources (plus simlibc) and statically link them.

    Thin shim over :func:`repro.build.build_program`; ``optimize`` is
    the deprecated spelling of ``devirtualize``.
    """
    from repro.build.api import build_program
    return build_program(sources, arch=arch, mcfi=mcfi,
                         with_libc=with_libc,
                         allow_unresolved=allow_unresolved,
                         devirtualize=_renamed_optimize(
                             "compile_and_link", optimize)).program


def run_program(program: LinkedProgram, verify: bool = False,
                max_steps: int = 200_000_000) -> RunResult:
    """Load a linked program into a fresh runtime and run it."""
    runtime = Runtime(program, verify=verify)
    return runtime.run(max_steps=max_steps)


def compile_and_run(sources: Dict[str, str], arch: str = "x64",
                    mcfi: bool = True, verify: bool = False,
                    max_steps: int = 200_000_000) -> RunResult:
    """Convenience: compile, link, load and run in one call."""
    from repro.build.api import build_program
    program = build_program(sources, arch=arch, mcfi=mcfi).program
    return run_program(program, verify=verify, max_steps=max_steps)
