"""MCFI instrumentation pass (the paper's rewriter, Secs. 5.2 and 7).

Consumes the :class:`~repro.mir.codegen.RawModule` symbolic assembly and
produces either:

* :func:`instrument_module` — MCFI-instrumented assembly: every indirect
  branch becomes an inlined check transaction (Fig. 4), indirect-branch
  targets gain 4-byte alignment no-ops, memory writes are sandboxed into
  ``[0, 4GB)`` (x64 mode), and each branch site gets a numbered
  ``BarySlot`` that the loader patches with its Bary table index; or
* :func:`lower_native` — the uninstrumented baseline used to measure
  Fig. 5/6 overhead.

The expansion of a return matches Fig. 4 instruction for instruction::

    popq %rcx                 POP rcx
    movl %ecx, %ecx           MOVZX32 rcx
    Try: movl %gs:idx, %edi   TLOAD_RI rdi, BarySlot(site)
    movl %gs:(%rcx), %esi     TLOAD_RR rsi, rcx
    cmpl %edi, %esi           CMP_RR rdi, rsi
    jne Check                 JNE Check
    jmpq *%rcx                JMP_R rcx
    Check: testb $1, %sil     TESTB1 rsi
    jz Halt                   JE Halt
    cmpw %di, %si             CMPW_RR rdi, rsi
    jne Try                   JNE Try
    Halt: hlt                 HLT
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CodegenError
from repro.isa.assembler import (
    Align,
    AlignEnd,
    AsmInstr,
    BarySlot,
    Item,
    Label,
    LabelRef,
    Mark,
)
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.mir.codegen import (
    PseudoIndirectCall,
    PseudoIndirectJump,
    PseudoReturn,
    RawItem,
    RawModule,
)
from repro.tinyc.types import FuncSig

_STORES = (Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64)


@dataclass(frozen=True)
class SiteInfo:
    """One indirect-branch site: what the CFG generator needs to know.

    ``site`` numbers are module-local; the loader assigns global Bary
    indexes at load time.
    """

    site: int
    kind: str                       # 'ret' | 'icall' | 'tail' | 'switch'
                                    # | 'longjmp' | 'plt'
    fn: str                         # enclosing function ('' for PLT)
    sig: Optional[FuncSig] = None   # pointer signature (icall/tail)
    targets: Tuple[str, ...] = ()   # case labels (switch)
    plt_symbol: Optional[str] = None
    #: points-to refinement: proven callee names (icall/tail), or ()
    ptargets: Tuple[str, ...] = ()


@dataclass
class InstrumentedAsm:
    """Instrumented symbolic assembly plus its site table."""

    items: List[Item]
    sites: List[SiteInfo]
    #: labels of setjmp resume points (their own equivalence class)
    setjmp_resumes: List[str] = field(default_factory=list)


class _Expander:
    """Shared emission of Fig. 4 check sequences.

    ``namespace`` keeps generated labels unique when several separately
    instrumented modules are statically linked into one image.
    """

    def __init__(self, namespace: str = "") -> None:
        self.items: List[Item] = []
        self.sites: List[SiteInfo] = []
        self._label_counter = 0
        self.namespace = namespace

    def _fresh(self, hint: str) -> str:
        self._label_counter += 1
        return f"__mcfi.{self.namespace}.{hint}.{self._label_counter}"

    def new_site(self, kind: str, fn: str, sig: Optional[FuncSig] = None,
                 targets: Tuple[str, ...] = (),
                 plt_symbol: Optional[str] = None,
                 ptargets: Tuple[str, ...] = ()) -> SiteInfo:
        info = SiteInfo(site=len(self.sites), kind=kind, fn=fn, sig=sig,
                        targets=targets, plt_symbol=plt_symbol,
                        ptargets=ptargets)
        self.sites.append(info)
        return info

    def emit(self, op: Op, *operands) -> None:
        self.items.append(AsmInstr(op, tuple(operands)))

    def check_and_jump(self, site: SiteInfo,
                       reload_got: Optional[str] = None) -> None:
        """Emit Try/Check/Halt with a final ``jmp *%rcx``.

        With ``reload_got`` the Try block re-reads the branch target
        from the GOT slot (whose address is already in ``rbx``) — the
        paper's PLT adaptation, so a retried transaction observes the
        GOT value the update transaction installed.
        """
        try_label = self._fresh("try")
        check_label = self._fresh("check")
        halt_label = self._fresh("halt")
        self.items.append(Label(try_label))
        if reload_got is not None:
            self.emit(Op.LOAD64, Reg.RCX, Reg.RBX, 0)
            self.emit(Op.MOVZX32, Reg.RCX)
        self.emit(Op.TLOAD_RI, Reg.RDI, BarySlot(site.site))
        self.emit(Op.TLOAD_RR, Reg.RSI, Reg.RCX)
        self.emit(Op.CMP_RR, Reg.RDI, Reg.RSI)
        self.emit(Op.JNE, LabelRef(check_label))
        self.emit(Op.JMP_R, Reg.RCX)
        self.items.append(Label(check_label))
        self.emit(Op.TESTB1, Reg.RSI)
        self.emit(Op.JE, LabelRef(halt_label))
        self.emit(Op.CMPW_RR, Reg.RDI, Reg.RSI)
        self.emit(Op.JNE, LabelRef(try_label))
        self.items.append(Label(halt_label))
        self.emit(Op.HLT)

    def expand_return(self, fn: str) -> None:
        site = self.new_site("ret", fn)
        self.emit(Op.POP, Reg.RCX)
        self.emit(Op.MOVZX32, Reg.RCX)
        self.check_and_jump(site)

    def expand_indirect_jump(self, pseudo: PseudoIndirectJump) -> None:
        site = self.new_site(pseudo.kind, pseudo.fn, sig=pseudo.sig,
                             targets=pseudo.targets,
                             ptargets=pseudo.ptargets)
        if pseudo.reg != Reg.RCX:
            self.emit(Op.MOV_RR, Reg.RCX, pseudo.reg)
        self.emit(Op.MOVZX32, Reg.RCX)
        self.check_and_jump(site)

    def expand_indirect_call(self, pseudo: PseudoIndirectCall,
                             retsite_mark: Optional[Mark]) -> None:
        site = self.new_site("icall", pseudo.fn, sig=pseudo.sig,
                             ptargets=pseudo.ptargets)
        try_label = self._fresh("try")
        check_label = self._fresh("check")
        halt_label = self._fresh("halt")
        done_label = self._fresh("done")
        if pseudo.reg != Reg.RCX:
            self.emit(Op.MOV_RR, Reg.RCX, pseudo.reg)
        self.emit(Op.MOVZX32, Reg.RCX)
        self.items.append(Label(try_label))
        self.emit(Op.TLOAD_RI, Reg.RDI, BarySlot(site.site))
        self.emit(Op.TLOAD_RR, Reg.RSI, Reg.RCX)
        self.emit(Op.CMP_RR, Reg.RDI, Reg.RSI)
        self.emit(Op.JNE, LabelRef(check_label))
        # The return site (instruction after the call) must be 4-byte
        # aligned so it has a Tary entry.
        self.items.append(AlignEnd(4))
        self.emit(Op.CALL_R, Reg.RCX)
        if retsite_mark is not None:
            caller, callee = retsite_mark.info
            self.items.append(Mark("retsite", (caller, callee, pseudo.sig)))
        self.emit(Op.JMP, LabelRef(done_label))
        self.items.append(Label(check_label))
        self.emit(Op.TESTB1, Reg.RSI)
        self.emit(Op.JE, LabelRef(halt_label))
        self.emit(Op.CMPW_RR, Reg.RDI, Reg.RSI)
        self.emit(Op.JNE, LabelRef(try_label))
        self.items.append(Label(halt_label))
        self.emit(Op.HLT)
        self.items.append(Label(done_label))


def _collect_aligned_labels(items: List[RawItem],
                            functions: Dict[str, object]) -> set:
    """Labels that are indirect-branch targets and need 4-byte alignment."""
    aligned = set(functions)  # all function entries
    for item in items:
        if isinstance(item, PseudoIndirectJump) and item.kind == "switch":
            aligned.update(item.targets)
        elif isinstance(item, Mark) and item.kind == "setjmp_resume":
            aligned.add(item.info)
    return aligned


def instrument_items(raw: RawModule) -> InstrumentedAsm:
    """Apply MCFI instrumentation to a raw module's assembly."""
    aligned = _collect_aligned_labels(raw.items, raw.functions)
    return instrument_stream(raw.items, aligned, namespace=raw.name,
                             sandbox_writes=raw.arch == "x64")


def instrument_stream(items: List[RawItem], aligned: set, namespace: str,
                      sandbox_writes: bool) -> InstrumentedAsm:
    """Instrument one symbolic item stream (a whole module, or a single
    function's items in the per-unit build pipeline).

    ``aligned`` lists the labels that are indirect-branch targets;
    ``namespace`` keeps generated ``__mcfi.*`` labels unique across the
    separately instrumented streams of one image.
    """
    expander = _Expander(namespace=namespace)
    setjmp_resumes: List[str] = []
    index = 0
    out = expander.items
    while index < len(items):
        item = items[index]
        if isinstance(item, PseudoReturn):
            expander.expand_return(item.fn)
        elif isinstance(item, PseudoIndirectJump):
            expander.expand_indirect_jump(item)
        elif isinstance(item, PseudoIndirectCall):
            retsite_mark = None
            if index + 1 < len(items) and isinstance(items[index + 1], Mark) \
                    and items[index + 1].kind == "retsite":
                retsite_mark = items[index + 1]
                index += 1
            expander.expand_indirect_call(item, retsite_mark)
        elif isinstance(item, Label) and item.name in aligned:
            out.append(Align(4))
            out.append(item)
        elif isinstance(item, Mark) and item.kind == "setjmp_resume":
            # The alignment must come before the mark so both the mark
            # and the label bind to the padded address.
            setjmp_resumes.append(item.info)
            out.append(Align(4))
            out.append(item)
            follower = items[index + 1] if index + 1 < len(items) else None
            if not (isinstance(follower, Label)
                    and follower.name == item.info):
                raise CodegenError("setjmp resume mark not before its label")
            out.append(follower)
            index += 1
        elif isinstance(item, AsmInstr) and item.op == Op.CALL:
            out.append(AlignEnd(4))
            out.append(item)
        elif isinstance(item, AsmInstr) and sandbox_writes and \
                item.op in _STORES:
            base = item.operands[0]
            if base != Reg.RSP:
                out.append(AsmInstr(Op.MOVZX32, (base,)))
            out.append(item)
        else:
            out.append(item)
        index += 1

    result = InstrumentedAsm(items=out, sites=expander.sites,
                             setjmp_resumes=setjmp_resumes)
    return result


def lower_native(raw: RawModule) -> List[Item]:
    """Lower pseudo-items to bare indirect branches (no CFI).

    This is the baseline for overhead measurements and the "original
    benchmarks" side of the gadget-elimination experiment.
    """
    out: List[Item] = []
    for item in raw.items:
        if isinstance(item, PseudoReturn):
            out.append(AsmInstr(Op.RET, ()))
        elif isinstance(item, PseudoIndirectCall):
            out.append(AsmInstr(Op.CALL_R, (item.reg,)))
        elif isinstance(item, PseudoIndirectJump):
            out.append(AsmInstr(Op.JMP_R, (item.reg,)))
        else:
            out.append(item)
    return out


def make_plt_entry(symbol: str, got_label: str,
                   expander: _Expander) -> None:
    """Emit one MCFI-instrumented PLT entry (Sec. 5.2, PLT paragraph).

    The entry loads the branch target from the GOT *inside* the Try
    block, so when a check transaction retries during dynamic linking it
    observes the updated GOT entry.
    """
    site = expander.new_site("plt", "", plt_symbol=symbol)
    expander.items.append(Align(4))
    expander.items.append(Label(f"__plt.{symbol}"))
    expander.emit(Op.MOV_RI, Reg.RBX, LabelRef(got_label))
    expander.check_and_jump(site, reload_got=got_label)


def build_plt(symbols: List[str],
              got_labels: Dict[str, str]) -> InstrumentedAsm:
    """Build an instrumented PLT section for ``symbols``."""
    expander = _Expander(namespace="plt")
    for symbol in symbols:
        make_plt_entry(symbol, got_labels[symbol], expander)
    return InstrumentedAsm(items=expander.items, sites=expander.sites)
