"""MCFI's 32-bit ID encoding (paper Fig. 2).

An ID packs, into one 4-byte word:

* four **reserved bits** — the least-significant bit of each byte, with
  fixed values ``0, 0, 0, 1`` from the high byte to the low byte.  Any
  4-byte read that starts in the *middle* of a stored ID sees a word
  whose lowest bit is 0 (it comes from byte 1, 2 or 3 of some entry),
  so misaligned table lookups can never produce a valid ID;
* a **14-bit ECN** (equivalence-class number) spread over the free bits
  of the two high bytes;
* a **14-bit version number** spread over the free bits of the two low
  bytes, used by the transactions to detect concurrent updates.

The layout makes the three checks of a check transaction collapse into
ordinary comparisons, exactly as in the paper:

* full 32-bit equality  <=>  valid + same version + same ECN,
* ``cmpw`` (low 16 bits) <=>  same version (given both valid),
* ``testb $1`` (lowest bit) <=>  validity.

The all-zero word is reserved for "this address is not an indirect
branch target" (its reserved bit is 0, hence never valid).
"""

from __future__ import annotations

from typing import NamedTuple

ECN_BITS = 14
VERSION_BITS = 14

MAX_ECN = (1 << ECN_BITS) - 1
MAX_VERSION = (1 << VERSION_BITS) - 1

#: Tary entry meaning "not a permitted indirect-branch target".
INVALID_ID = 0


class DecodedId(NamedTuple):
    """An unpacked ID."""

    ecn: int
    version: int
    valid: bool


def pack_id(ecn: int, version: int) -> int:
    """Pack an ECN and a version into a valid 32-bit MCFI ID."""
    if not 0 <= ecn <= MAX_ECN:
        raise ValueError(f"ECN {ecn} out of 14-bit range")
    if not 0 <= version <= MAX_VERSION:
        raise ValueError(f"version {version} out of 14-bit range")
    low = 1 | ((version & 0x7F) << 1) | (((version >> 7) & 0x7F) << 9)
    high = ((ecn & 0x7F) << 1) | (((ecn >> 7) & 0x7F) << 9)
    return (high << 16) | low


def unpack_id(ident: int) -> DecodedId:
    """Unpack a 32-bit word into ``(ecn, version, valid)``.

    ``valid`` reports whether the reserved bits carry their required
    ``0,0,0,1`` pattern; ``ecn``/``version`` are still extracted for
    diagnostics even when invalid.
    """
    ident &= 0xFFFFFFFF
    low = ident & 0xFFFF
    high = ident >> 16
    version = ((low >> 1) & 0x7F) | (((low >> 9) & 0x7F) << 7)
    ecn = ((high >> 1) & 0x7F) | (((high >> 9) & 0x7F) << 7)
    valid = (ident & 0x01010101) == 0x00000001
    return DecodedId(ecn=ecn, version=version, valid=valid)


def is_valid_id(ident: int) -> bool:
    """True if the word's reserved bits form the valid ``0,0,0,1`` pattern."""
    return (ident & 0x01010101) == 0x00000001


def same_version(left: int, right: int) -> bool:
    """The ``cmpw`` of Fig. 4: compare the low 16 bits (version halves)."""
    return (left & 0xFFFF) == (right & 0xFFFF)


def bump_version(version: int) -> int:
    """Advance the global version, wrapping in 14 bits (the ABA caveat)."""
    return (version + 1) & MAX_VERSION


# ---------------------------------------------------------------------------
# Fault-hardened ECN spacing (EC-CFI-style single-bit-flip detection)
# ---------------------------------------------------------------------------

#: Payload bits of a parity-spaced ECN (one of the 14 ECN bits carries
#: the parity, halving the class space to 2^13 — far above any CFG here).
PARITY_ECN_BITS = ECN_BITS - 1
MAX_PARITY_ECN = (1 << PARITY_ECN_BITS) - 1


def parity_ecn(ecn: int) -> int:
    """Space an ECN so every pair of encoded ECNs differs in >= 2 bits.

    The low bit of the encoded value is the parity of the payload, so a
    single bit flip anywhere in the ECN half of a stored ID can never
    alias another in-use equivalence class: the flipped word either
    fails the reserved-bit validity test or decodes to an ECN with bad
    parity, which :func:`parity_ecn_ok` (and therefore any branch-ID
    comparison against a properly encoded ID) rejects.  This is the
    table-fault hardening the fault-injection campaign leans on.
    """
    if not 0 <= ecn <= MAX_PARITY_ECN:
        raise ValueError(f"ECN {ecn} out of {PARITY_ECN_BITS}-bit "
                         "parity-spaced range")
    return (ecn << 1) | (bin(ecn).count("1") & 1)


def parity_ecn_ok(encoded: int) -> bool:
    """True if an encoded ECN carries consistent parity."""
    return (bin(encoded >> 1).count("1") & 1) == (encoded & 1)
