"""MCFI's table-access transactions (paper Sec. 5.2, Figs. 3-4).

Two transaction kinds coordinate the ID tables:

* **Check transactions** run before every indirect branch.  In this
  reproduction they exist twice, deliberately:

  - as the *instruction sequence* emitted by
    :mod:`repro.core.instrument` and executed by the SimVM — the real
    enforcement path; and
  - as :func:`tx_check` below, a Python transcription of Fig. 4 used by
    the STM micro-benchmark and by concurrency tests that need to call
    the check millions of times without VM overhead.

* **Update transactions** run during dynamic linking.
  :class:`UpdateTransaction` follows Fig. 3: serialize on a global
  update lock, bump the global version, rebuild and copy the Tary
  table, issue a write barrier (the Tary/Bary ordering point — also
  where GOT entries are updated, per the PLT discussion), then update
  the Bary table.  It is a *generator*: each ``yield`` ends one atomic
  batch of 4-byte stores (the paper's ``movnti`` parallel copy), so the
  scheduler can interleave check transactions anywhere in the middle.

The linearization points match the paper: an update becomes visible at
the barrier between the two table updates; a check linearizes at its
Tary read.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Mapping, Optional, Tuple

from repro.core.idencoding import (
    bump_version,
    is_valid_id,
    pack_id,
    same_version,
)
from repro.core.tables import IdTables, bary_index, tary_index
from repro.errors import MemoryFault, RuntimeError_, TableIntegrityError
from repro.obs import OBS

#: Default retry budget for the scheduler-friendly check transaction.
#: Generous — a single in-flight update costs a handful of retries —
#: but finite, so sustained version churn (a wedged updater, an
#: injected stale-version fault) escalates to a typed error instead of
#: spinning forever.
DEFAULT_CHECK_RETRIES = 4096


class CheckResult:
    """Outcome codes for a Python-level check transaction."""

    ALLOWED = "allowed"
    INVALID_TARGET = "invalid-target"
    ECN_MISMATCH = "ecn-mismatch"
    OUT_OF_RANGE = "out-of-range"


def _note_check(result: str, retries: int) -> None:
    """Record one finished check transaction (obs-enabled path only)."""
    metrics = OBS.metrics
    metrics.counter("tx.check." + result).inc()
    if retries:
        metrics.counter("tx.check.retries").inc(retries)


def _note_escalation(retries: int) -> None:
    metrics = OBS.metrics
    metrics.counter("tx.check.escalations").inc()
    metrics.counter("tx.check.retries").inc(retries)


def tx_check(tables: IdTables, site: int, target: int,
             max_retries: int = DEFAULT_CHECK_RETRIES) -> Tuple[str, int]:
    """Python transcription of the Fig. 4 check transaction.

    Returns ``(result, retries)``.  Retries when the branch and target
    IDs are both valid but carry different versions (an update is in
    flight); the retry count is how Fig. 6's update-induced delay shows
    up at this level.
    """
    memory = tables.memory
    bindex = bary_index(site)
    target &= 0xFFFFFFFF  # the movl %ecx,%ecx sandboxing step
    retries = 0
    while True:
        branch_id = memory.read_bary(bindex)
        try:
            target_id = memory.read_tary(target)
        except MemoryFault:
            outcome = CheckResult.OUT_OF_RANGE
        else:
            if branch_id == target_id:
                outcome = CheckResult.ALLOWED
            elif not is_valid_id(target_id):
                outcome = CheckResult.INVALID_TARGET
            elif not same_version(branch_id, target_id):
                retries += 1
                if retries > max_retries:
                    if OBS.enabled:
                        _note_escalation(retries)
                    raise TableIntegrityError(
                        "check transaction livelocked: version mismatch "
                        f"persisted through {retries} retries",
                        retries=retries)
                continue
            else:
                outcome = CheckResult.ECN_MISMATCH
        if OBS.enabled:
            _note_check(outcome, retries)
        return outcome, retries


def tx_check_gen(tables: IdTables, site: int, target: int,
                 sink: Optional[List[Tuple[str, int]]] = None,
                 max_retries: int = DEFAULT_CHECK_RETRIES,
                 ) -> Generator[None, None, Tuple[str, int]]:
    """Scheduler-friendly check transaction: yields on every retry.

    On real hardware a retrying check transaction re-executes its loads
    while the updater's stores proceed in parallel; in the cooperative
    scheduler that parallelism is a ``yield`` per retry.  Appends the
    final ``(result, retries)`` to ``sink`` if given (generators' return
    values are awkward to collect from scheduler tasks).

    The retry loop is *bounded*: exhausting ``max_retries`` raises
    :class:`~repro.errors.TableIntegrityError` rather than spinning
    forever, so a stuck or adversarial updater degrades to a fail-safe
    halt instead of a livelock.
    """
    memory = tables.memory
    bindex = bary_index(site)
    target &= 0xFFFFFFFF
    retries = 0
    while True:
        branch_id = memory.read_bary(bindex)
        try:
            target_id = memory.read_tary(target)
        except MemoryFault:
            outcome = (CheckResult.OUT_OF_RANGE, retries)
            break
        if branch_id == target_id:
            outcome = (CheckResult.ALLOWED, retries)
            break
        if not is_valid_id(target_id):
            outcome = (CheckResult.INVALID_TARGET, retries)
            break
        if not same_version(branch_id, target_id):
            retries += 1
            if retries > max_retries:
                if OBS.enabled:
                    _note_escalation(retries)
                raise TableIntegrityError(
                    "check transaction livelocked: version mismatch "
                    f"persisted through {retries} retries at site "
                    f"{site}", retries=retries)
            yield
            continue
        outcome = (CheckResult.ECN_MISMATCH, retries)
        break
    if OBS.enabled:
        _note_check(outcome[0], outcome[1])
    if sink is not None:
        sink.append(outcome)
    return outcome


class UpdateLock:
    """The global update lock serializing update transactions.

    Update transactions are rare, so a simple test-and-set with
    cooperative spinning (yield per failed attempt) suffices — the
    paper makes the same simplicity argument.
    """

    def __init__(self) -> None:
        self._held_by: Optional[str] = None

    @property
    def held(self) -> bool:
        return self._held_by is not None

    def owner(self) -> Optional[str]:
        """Current owner name, or None when the lock is free."""
        return self._held_by

    def set_owner(self, owner: Optional[str]) -> None:
        """Force ownership to a snapshotted value (journal rollback).

        This is the *only* sanctioned way to write ownership from
        outside the acquire/release protocol: a journal that snapshotted
        ``owner()`` before a failed operation restores it here, so an
        aborted update transaction cannot leave the lock wedged.  Any
        other caller should be using :meth:`acquire_spin`/:meth:`release`.
        """
        self._held_by = owner

    def acquire_spin(self, owner: str) -> Generator[None, None, None]:
        waited = 0
        while self._held_by is not None:
            waited += 1
            yield
        self._held_by = owner
        if OBS.enabled:
            OBS.metrics.histogram("tx.lock.wait_steps").observe(waited)

    def release(self, owner: str) -> None:
        if self._held_by != owner:
            raise RuntimeError_(
                f"update lock released by {owner!r} but held by "
                f"{self._held_by!r}")
        self._held_by = None


class UpdateTransaction:
    """One Fig. 3 update transaction, runnable as a scheduler task.

    ``new_tary`` / ``new_bary`` give the complete ECN assignment for the
    *new* CFG (existing entries are rewritten with the new version; new
    entries appear; entries absent from the new assignment are zeroed).
    ``got_updates`` is a list of ``(address, value)`` 8-byte stores
    applied between the barrier and the Bary update — the PLT/GOT
    adjustment point.
    """

    def __init__(self, tables: IdTables, lock: UpdateLock,
                 new_tary: Mapping[int, int], new_bary: Mapping[int, int],
                 got_writer: Optional[Callable[[int, int], None]] = None,
                 got_updates: Optional[List[Tuple[int, int]]] = None,
                 batch: int = 64, owner: str = "dynamic-linker") -> None:
        self.tables = tables
        self.lock = lock
        self.new_tary = dict(new_tary)
        self.new_bary = dict(new_bary)
        self.got_writer = got_writer
        self.got_updates = got_updates or []
        self.batch = max(1, batch)
        self.owner = owner
        self.completed = False

    def _barrier(self) -> Generator[None, None, None]:
        """The Tary/Bary ordering point — one atomic step.

        A hook so the fault plane can subclass this transaction and
        delay (extra yields) or drop (no yield) the barrier; the
        production transaction always yields exactly once.
        """
        yield

    def run(self) -> Generator[None, None, None]:
        tables = self.tables
        memory = tables.memory
        yield from self.lock.acquire_spin(self.owner)
        span = OBS.tracer.begin("tx.update", owner=self.owner)
        hold_steps = 0
        tary_writes = bary_writes = 0
        try:
            version = bump_version(tables.version)

            # -- updTaryTable: construct then parallel-copy ---------------
            stale = [addr for addr in tables.tary_ecns
                     if addr not in self.new_tary]
            writes = [(tary_index(addr), pack_id(ecn, version))
                      for addr, ecn in self.new_tary.items()]
            writes += [(tary_index(addr), 0) for addr in stale]
            count = 0
            for index, ident in writes:
                memory.write_tary(index, ident)
                count += 1
                tary_writes += 1
                if count % self.batch == 0:
                    hold_steps += 1
                    yield

            # -- memory write barrier (linearization point) ---------------
            for _ in self._barrier():
                hold_steps += 1
                yield

            # -- GOT updates (PLT targets), serialized by a second barrier
            if self.got_updates:
                if self.got_writer is None:
                    raise RuntimeError_("GOT updates without a writer")
                for address, value in self.got_updates:
                    self.got_writer(address, value)
                hold_steps += 1
                yield

            # -- updBaryTable ---------------------------------------------
            count = 0
            for site, ecn in self.new_bary.items():
                memory.write_bary(bary_index(site), pack_id(ecn, version))
                count += 1
                bary_writes += 1
                if count % self.batch == 0:
                    hold_steps += 1
                    yield
            # Branch sites absent from the new CFG (an unloaded module)
            # are zeroed: a stale branch ID never matches any valid
            # target ID, so orphaned code halts fail-safe.  Zeroing is
            # batched like the copy loops above (continuing the same
            # batch counter), so unloading a large module never holds
            # the scheduler for one unbounded atomic step.
            for site in tables.bary_ecns:
                if site not in self.new_bary:
                    memory.write_bary(bary_index(site), 0)
                    bary_writes += 1
                    count += 1
                    if count % self.batch == 0:
                        hold_steps += 1
                        yield

            tables.version = version
            tables.tary_ecns = dict(self.new_tary)
            tables.bary_ecns = dict(self.new_bary)
            tables.note_update()
            self.completed = True
        finally:
            self.lock.release(self.owner)
            if OBS.enabled:
                metrics = OBS.metrics
                metrics.counter("tx.updates").inc()
                metrics.counter("tables.tary_writes").inc(tary_writes)
                metrics.counter("tables.bary_writes").inc(bary_writes)
                metrics.histogram("tx.lock.hold_steps").observe(hold_steps)
            span.end(completed=self.completed, tary_writes=tary_writes,
                     bary_writes=bary_writes, hold_steps=hold_steps)


def refresh_transaction(tables: IdTables, lock: UpdateLock,
                        batch: int = 256) -> UpdateTransaction:
    """An update transaction that re-installs the current CFG.

    It changes every ID's version but preserves all ECNs — exactly the
    Fig. 6 simulation experiment ("updates the version numbers of all
    IDs in the ID tables (but preserving the ECNs)").
    """
    return UpdateTransaction(
        tables, lock,
        new_tary=dict(tables.tary_ecns),
        new_bary=dict(tables.bary_ecns),
        batch=batch,
        owner="fig6-updater",
    )


def periodic_updater(tables: IdTables, lock: UpdateLock, cycles_of,
                     interval: int, batch: int = 256,
                     stop: Optional[Callable[[], bool]] = None,
                     counter: Optional[Dict[str, int]] = None,
                     ) -> Generator[None, None, None]:
    """Scheduler task firing a refresh transaction every ``interval`` cycles.

    ``cycles_of`` is a zero-argument callable returning the observed
    cycle clock (usually the main CPU's ``cycles``); 50 Hz in the paper
    maps to one refresh per ``interval`` model cycles here.
    """
    next_at = interval
    while stop is None or not stop():
        if cycles_of() >= next_at:
            yield from refresh_transaction(tables, lock, batch=batch).run()
            if counter is not None:
                counter["updates"] = counter.get("updates", 0) + 1
            next_at += interval
        else:
            yield
