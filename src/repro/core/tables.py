"""High-level view over the Bary/Tary ID tables (paper Sec. 5.1).

The raw storage is :class:`repro.vm.memory.TableMemory`; this module
adds the MCFI semantics:

* **Tary** maps a code address to the ID of the equivalence class the
  address belongs to.  It is a dense array indexed by code address
  (identity mapping), with entries only at 4-byte-aligned addresses —
  the space optimization that motivates the alignment no-ops.
* **Bary** maps an indirect-branch *site number* to the branch's ID.
  Site numbers are assigned by the loader, which patches each branch's
  ``tload`` immediate with ``4 * site`` (the "constant Bary table
  indexes" of the paper).

Writes go through :class:`repro.core.transactions.UpdateTransaction`
during dynamic linking; the direct ``install_*`` methods here are for
initial load, before any application thread runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.core.idencoding import (
    INVALID_ID,
    is_valid_id,
    pack_id,
    unpack_id,
)
from repro.errors import RuntimeError_
from repro.vm.memory import TableMemory


def tary_index(address: int) -> int:
    """Tary byte index for a code address (identity; must be 4-aligned)."""
    if address % 4:
        raise RuntimeError_(
            f"indirect-branch target {address:#x} is not 4-byte aligned")
    return address


def bary_index(site: int) -> int:
    """Bary byte index for a branch site number."""
    return 4 * site


class IdTables:
    """Typed accessors over a :class:`TableMemory`.

    Tracks the global version number and the currently-installed ECN
    assignment so update transactions can be generated from a new CFG.
    """

    def __init__(self, tables: TableMemory) -> None:
        self.memory = tables
        self.version = 0
        #: Current ECN of every permitted target address.
        self.tary_ecns: Dict[int, int] = {}
        #: Current ECN of every branch site.
        self.bary_ecns: Dict[int, int] = {}
        #: ABA mitigation (paper Sec. 5.2): update transactions executed
        #: since the last quiescence reset.  Security is violated only
        #: if 2^14 updates complete *during one check transaction*, so
        #: the counter may be reset whenever every thread has been
        #: observed outside a check (e.g. at a system call).
        self.updates_since_reset = 0

    def note_update(self) -> None:
        from repro.core.idencoding import MAX_VERSION
        from repro.errors import RuntimeError_
        if self.updates_since_reset + 1 >= MAX_VERSION:
            raise RuntimeError_(
                "ID version space exhausted before a quiescence reset "
                "(the ABA hazard of Sec. 5.2); a reset requires every "
                "thread to pass a quiescent point")
        self.updates_since_reset += 1
        # Invalidate any fused fast paths in the dispatch plane: the
        # tables just changed under a completed update transaction.
        self.memory.generation += 1

    def aba_reset(self) -> None:
        """Reset the update counter (caller observed quiescence)."""
        self.updates_since_reset = 0

    # -- initial installation (program load, single-threaded) -------------

    def install(self, tary_ecns: Mapping[int, int],
                bary_ecns: Mapping[int, int],
                version: Optional[int] = None) -> None:
        """Install a complete ID assignment non-transactionally.

        Only valid before application threads start (initial load).
        """
        if version is not None:
            self.version = version
        for address, ecn in tary_ecns.items():
            self.memory.write_tary(tary_index(address),
                                   pack_id(ecn, self.version))
        for site, ecn in bary_ecns.items():
            self.memory.write_bary(bary_index(site),
                                   pack_id(ecn, self.version))
        self.tary_ecns = dict(tary_ecns)
        self.bary_ecns = dict(bary_ecns)

    # -- reads (used by tests, the Python-level check, and diagnostics) ---

    def target_id(self, address: int) -> int:
        return self.memory.read_tary(address)

    def branch_id(self, site: int) -> int:
        return self.memory.read_bary(bary_index(site))

    def target_ecn(self, address: int) -> Optional[int]:
        """Decoded ECN of a target address, or None if not a target."""
        ident = self.memory.read_tary(tary_index(address))
        if not is_valid_id(ident):
            return None
        return unpack_id(ident).ecn

    def permitted(self, site: int, address: int) -> bool:
        """Would a (quiescent) check transaction allow site -> address?"""
        if address % 4:
            return False
        try:
            target = self.memory.read_tary(address)
        except Exception:
            return False
        branch = self.branch_id(site)
        return is_valid_id(target) and target == branch

    # -- integrity audit (fault detection and repair) ----------------------

    def audit(self) -> Dict[str, list]:
        """Compare stored table words against the trusted assignment.

        The ``tary_ecns``/``bary_ecns`` dicts are runtime-private state
        the sandbox can never reach, so they serve as ground truth: any
        stored ID that disagrees with ``pack_id(ecn, version)`` has been
        corrupted (a fault, not an update — updates rewrite both).
        Returns the corrupted entries per table without modifying them.
        """
        expected_version = self.version
        bad_tary = []
        for address, ecn in self.tary_ecns.items():
            want = pack_id(ecn, expected_version)
            got = self.memory.read_tary(tary_index(address))
            if got != want:
                bad_tary.append((address, got, want))
        bad_bary = []
        for site, ecn in self.bary_ecns.items():
            want = pack_id(ecn, expected_version)
            got = self.memory.read_bary(bary_index(site))
            if got != want:
                bad_bary.append((site, got, want))
        return {"tary": bad_tary, "bary": bad_bary}

    def scrub(self) -> int:
        """Audit and repair: rewrite every corrupted entry in place.

        Returns the number of entries repaired.  Must only run from the
        trusted runtime while no update transaction is in flight (the
        audit compares against the *current* version).
        """
        findings = self.audit()
        for address, _, want in findings["tary"]:
            self.memory.write_tary(tary_index(address), want)
        for site, _, want in findings["bary"]:
            self.memory.write_bary(bary_index(site), want)
        return len(findings["tary"]) + len(findings["bary"])

    def sweep(self, tary_range: Optional[tuple] = None,
              site_range: Optional[tuple] = None) -> Dict[str, int]:
        """Full-band sweep: repair trusted entries **and** zero strays.

        :meth:`scrub` can only fix words the trusted assignment knows
        about; a fault that forged a plausible ID into an *untracked*
        slot (a stray) is invisible to it.  The sweep walks every
        4-aligned word of the given Tary byte range and Bary site range
        and forces each one to its only legitimate value: the packed
        trusted ID for tracked entries, ``INVALID_ID`` for everything
        else.  After a sweep the band is byte-identical to what a fresh
        rebuild from the trusted assignment would produce — the
        parity-checked scrub pass shard recovery runs before a
        quarantined shard rejoins service.

        Returns ``{"repaired": tracked words rewritten, "strays":
        untracked words zeroed}``.  Trusted-runtime only, tables
        quiescent (same contract as :meth:`scrub`).
        """
        memory = self.memory
        tary_lo, tary_hi = tary_range or (0, memory.tary_size)
        site_lo, site_hi = site_range or (0, memory.bary_entries)
        tary_lo = (tary_lo + 3) & ~3
        repaired = 0
        # Pass 1: every tracked entry holds its packed trusted ID.
        for address, ecn in self.tary_ecns.items():
            if tary_lo <= address < tary_hi:
                want = pack_id(ecn, self.version)
                if memory.read_tary(address) != want:
                    memory.write_tary(address, want)
                    repaired += 1
        for site, ecn in self.bary_ecns.items():
            if site_lo <= site < site_hi:
                want = pack_id(ecn, self.version)
                if memory.read_bary(bary_index(site)) != want:
                    memory.write_bary(bary_index(site), want)
                    repaired += 1
        # Pass 2: every *untracked* word is INVALID_ID.  The bands are
        # sparse (almost all zeros), so skip all-zero chunks at C speed
        # and word-walk only the dirty ones.
        strays = self._zero_strays(
            memory.tary, tary_lo, tary_hi & ~3,
            tracked=self.tary_ecns, write=memory.write_tary)
        strays += self._zero_strays(
            memory.bary, bary_index(site_lo), bary_index(site_hi),
            tracked={bary_index(site) for site in self.bary_ecns},
            write=memory.write_bary)
        return {"repaired": repaired, "strays": strays}

    @staticmethod
    def _zero_strays(buf: bytearray, lo: int, hi: int, tracked,
                     write) -> int:
        zeroed = 0
        chunk = 4096
        for base in range(lo, hi, chunk):
            end = min(hi, base + chunk)
            if buf[base:end].count(0) == end - base:
                continue
            for offset in range(base, end, 4):
                if buf[offset:offset + 4] == b"\x00\x00\x00\x00" or \
                        offset in tracked:
                    continue
                write(offset, INVALID_ID)
                zeroed += 1
        return zeroed

    # -- bookkeeping --------------------------------------------------------

    def clear_targets(self, addresses: Iterable[int]) -> None:
        """Zero Tary entries (e.g. when unloading a module)."""
        for address in addresses:
            self.memory.write_tary(tary_index(address), INVALID_ID)
            self.tary_ecns.pop(address, None)

    def stats(self) -> Dict[str, int]:
        ecns = set(self.tary_ecns.values())
        return {
            "targets": len(self.tary_ecns),
            "branch_sites": len(self.bary_ecns),
            "equivalence_classes": len(ecns),
            "version": self.version,
        }


class TableSnapshot:
    """Byte-exact snapshot of an :class:`IdTables` window, for rollback.

    Captures the raw Tary/Bary bytes (the whole tables by default, or a
    ``tary_range``/``site_range`` window for a shard) together with the
    bookkeeping that must stay consistent with them: the version, the
    trusted ECN assignments and the ABA update counter.

    ``rollback()`` restores everything byte-for-byte and bumps the
    :class:`~repro.vm.memory.TableMemory` write-generation stamp by
    hand, because the raw restore bypasses ``write_tary``/``write_bary``
    — any branch ID the dispatch plane's fused check transactions
    cached is stale after a rollback.

    Used by the dynamic linker's :class:`LoadJournal` (whole-table
    window) and by the table service's per-shard commit path
    (shard-band window).
    """

    def __init__(self, tables: IdTables,
                 tary_range: Optional[tuple] = None,
                 site_range: Optional[tuple] = None) -> None:
        memory = tables.memory
        self.tables = tables
        self.tary_range = tary_range or (0, memory.tary_size)
        site_range = site_range or (0, memory.bary_entries)
        self.bary_range = (bary_index(site_range[0]),
                           bary_index(site_range[1]))
        self.tary = bytes(memory.tary[self.tary_range[0]:
                                      self.tary_range[1]])
        self.bary = bytes(memory.bary[self.bary_range[0]:
                                      self.bary_range[1]])
        self.version = tables.version
        self.tary_ecns = dict(tables.tary_ecns)
        self.bary_ecns = dict(tables.bary_ecns)
        self.updates_since_reset = tables.updates_since_reset

    def rollback(self) -> None:
        tables = self.tables
        memory = tables.memory
        memory.tary[self.tary_range[0]:self.tary_range[1]] = self.tary
        memory.bary[self.bary_range[0]:self.bary_range[1]] = self.bary
        memory.generation += 1
        tables.version = self.version
        tables.tary_ecns = dict(self.tary_ecns)
        tables.bary_ecns = dict(self.bary_ecns)
        tables.updates_since_reset = self.updates_since_reset
