"""Alternative check-transaction algorithms (paper Sec. 8.1 micro-benchmark).

The paper compares its custom transaction against three classical
synchronization schemes and reports normalized check-transaction times
of MCFI 1, TML 2, RWL 29, Mutex 22.  The essential difference is the
read path:

* **MCFI** packs meta-data (version) and real data (ECN) into a single
  word, so a check is two loads and one comparison, with a retry loop
  that only spins during an update.
* **TML** (transactional mutex lock) keeps a global sequence lock; a
  reader must sample the sequence word before and after reading the
  *separate* meta and data words — roughly double the work.
* **RWL** (readers-writer lock) and **Mutex** take a lock per check;
  on x86 the LOCK-prefixed RMW dominates, here the lock acquire/release
  calls dominate.

All four expose the same interface so the micro-benchmark and the
concurrency tests treat them uniformly.  They operate on plain Python
lists rather than the VM table memory: the benchmark compares algorithm
shapes, not VM dispatch overhead.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Tuple

from repro.core.idencoding import (
    MAX_VERSION,
    is_valid_id,
    pack_id,
    same_version,
)


class CheckAlgorithm:
    """Common interface: ``check`` on the read side, ``update`` on write."""

    name = "base"

    def __init__(self, n_sites: int, n_targets: int,
                 bary_ecns: Mapping[int, int],
                 tary_ecns: Mapping[int, int]) -> None:
        self.n_sites = n_sites
        self.n_targets = n_targets
        self._bary_ecns = dict(bary_ecns)
        self._tary_ecns = dict(tary_ecns)

    def check(self, site: int, target: int) -> bool:
        raise NotImplementedError

    def update(self) -> None:
        """Re-install all IDs with a new version (a Fig. 6 refresh)."""
        raise NotImplementedError


class McfiChecker(CheckAlgorithm):
    """MCFI's single-word combined version+ECN scheme."""

    name = "MCFI"

    def __init__(self, n_sites, n_targets, bary_ecns, tary_ecns) -> None:
        super().__init__(n_sites, n_targets, bary_ecns, tary_ecns)
        self.version = 0
        self.bary: List[int] = [0] * n_sites
        self.tary: List[int] = [0] * n_targets
        self._install(self.version)

    def _install(self, version: int) -> None:
        for site, ecn in self._bary_ecns.items():
            self.bary[site] = pack_id(ecn, version)
        for target, ecn in self._tary_ecns.items():
            self.tary[target] = pack_id(ecn, version)

    def check(self, site: int, target: int) -> bool:
        bary = self.bary
        tary = self.tary
        while True:
            branch_id = bary[site]
            target_id = tary[target]
            if branch_id == target_id:
                return True
            if not is_valid_id(target_id):
                return False
            if not same_version(branch_id, target_id):
                continue  # concurrent update: retry
            return False

    def update(self) -> None:
        self.version = (self.version + 1) & MAX_VERSION
        # Tary first, then Bary (Fig. 3 ordering).
        for target, ecn in self._tary_ecns.items():
            self.tary[target] = pack_id(ecn, self.version)
        for site, ecn in self._bary_ecns.items():
            self.bary[site] = pack_id(ecn, self.version)


class TmlChecker(CheckAlgorithm):
    """TML-style sequence lock with meta-data split from real data."""

    name = "TML"

    def __init__(self, n_sites, n_targets, bary_ecns, tary_ecns) -> None:
        super().__init__(n_sites, n_targets, bary_ecns, tary_ecns)
        self.seq = 0  # even = quiescent, odd = writer active
        self.bary_ecn: List[int] = [-1] * n_sites
        self.tary_ecn: List[int] = [-1] * n_targets
        self.tary_valid: List[bool] = [False] * n_targets
        for site, ecn in bary_ecns.items():
            self.bary_ecn[site] = ecn
        for target, ecn in tary_ecns.items():
            self.tary_ecn[target] = ecn
            self.tary_valid[target] = True

    def check(self, site: int, target: int) -> bool:
        while True:
            seq_before = self.seq
            if seq_before & 1:
                continue  # writer active: retry
            branch_ecn = self.bary_ecn[site]
            target_ok = self.tary_valid[target]
            target_ecn = self.tary_ecn[target]
            if self.seq != seq_before:
                continue  # torn read: retry
            return target_ok and branch_ecn == target_ecn

    def update(self) -> None:
        self.seq += 1  # odd: lock out readers
        for target, ecn in self._tary_ecns.items():
            self.tary_ecn[target] = ecn
            self.tary_valid[target] = True
        for site, ecn in self._bary_ecns.items():
            self.bary_ecn[site] = ecn
        self.seq += 1


class _LockedTables(CheckAlgorithm):
    """Shared storage for the lock-based schemes."""

    def __init__(self, n_sites, n_targets, bary_ecns, tary_ecns) -> None:
        super().__init__(n_sites, n_targets, bary_ecns, tary_ecns)
        self.bary_ecn: List[int] = [-1] * n_sites
        self.tary_ecn: List[int] = [-2] * n_targets
        for site, ecn in bary_ecns.items():
            self.bary_ecn[site] = ecn
        for target, ecn in tary_ecns.items():
            self.tary_ecn[target] = ecn

    def _read(self, site: int, target: int) -> bool:
        return self.bary_ecn[site] == self.tary_ecn[target]

    def _write(self) -> None:
        for target, ecn in self._tary_ecns.items():
            self.tary_ecn[target] = ecn
        for site, ecn in self._bary_ecns.items():
            self.bary_ecn[site] = ecn


class RwlChecker(_LockedTables):
    """Readers-writer lock (reader-preference, counter + mutex pair).

    Each check performs two mutex round-trips (enter/exit the read
    side), modelling the two LOCK-prefixed RMWs of the paper's RWL.
    """

    name = "RWL"

    def __init__(self, n_sites, n_targets, bary_ecns, tary_ecns) -> None:
        super().__init__(n_sites, n_targets, bary_ecns, tary_ecns)
        self._count_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._readers = 0

    def check(self, site: int, target: int) -> bool:
        with self._count_lock:
            self._readers += 1
            if self._readers == 1:
                self._write_lock.acquire()
        try:
            return self._read(site, target)
        finally:
            with self._count_lock:
                self._readers -= 1
                if self._readers == 0:
                    self._write_lock.release()

    def update(self) -> None:
        with self._write_lock:
            self._write()


class MutexChecker(_LockedTables):
    """A single compare-and-swap mutex around every check."""

    name = "Mutex"

    def __init__(self, n_sites, n_targets, bary_ecns, tary_ecns) -> None:
        super().__init__(n_sites, n_targets, bary_ecns, tary_ecns)
        self._lock = threading.Lock()

    def check(self, site: int, target: int) -> bool:
        with self._lock:
            return self._read(site, target)

    def update(self) -> None:
        with self._lock:
            self._write()


ALGORITHMS = (McfiChecker, TmlChecker, RwlChecker, MutexChecker)


def make_workload(n_sites: int = 64, n_targets: int = 1024,
                  n_classes: int = 16) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Deterministic ECN assignment for the micro-benchmark."""
    bary = {site: site % n_classes for site in range(n_sites)}
    tary = {target: target % n_classes for target in range(n_targets)}
    return bary, tary
