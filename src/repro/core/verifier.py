"""The modular MCFI verifier (paper Sec. 7).

"The verifier takes an MCFI module, disassembles the module, and checks
whether indirect branches are instrumented as required, memory writes
stay in the sandbox (so that the tables are protected), and no-ops are
inserted to make indirect-branch targets aligned.  The auxiliary type
information in an MCFI module enables the complete disassembly of the
module.  The verifier removes the rewriter [from] the trusted computing
base."

Checks performed on a module (before loading):

1. **Complete disassembly** — every code range (jump tables excluded,
   per the auxiliary data ranges) decodes exactly, ending on an
   instruction boundary.
2. **No bare indirect branches** — the module contains no ``ret`` at
   all (returns are rewritten to pop/check/jmp), and every ``jmp *r`` /
   ``call *r`` is (a) through ``rcx`` and (b) immediately preceded by
   the Fig. 4 comparison (``tload rdi``/``tload rsi``/``cmp``/``jne``).
3. **Sandboxed writes** — on x64, every store's base register is
   masked by a ``movzx32`` with no intervening write to it (``rsp``-
   based stores and ``push`` excepted: the stack pointer is not
   attacker-controllable in the threat model).
4. **Alignment** — every indirect-branch target recorded in the
   auxiliary information (AT function entries, return sites, switch
   targets, setjmp resumes) is 4-byte aligned.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import EncodingError, VerificationError
from repro.isa.disasm import DecodedInstr, sweep_ranges
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.module.module import McfiModule

_STORES = (Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64)


def disassemble_module(module: McfiModule) -> List[DecodedInstr]:
    """Completely disassemble the module's code ranges (check 1)."""
    try:
        return sweep_ranges(module.code, module.base, module.code_ranges)
    except EncodingError as exc:
        raise VerificationError(
            f"{module.name}: module does not disassemble completely: {exc}"
        ) from exc


def _check_indirect_branches(instrs: List[DecodedInstr],
                             module: McfiModule) -> int:
    """Check 2.  Returns the number of verified check transactions."""
    verified = 0
    for index, decoded in enumerate(instrs):
        op = decoded.instr.op
        if op == Op.RET:
            raise VerificationError(
                f"{module.name}: bare ret (returns must be rewritten)",
                decoded.address)
        if op in (Op.JMP_R, Op.CALL_R):
            if decoded.instr.operands[0] != Reg.RCX:
                raise VerificationError(
                    f"{module.name}: indirect branch not through %rcx",
                    decoded.address)
            # Alignment no-ops may sit between the check and the branch
            # (the AlignEnd padding before an indirect call).
            cursor = index
            while cursor > 0 and instrs[cursor - 1].instr.op == Op.NOP:
                cursor -= 1
            if cursor < 4:
                raise VerificationError(
                    f"{module.name}: indirect branch without check",
                    decoded.address)
            tload_b, tload_t, compare, branch = instrs[cursor - 4:cursor]
            pattern_ok = (
                tload_b.instr.op == Op.TLOAD_RI
                and tload_b.instr.operands[0] == Reg.RDI
                and tload_t.instr.op == Op.TLOAD_RR
                and tload_t.instr.operands[0] == Reg.RSI
                and tload_t.instr.operands[1] == Reg.RCX
                and compare.instr.op == Op.CMP_RR
                and tuple(compare.instr.operands) == (Reg.RDI, Reg.RSI)
                and branch.instr.op == Op.JNE)
            if not pattern_ok:
                raise VerificationError(
                    f"{module.name}: indirect branch at "
                    f"{decoded.address:#x} lacks the check-transaction "
                    f"sequence")
            verified += 1
    return verified


def _check_sandboxed_writes(instrs: List[DecodedInstr],
                            module: McfiModule) -> None:
    """Check 3 (x64 write sandboxing)."""
    if module.arch != "x64":
        return  # x32 uses segmentation; no per-store masking required
    masked_at: Dict[int, int] = {}
    for index, decoded in enumerate(instrs):
        instr = decoded.instr
        if instr.op == Op.MOVZX32:
            masked_at[instr.operands[0]] = index
            continue
        if instr.op in _STORES:
            base = instr.operands[0]
            if base == Reg.RSP or base == Reg.RBP:
                # Frame-relative writes: rsp/rbp are not attacker-
                # controllable registers and stay in the sandbox.
                continue
            mask_index = masked_at.get(base)
            if mask_index is None or mask_index != index - 1:
                raise VerificationError(
                    f"{module.name}: unsandboxed store via "
                    f"{Reg(base)}", decoded.address)
            continue
        # Any instruction that writes a register invalidates its mask.
        if instr.operands and instr.spec.operands and \
                instr.op not in (Op.CMP_RR, Op.CMP_RI, Op.TEST_RR,
                                 Op.TEST_RI, Op.CMPW_RR, Op.TESTB1):
            masked_at.pop(instr.operands[0], None)


def _check_alignment(module: McfiModule,
                     instrs: List[DecodedInstr]) -> None:
    """Check 4: every recorded indirect-branch target is 4-aligned."""
    aux = module.aux
    targets: List[int] = []
    targets += [f.entry for f in aux.functions.values()]
    targets += [r.address for r in aux.retsites]
    targets += list(aux.setjmp_resumes)
    for site in aux.branch_sites:
        targets += list(site.targets)
    boundaries = {d.address for d in instrs}
    for address in targets:
        if address % 4:
            raise VerificationError(
                f"{module.name}: indirect-branch target not 4-byte aligned",
                address)
        if address not in boundaries and \
                module.base <= address < module.limit:
            raise VerificationError(
                f"{module.name}: target is not an instruction boundary",
                address)


def verify_module(module: McfiModule) -> Dict[str, int]:
    """Run all checks; returns statistics, raises on any failure.

    This is what removes the rewriter from the TCB: a module from an
    untrusted toolchain is accepted only if it verifies.
    """
    instrs = disassemble_module(module)
    checked_branches = _check_indirect_branches(instrs, module)
    _check_sandboxed_writes(instrs, module)
    _check_alignment(module, instrs)
    if checked_branches != len(module.aux.branch_sites):
        raise VerificationError(
            f"{module.name}: {len(module.aux.branch_sites)} declared branch "
            f"sites but {checked_branches} check transactions found")
    return {
        "instructions": len(instrs),
        "checked_branches": checked_branches,
        "targets": len(module.aux.functions) + len(module.aux.retsites),
    }
