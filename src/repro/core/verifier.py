"""The modular MCFI verifier (paper Sec. 7).

"The verifier takes an MCFI module, disassembles the module, and checks
whether indirect branches are instrumented as required, memory writes
stay in the sandbox (so that the tables are protected), and no-ops are
inserted to make indirect-branch targets aligned.  The auxiliary type
information in an MCFI module enables the complete disassembly of the
module.  The verifier removes the rewriter [from] the trusted computing
base."

Since PR 9 the checks are *proofs*, not adjacency pattern matches:
:mod:`repro.analysis.binverify` reconstructs a binary-level CFG from
the decoded instruction boundaries and runs an abstract interpreter
(the MIR worklist solver over a per-register fact lattice) that
establishes, for the reachable portion of the image:

1. **complete disassembly** of every code range (jump tables excluded
   per the auxiliary data ranges) — MCFI007 on failure;
2. **dominating check transactions** — every reachable indirect branch
   (and the absence of any bare ``ret``) is dominated by an intact
   Fig. 4 check sequence with no clobber of the checked register in
   between — MCFI005;
3. **sandboxed writes** — on x64, every reachable store's base is
   provably masked — MCFI006;
4. **target + table discipline** — direct branches land on declared
   decoded boundaries, aux targets are 4-byte aligned, and the patched
   Bary slots correspond one-to-one with the intact transactions —
   MCFI007/MCFI008.

This module stays the raising surface the loader and linker call:
:func:`verify_module` returns a
:class:`~repro.analysis.binverify.VerifyReport` (with a deprecation
shim for the old ``Dict[str, int]`` shape) and raises
:class:`~repro.errors.VerificationError` on the first diagnostic.
"""

from __future__ import annotations

from typing import List

from repro.analysis.binverify import VerifyReport, analyze_module
from repro.errors import EncodingError, VerificationError
from repro.isa.disasm import DecodedInstr, sweep_ranges
from repro.module.module import McfiModule

__all__ = ["disassemble_module", "verify_module", "VerifyReport"]


def disassemble_module(module: McfiModule) -> List[DecodedInstr]:
    """Completely disassemble the module's code ranges (check 1)."""
    try:
        return sweep_ranges(module.code, module.base, module.code_ranges)
    except EncodingError as exc:
        raise VerificationError(
            f"{module.name}: module does not disassemble completely: {exc}"
        ) from exc


def verify_module(module: McfiModule) -> VerifyReport:
    """Run the binary verifier; raise on any rejection.

    This is what removes the rewriter from the TCB: a module from an
    untrusted toolchain is accepted only if it verifies.
    """
    report = analyze_module(module)
    if not report.ok:
        raise VerificationError(f"{module.name}: {report.first_error()}")
    return report
