"""Lowering: checked TinyC AST -> MIR.

Variables live in stack slots; every expression lowers to a fresh
virtual register.  Virtual registers may be written from several basic
blocks (codegen gives each a slot), which keeps short-circuit and
conditional expressions simple — no phi nodes.

MCFI-relevant lowering decisions:

* ``switch`` statements become :class:`~repro.mir.ir.SwitchBr` (a dense
  jump table, i.e. an *intraprocedural indirect jump*) when the case
  range is dense enough, matching how LLVM compiles switches; sparse
  switches fall back to compare chains.
* ``return f(...)`` marks the call as a tail-call candidate; codegen
  turns it into a jump in x64 mode (LLVM's tail-call optimization),
  which is why the paper observes fewer equivalence classes on x86-64.
* indirect calls carry the canonical :class:`FuncSig` of the pointer —
  the auxiliary type information of the module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CodegenError
from repro.mir import ir
from repro.tinyc import ast
from repro.tinyc.typecheck import CheckedFunction, CheckedUnit, INTRINSICS
from repro.tinyc.types import (
    ArrayType,
    FloatType,
    FuncSig,
    FuncType,
    IntType,
    PointerType,
    StructType,
    Type,
    decay,
    is_pointer,
)

_PACK_BITS = __import__("struct").Struct("<d")


def _double_bits(value: float) -> int:
    return int.from_bytes(_PACK_BITS.pack(value), "little")


def _is_float(ctype: Optional[Type]) -> bool:
    return isinstance(decay(ctype) if ctype else None, FloatType)


def _mem_width(ctype: Type) -> int:
    size = decay(ctype).size
    if size in (1, 2, 4, 8):
        return size
    return 8


def _is_aggregate(ctype: Type) -> bool:
    return isinstance(ctype, (ArrayType, StructType))


def _elem_size(ctype: Type) -> int:
    """Pointee size for pointer arithmetic scaling."""
    pointee = decay(ctype).pointee
    size = pointee.size
    return size if size > 0 else 1


class FunctionLowerer:
    """Lowers one checked function to a :class:`MirFunction`."""

    def __init__(self, checked: CheckedFunction, module: "ModuleLowerer") -> None:
        self.checked = checked
        self.module = module
        self.mir = ir.MirFunction(
            name=checked.name, ftype=checked.ftype,
            params=list(checked.param_names),
            locals=dict(checked.locals), is_static=checked.is_static)
        self.current: Optional[ir.BasicBlock] = None
        self._label_counter = 0
        self._break_stack: List[str] = []
        self._continue_stack: List[str] = []

    # -- plumbing --------------------------------------------------------------

    def vreg(self) -> ir.VReg:
        self.mir.n_vregs += 1
        return self.mir.n_vregs - 1

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}.{self._label_counter}"

    def start_block(self, label: str) -> None:
        block = ir.BasicBlock(label=label)
        self.mir.blocks.append(block)
        self.current = block

    def emit(self, inst: ir.Inst) -> None:
        if self.current is None or self.current.terminated:
            # Unreachable code (e.g. after return): emit into a dead block.
            self.start_block(self.new_label("dead"))
        self.current.instrs.append(inst)

    def const(self, value: int) -> ir.VReg:
        dst = self.vreg()
        self.emit(ir.Const(dst=dst, value=value))
        return dst

    # -- driver -----------------------------------------------------------------

    def lower(self) -> ir.MirFunction:
        self.start_block("entry")
        self.lower_stmt(self.checked.body)
        if not self.current.terminated:
            self.emit(ir.Ret(value=None))
        self._prune_unreachable()
        self._mark_tail_calls()
        self.mir.validate()
        return self.mir

    def _prune_unreachable(self) -> None:
        """Drop blocks no terminator can reach (switch joins where every
        case returns, code after ``return``): they would survive into
        the binary as dead bytes otherwise."""
        succs = {}
        for block in self.mir.blocks:
            term = block.terminator
            if isinstance(term, ir.Jump):
                succs[block.label] = (term.target,)
            elif isinstance(term, ir.CondBr):
                succs[block.label] = (term.then_block, term.else_block)
            elif isinstance(term, ir.SwitchBr):
                succs[block.label] = tuple(term.targets) + (term.default,)
            else:
                succs[block.label] = ()
        reachable = {"entry"}
        frontier = ["entry"]
        while frontier:
            for succ in succs.get(frontier.pop(), ()):
                if succ not in reachable:
                    reachable.add(succ)
                    frontier.append(succ)
        self.mir.blocks = [block for block in self.mir.blocks
                           if block.label in reachable]

    def _mark_tail_calls(self) -> None:
        """Mark ``call; ret`` pairs as tail-call candidates.

        Only calls whose arguments all fit in registers qualify (no
        stack-argument cleanup may be pending when we jump).
        """
        from repro.isa.registers import ARG_REGS
        for block in self.mir.blocks:
            if len(block.instrs) < 2:
                continue
            last = block.instrs[-1]
            prev = block.instrs[-2]
            if not isinstance(last, ir.Ret):
                continue
            if isinstance(prev, (ir.Call, ir.CallInd)) and \
                    len(prev.args) <= len(ARG_REGS):
                returns_value = last.value is not None
                produces_value = prev.dst is not None
                if returns_value == produces_value and \
                        (not returns_value or last.value == prev.dst):
                    prev.tail = True

    # -- statements ----------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self.lower_stmt(inner)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._discard(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                value = self.rvalue(stmt.init)
                addr = self.vreg()
                self.emit(ir.LocalAddr(dst=addr, local=stmt.name))
                self.emit(ir.Store(addr=addr, src=value,
                                   width=_mem_width(stmt.ctype)))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.rvalue(stmt.value) if stmt.value is not None else None
            self.emit(ir.Ret(value=value))
        elif isinstance(stmt, ast.Break):
            if not self._break_stack:
                raise CodegenError("break outside loop/switch")
            self.emit(ir.Jump(target=self._break_stack[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self._continue_stack:
                raise CodegenError("continue outside loop")
            self.emit(ir.Jump(target=self._continue_stack[-1]))
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        else:
            raise CodegenError(f"cannot lower {type(stmt).__name__}")

    def _lower_if(self, stmt: ast.If) -> None:
        then_label = self.new_label("if.then")
        else_label = self.new_label("if.else") if stmt.other else None
        end_label = self.new_label("if.end")
        self.lower_cond(stmt.cond, then_label, else_label or end_label)
        self.start_block(then_label)
        self.lower_stmt(stmt.then)
        if not self.current.terminated:
            self.emit(ir.Jump(target=end_label))
        if else_label is not None:
            self.start_block(else_label)
            self.lower_stmt(stmt.other)
            if not self.current.terminated:
                self.emit(ir.Jump(target=end_label))
        self.start_block(end_label)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.new_label("while.head")
        body = self.new_label("while.body")
        end = self.new_label("while.end")
        self.emit(ir.Jump(target=head))
        self.start_block(head)
        self.lower_cond(stmt.cond, body, end)
        self.start_block(body)
        self._break_stack.append(end)
        self._continue_stack.append(head)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if not self.current.terminated:
            self.emit(ir.Jump(target=head))
        self.start_block(end)

    def _lower_do(self, stmt: ast.DoWhile) -> None:
        body = self.new_label("do.body")
        head = self.new_label("do.cond")
        end = self.new_label("do.end")
        self.emit(ir.Jump(target=body))
        self.start_block(body)
        self._break_stack.append(end)
        self._continue_stack.append(head)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if not self.current.terminated:
            self.emit(ir.Jump(target=head))
        self.start_block(head)
        self.lower_cond(stmt.cond, body, end)
        self.start_block(end)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.new_label("for.head")
        body = self.new_label("for.body")
        step = self.new_label("for.step")
        end = self.new_label("for.end")
        self.emit(ir.Jump(target=head))
        self.start_block(head)
        if stmt.cond is not None:
            self.lower_cond(stmt.cond, body, end)
        else:
            self.emit(ir.Jump(target=body))
        self.start_block(body)
        self._break_stack.append(end)
        self._continue_stack.append(step)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if not self.current.terminated:
            self.emit(ir.Jump(target=step))
        self.start_block(step)
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self.emit(ir.Jump(target=head))
        self.start_block(end)

    #: Build a jump table when the value range is at most this multiple of
    #: the case count (LLVM uses a similar density heuristic).
    _TABLE_DENSITY = 4
    _TABLE_MIN_CASES = 3

    def _lower_switch(self, stmt: ast.Switch) -> None:
        value = self.rvalue(stmt.expr)
        end = self.new_label("switch.end")
        case_labels: List[Tuple[Optional[int], str]] = []
        default_label = end
        for case in stmt.cases:
            label = self.new_label(
                "case.default" if case.value is None else
                f"case.{case.value}")
            case_labels.append((case.value, label))
            if case.value is None:
                default_label = label

        values = [v for v, _ in case_labels if v is not None]
        if len(values) >= self._TABLE_MIN_CASES:
            low, high = min(values), max(values)
            span = high - low + 1
            dense = span <= self._TABLE_DENSITY * len(values) + 8
        else:
            dense = False

        if dense:
            table: Dict[int, str] = {v: l for v, l in case_labels
                                     if v is not None}
            targets = [table.get(low + i, default_label)
                       for i in range(span)]
            self.emit(ir.SwitchBr(value=value, low=low, targets=targets,
                                  default=default_label))
        else:
            # Sparse: compare chain.
            for case_value, label in case_labels:
                if case_value is None:
                    continue
                check_next = self.new_label("case.next")
                constant = self.const(case_value)
                self.emit(ir.CondBr(op="eq", left=value, right=constant,
                                    then_block=label, else_block=check_next))
                self.start_block(check_next)
            self.emit(ir.Jump(target=default_label))

        # Case bodies fall through to the next case, as in C.
        self._break_stack.append(end)
        for index, (case, (_, label)) in enumerate(zip(stmt.cases,
                                                       case_labels)):
            self.start_block(label)
            for inner in case.stmts:
                self.lower_stmt(inner)
            if not self.current.terminated:
                if index + 1 < len(case_labels):
                    self.emit(ir.Jump(target=case_labels[index + 1][1]))
                else:
                    self.emit(ir.Jump(target=end))
        self._break_stack.pop()
        self.start_block(end)

    # -- conditions ---------------------------------------------------------------

    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                ">": "gt", ">=": "ge"}
    _CMP_UNSIGNED = {"lt": "ult", "le": "ule", "gt": "ugt", "ge": "uge"}
    _CMP_FLOAT = {"eq": "feq", "ne": "fne", "lt": "flt", "le": "fle",
                  "gt": "fgt", "ge": "fge"}

    def _cmp_op(self, op: str, left: ast.Expr, right: ast.Expr) -> str:
        mir_op = self._CMP_MAP[op]
        if _is_float(left.ctype) or _is_float(right.ctype):
            return self._CMP_FLOAT[mir_op]
        if mir_op in self._CMP_UNSIGNED and self._unsigned_cmp(left, right):
            return self._CMP_UNSIGNED[mir_op]
        return mir_op

    @staticmethod
    def _unsigned_cmp(left: ast.Expr, right: ast.Expr) -> bool:
        for side in (left, right):
            ctype = decay(side.ctype)
            if is_pointer(ctype):
                return True
            if isinstance(ctype, IntType) and not ctype.signed:
                return True
        return False

    def lower_cond(self, expr: ast.Expr, then_label: str,
                   else_label: str) -> None:
        """Lower a boolean context with fused compares and short-circuit."""
        if isinstance(expr, ast.Binary) and expr.op in self._CMP_MAP:
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            self.emit(ir.CondBr(
                op=self._cmp_op(expr.op, expr.left, expr.right),
                left=left, right=right,
                then_block=then_label, else_block=else_label))
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            middle = self.new_label("and.rhs")
            self.lower_cond(expr.left, middle, else_label)
            self.start_block(middle)
            self.lower_cond(expr.right, then_label, else_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            middle = self.new_label("or.rhs")
            self.lower_cond(expr.left, then_label, middle)
            self.start_block(middle)
            self.lower_cond(expr.right, then_label, else_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_cond(expr.operand, else_label, then_label)
            return
        value = self.rvalue(expr)
        zero = self.const(0)
        op = "fne" if _is_float(expr.ctype) else "ne"
        self.emit(ir.CondBr(op=op, left=value, right=zero,
                            then_block=then_label, else_block=else_label))

    # -- expressions -----------------------------------------------------------------

    def rvalue(self, expr: ast.Expr) -> ir.VReg:
        if isinstance(expr, ast.IntLit):
            return self.const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return self.const(_double_bits(expr.value))
        if isinstance(expr, ast.StrLit):
            dst = self.vreg()
            self.emit(ir.ConstStr(dst=dst, sid=self.module.intern_string(
                expr.value)))
            return dst
        if isinstance(expr, ast.SizeofType):
            return self.const(max(expr.query.size, 1)
                              if expr.query is not None else 8)
        if isinstance(expr, ast.Ident):
            return self._rvalue_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._rvalue_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._rvalue_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._rvalue_assign(expr)
        if isinstance(expr, ast.Cond):
            return self._rvalue_cond(expr)
        if isinstance(expr, ast.Call):
            return self._rvalue_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._load_lvalue(expr)
        if isinstance(expr, ast.Cast):
            return self._rvalue_cast(expr)
        if isinstance(expr, ast.Comma):
            self._discard(expr.left)
            return self.rvalue(expr.right)
        raise CodegenError(f"cannot lower expression {type(expr).__name__}")

    def _discard(self, expr: ast.Expr) -> None:
        """Lower an expression for effect only (statement or comma LHS).

        Calls get no filler result register — a trailing ``f();`` in a
        void function stays adjacent to the return so tail-call marking
        can fire, and a discarded void call materializes no dummy zero.
        """
        if isinstance(expr, ast.Call) and \
                expr.direct_name not in INTRINSICS:
            self._emit_call(expr)
        else:
            self.rvalue(expr)

    def _rvalue_ident(self, expr: ast.Ident) -> ir.VReg:
        if expr.binding == "func":
            dst = self.vreg()
            self.emit(ir.FuncAddr(dst=dst, name=expr.name))
            return dst
        if _is_aggregate(expr.ctype):
            return self.lvalue(expr)  # arrays/structs decay to addresses
        return self._load_lvalue(expr)

    def _load_lvalue(self, expr: ast.Expr) -> ir.VReg:
        if _is_aggregate(expr.ctype):
            return self.lvalue(expr)
        addr = self.lvalue(expr)
        dst = self.vreg()
        ctype = decay(expr.ctype)
        signed = isinstance(ctype, IntType) and ctype.signed
        self.emit(ir.Load(dst=dst, addr=addr, width=_mem_width(expr.ctype),
                          signed=signed))
        return dst

    def lvalue(self, expr: ast.Expr) -> ir.VReg:
        """Lower an lvalue to its address."""
        if isinstance(expr, ast.Ident):
            dst = self.vreg()
            if expr.binding in ("local", "param"):
                self.emit(ir.LocalAddr(dst=dst, local=expr.name))
            elif expr.binding == "global":
                self.emit(ir.GlobalAddr(dst=dst, name=expr.name))
            else:
                raise CodegenError(f"not an lvalue: function {expr.name}")
            return dst
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.rvalue(expr.operand)
        if isinstance(expr, ast.Index):
            base = self.rvalue(expr.base)
            index = self.rvalue(expr.index)
            scale = self.const(_elem_size(expr.base.ctype))
            offset = self.vreg()
            self.emit(ir.BinOp(dst=offset, op="mul", left=index, right=scale))
            addr = self.vreg()
            self.emit(ir.BinOp(dst=addr, op="add", left=base, right=offset))
            return addr
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self.rvalue(expr.base)
                struct = decay(expr.base.ctype).pointee
            else:
                base = self.lvalue(expr.base)
                struct = expr.base.ctype
            if not isinstance(struct, StructType):
                raise CodegenError("member access on non-struct")
            offset_value = struct.field_offset(expr.name)
            if offset_value is None:
                raise CodegenError(f"no field {expr.name}")
            if offset_value == 0:
                return base
            offset = self.const(offset_value)
            addr = self.vreg()
            self.emit(ir.BinOp(dst=addr, op="add", left=base, right=offset))
            return addr
        if isinstance(expr, ast.Cast):
            # Lvalue casts appear via the checker only for pointers.
            return self.lvalue(expr.operand)
        raise CodegenError(
            f"cannot take address of {type(expr).__name__}")

    def _rvalue_unary(self, expr: ast.Unary) -> ir.VReg:
        op = expr.op
        if op == "&":
            operand = expr.operand
            if isinstance(operand, ast.Ident) and operand.binding == "func":
                dst = self.vreg()
                self.emit(ir.FuncAddr(dst=dst, name=operand.name))
                return dst
            return self.lvalue(operand)
        if op == "*":
            return self._load_lvalue(expr)
        if op in ("++", "--"):
            return self._rvalue_incdec(expr)
        src = self.rvalue(expr.operand)
        dst = self.vreg()
        if op == "-":
            self.emit(ir.UnOp(dst=dst, op="fneg" if _is_float(expr.ctype)
                              else "neg", src=src))
        elif op == "~":
            self.emit(ir.UnOp(dst=dst, op="not", src=src))
        elif op == "!":
            zero = self.const(0)
            cmp_op = "feq" if _is_float(expr.operand.ctype) else "eq"
            self.emit(ir.Cmp(dst=dst, op=cmp_op, left=src, right=zero))
        else:
            raise CodegenError(f"cannot lower unary {op!r}")
        return dst

    def _rvalue_incdec(self, expr: ast.Unary) -> ir.VReg:
        target = expr.operand
        addr = self.lvalue(target)
        old = self.vreg()
        ctype = decay(target.ctype)
        width = _mem_width(target.ctype)
        signed = isinstance(ctype, IntType) and ctype.signed
        self.emit(ir.Load(dst=old, addr=addr, width=width, signed=signed))
        step = _elem_size(target.ctype) if is_pointer(ctype) else 1
        delta = self.const(step)
        new = self.vreg()
        self.emit(ir.BinOp(dst=new, op="add" if expr.op == "++" else "sub",
                           left=old, right=delta))
        self.emit(ir.Store(addr=addr, src=new, width=width))
        return old if expr.postfix else new

    _BIN_MAP = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
                "&": "and", "|": "or", "^": "xor", "<<": "shl"}
    _FLOAT_BIN = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _rvalue_binary(self, expr: ast.Binary) -> ir.VReg:
        op = expr.op
        if op in self._CMP_MAP:
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            dst = self.vreg()
            self.emit(ir.Cmp(dst=dst,
                             op=self._cmp_op(op, expr.left, expr.right),
                             left=left, right=right))
            return dst
        if op in ("&&", "||"):
            return self._rvalue_shortcircuit(expr)
        if _is_float(expr.ctype) and op in self._FLOAT_BIN:
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            dst = self.vreg()
            self.emit(ir.BinOp(dst=dst, op=self._FLOAT_BIN[op], left=left,
                               right=right))
            return dst
        if op == ">>":
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            dst = self.vreg()
            ltype = decay(expr.left.ctype)
            shift = "sar" if (isinstance(ltype, IntType) and ltype.signed) \
                else "shr"
            self.emit(ir.BinOp(dst=dst, op=shift, left=left, right=right))
            return dst
        # Pointer arithmetic scaling.
        ltype = decay(expr.left.ctype)
        rtype = decay(expr.right.ctype)
        if op in ("+", "-") and is_pointer(ltype) and not is_pointer(rtype):
            base = self.rvalue(expr.left)
            index = self.rvalue(expr.right)
            scaled = self._scale(index, _elem_size(expr.left.ctype))
            dst = self.vreg()
            self.emit(ir.BinOp(dst=dst, op=self._BIN_MAP[op], left=base,
                               right=scaled))
            return dst
        if op == "+" and is_pointer(rtype):
            base = self.rvalue(expr.right)
            index = self.rvalue(expr.left)
            scaled = self._scale(index, _elem_size(expr.right.ctype))
            dst = self.vreg()
            self.emit(ir.BinOp(dst=dst, op="add", left=base, right=scaled))
            return dst
        if op == "-" and is_pointer(ltype) and is_pointer(rtype):
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            diff = self.vreg()
            self.emit(ir.BinOp(dst=diff, op="sub", left=left, right=right))
            size = _elem_size(expr.left.ctype)
            if size == 1:
                return diff
            scale = self.const(size)
            dst = self.vreg()
            self.emit(ir.BinOp(dst=dst, op="div", left=diff, right=scale))
            return dst
        left = self.rvalue(expr.left)
        right = self.rvalue(expr.right)
        dst = self.vreg()
        self.emit(ir.BinOp(dst=dst, op=self._BIN_MAP[op], left=left,
                           right=right))
        return dst

    def _scale(self, index: ir.VReg, size: int) -> ir.VReg:
        if size == 1:
            return index
        scale = self.const(size)
        scaled = self.vreg()
        self.emit(ir.BinOp(dst=scaled, op="mul", left=index, right=scale))
        return scaled

    def _rvalue_shortcircuit(self, expr: ast.Binary) -> ir.VReg:
        result = self.vreg()
        true_label = self.new_label("bool.true")
        false_label = self.new_label("bool.false")
        end_label = self.new_label("bool.end")
        self.lower_cond(expr, true_label, false_label)
        self.start_block(true_label)
        self.emit(ir.Const(dst=result, value=1))
        self.emit(ir.Jump(target=end_label))
        self.start_block(false_label)
        self.emit(ir.Const(dst=result, value=0))
        self.emit(ir.Jump(target=end_label))
        self.start_block(end_label)
        return result

    def _rvalue_assign(self, expr: ast.Assign) -> ir.VReg:
        addr = self.lvalue(expr.target)
        width = _mem_width(expr.target.ctype)
        if expr.op == "=":
            value = self.rvalue(expr.value)
            self.emit(ir.Store(addr=addr, src=value, width=width))
            return value
        # Compound assignment: load, operate, store.
        base_op = expr.op[:-1]
        ctype = decay(expr.target.ctype)
        signed = isinstance(ctype, IntType) and ctype.signed
        old = self.vreg()
        self.emit(ir.Load(dst=old, addr=addr, width=width, signed=signed))
        rhs = self.rvalue(expr.value)
        if is_pointer(ctype) and base_op in ("+", "-"):
            rhs = self._scale(rhs, _elem_size(expr.target.ctype))
        dst = self.vreg()
        if _is_float(expr.target.ctype) and base_op in self._FLOAT_BIN:
            mir_op = self._FLOAT_BIN[base_op]
        elif base_op == ">>":
            mir_op = "sar" if signed else "shr"
        else:
            mir_op = self._BIN_MAP[base_op]
        self.emit(ir.BinOp(dst=dst, op=mir_op, left=old, right=rhs))
        self.emit(ir.Store(addr=addr, src=dst, width=width))
        return dst

    def _rvalue_cond(self, expr: ast.Cond) -> ir.VReg:
        result = self.vreg()
        then_label = self.new_label("sel.then")
        else_label = self.new_label("sel.else")
        end_label = self.new_label("sel.end")
        self.lower_cond(expr.cond, then_label, else_label)
        self.start_block(then_label)
        then_value = self.rvalue(expr.then)
        self.emit(ir.Copy(dst=result, src=then_value))
        self.emit(ir.Jump(target=end_label))
        self.start_block(else_label)
        else_value = self.rvalue(expr.other)
        self.emit(ir.Copy(dst=result, src=else_value))
        self.emit(ir.Jump(target=end_label))
        self.start_block(end_label)
        return result

    def _emit_call(self, expr: ast.Call):
        """Emit a call; returns its result vreg or None for void.

        Evaluation is strictly left-to-right, callee designator
        included: ``tab[i](f())`` must read ``i`` *before* ``f()``
        runs.  Lowering the pointer after the arguments miscompiled
        exactly that shape when an argument mutated state the callee
        expression read (corpus seeds 14/99, PR 10).
        """
        from repro.tinyc.types import VoidType
        pointer = None
        if expr.direct_name is None:
            pointer = self.rvalue(expr.callee)
        args = [self.rvalue(arg) for arg in expr.args]
        returns_value = not isinstance(expr.ctype, VoidType)
        dst = self.vreg() if returns_value else None
        if expr.direct_name is not None:
            self.emit(ir.Call(dst=dst, callee=expr.direct_name, args=args))
        else:
            self.emit(ir.CallInd(dst=dst, pointer=pointer, args=args,
                                 sig=FuncSig.of(expr.callee_type)))
        return dst

    def _rvalue_call(self, expr: ast.Call) -> ir.VReg:
        if expr.direct_name in INTRINSICS:
            return self._lower_intrinsic(expr)
        dst = self._emit_call(expr)
        if dst is None:
            dst = self.const(0)  # a void call used as a value
        return dst

    def _lower_intrinsic(self, expr: ast.Call) -> ir.VReg:
        name = expr.direct_name
        if name == "__syscall":
            args = [self.rvalue(arg) for arg in expr.args]
            while len(args) < 4:
                args.append(self.const(0))
            dst = self.vreg()
            self.emit(ir.Syscall(dst=dst, args=args[:4]))
            return dst
        if name == "setjmp":
            buf = self.rvalue(expr.args[0])
            dst = self.vreg()
            self.emit(ir.SetjmpInst(dst=dst, buf=buf))
            return dst
        if name == "longjmp":
            buf = self.rvalue(expr.args[0])
            value = self.rvalue(expr.args[1])
            self.emit(ir.LongjmpInst(buf=buf, value=value))
            return self.const(0)
        raise CodegenError(f"unknown intrinsic {name!r}")

    def _rvalue_cast(self, expr: ast.Cast) -> ir.VReg:
        source = expr.operand
        value = self.rvalue(source)
        src_type = decay(source.ctype)
        dst_type = decay(expr.target_type)
        src_float = isinstance(src_type, FloatType)
        dst_float = isinstance(dst_type, FloatType)
        if src_float and not dst_float:
            dst = self.vreg()
            self.emit(ir.FloatToInt(dst=dst, src=value))
            return dst
        if dst_float and not src_float:
            dst = self.vreg()
            self.emit(ir.IntToFloat(dst=dst, src=value))
            return dst
        if isinstance(dst_type, IntType) and dst_type.size < 8:
            return self._truncate(value, dst_type)
        return value  # pointer casts and same-width conversions

    def _truncate(self, value: ir.VReg, target: IntType) -> ir.VReg:
        """C narrowing semantics: keep the low bytes, then extend."""
        shift = self.const(64 - 8 * target.size)
        shifted = self.vreg()
        self.emit(ir.BinOp(dst=shifted, op="shl", left=value, right=shift))
        out = self.vreg()
        self.emit(ir.BinOp(dst=out, op="sar" if target.signed else "shr",
                           left=shifted, right=shift))
        return out


class ModuleLowerer:
    """Lowers a checked unit to a :class:`MirModule`."""

    def __init__(self, checked: CheckedUnit) -> None:
        self.checked = checked
        self.module = ir.MirModule(name=checked.name)
        self._string_ids: Dict[bytes, int] = {}
        self._refs: List[bytes] = []
        self._refs_seen: set = set()

    def _begin_scope(self, scope: str) -> None:
        self._refs = self.module.intern_refs.setdefault(scope, [])
        self._refs_seen = set(self._refs)

    def intern_string(self, data: bytes) -> int:
        terminated = data + b"\x00"
        if terminated not in self._refs_seen:
            self._refs_seen.add(terminated)
            self._refs.append(terminated)
        if terminated not in self._string_ids:
            sid = len(self._string_ids)
            self._string_ids[terminated] = sid
            self.module.strings[sid] = terminated
        return self._string_ids[terminated]

    def lower(self) -> ir.MirModule:
        self._begin_scope("")
        for var in self.checked.globals:
            self.module.globals[var.name] = self._lower_global(var)
        for checked_func in self.checked.functions.values():
            self._begin_scope(checked_func.name)
            lowered = FunctionLowerer(checked_func, self).lower()
            self.module.functions.append(lowered)
        return self.module

    def _lower_global(self, var: ast.GlobalVar) -> ir.GlobalData:
        size = max(var.ctype.size, 8)
        data = ir.GlobalData(name=var.name, ctype=var.ctype, size=size)
        if var.init is not None:
            self._fill_init(data, var.init, var.ctype, 0)
        return data

    def _fill_init(self, data: ir.GlobalData, init, ctype: Type,
                   offset: int) -> None:
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                stride = ctype.element.size
                for index, item in enumerate(init):
                    self._fill_init(data, item, ctype.element,
                                    offset + index * stride)
                return
            if isinstance(ctype, StructType):
                for item, (fname, ftype) in zip(init, ctype.fields):
                    field_offset = ctype.field_offset(fname)
                    self._fill_init(data, item, ftype,
                                    offset + field_offset)
                return
            raise CodegenError("brace initializer for scalar global")
        self._fill_scalar(data, init, ctype, offset)

    def _fill_scalar(self, data: ir.GlobalData, expr: ast.Expr,
                     ctype: Type, offset: int) -> None:
        expr = self._strip_casts(expr)
        width = _mem_width(ctype)
        if isinstance(expr, ast.IntLit):
            data.words.append((offset, width, expr.value))
        elif isinstance(expr, ast.FloatLit):
            data.words.append((offset, 8, _double_bits(expr.value)))
        elif isinstance(expr, ast.StrLit):
            data.relocs.append((offset, "str",
                                self.intern_string(expr.value)))
        elif isinstance(expr, ast.Ident) and expr.binding == "func":
            data.relocs.append((offset, "func", expr.name))
        elif isinstance(expr, ast.Ident) and expr.binding == "global":
            data.relocs.append((offset, "global", expr.name))
        elif isinstance(expr, ast.Unary) and expr.op == "&":
            inner = expr.operand
            if isinstance(inner, ast.Ident) and inner.binding == "global":
                data.relocs.append((offset, "global", inner.name))
            elif isinstance(inner, ast.Ident) and inner.binding == "func":
                data.relocs.append((offset, "func", inner.name))
            else:
                raise CodegenError("unsupported global initializer")
        elif isinstance(expr, ast.Unary) and expr.op == "-" and \
                isinstance(expr.operand, ast.IntLit):
            data.words.append((offset, width, -expr.operand.value))
        else:
            raise CodegenError(
                f"unsupported global initializer {type(expr).__name__}")

    @staticmethod
    def _strip_casts(expr: ast.Expr) -> ast.Expr:
        while isinstance(expr, ast.Cast):
            expr = expr.operand
        return expr


def lower_unit(checked: CheckedUnit) -> ir.MirModule:
    """Lower a checked translation unit to MIR.

    Same stack discipline as parse/check: the expression trees those
    stages accepted can be deep, so lowering raises the recursion
    limit with them and reports exhaustion as a diagnostic.
    """
    import sys
    limit = sys.getrecursionlimit()
    if limit < 20000:
        sys.setrecursionlimit(20000)
    try:
        return ModuleLowerer(checked).lower()
    except RecursionError:
        raise CodegenError("program nesting too deep") from None
    finally:
        sys.setrecursionlimit(limit)
