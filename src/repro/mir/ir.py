"""MIR: the machine-independent middle IR between TinyC and SimISA.

MIR is deliberately simple: functions are lists of basic blocks;
instructions operate on virtual registers (plain integers); variables
live in stack slots, so there are no phi nodes.  The design mirrors the
role of LLVM's machine-dependent representation in the paper's
toolchain: it is the level at which the three MCFI passes operate
(scratch-register reservation is implicit — code generation never uses
``rcx``/``rsi``/``rdi`` — and type information is threaded through call
instructions so it can be dumped as auxiliary module info).

Call sites carry their *canonical function-pointer signature*
(:class:`~repro.tinyc.types.FuncSig`); this is the type information the
CFG generator matches against address-taken function signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tinyc.types import FuncSig, FuncType, Type

VReg = int


@dataclass
class Inst:
    """Base class for MIR instructions."""


# -- values -------------------------------------------------------------------

@dataclass
class Const(Inst):
    dst: VReg
    value: int            # integers and raw double bits


@dataclass
class ConstStr(Inst):
    dst: VReg
    sid: int              # index into MirModule.strings


@dataclass
class GlobalAddr(Inst):
    dst: VReg
    name: str


@dataclass
class FuncAddr(Inst):
    """Materialize a function's address (the address-taken case)."""

    dst: VReg
    name: str


@dataclass
class LocalAddr(Inst):
    dst: VReg
    local: str


@dataclass
class Copy(Inst):
    dst: VReg
    src: VReg


# -- memory ---------------------------------------------------------------------

@dataclass
class Load(Inst):
    dst: VReg
    addr: VReg
    width: int            # 1, 2, 4 or 8
    signed: bool = False  # sign-extend after load


@dataclass
class Store(Inst):
    addr: VReg
    src: VReg
    width: int


# -- arithmetic -------------------------------------------------------------------

#: Integer binary operators understood by codegen.
INT_OPS = frozenset(["add", "sub", "mul", "div", "mod", "and", "or", "xor",
                     "shl", "shr", "sar"])
FLOAT_OPS = frozenset(["fadd", "fsub", "fmul", "fdiv"])
CMP_OPS = frozenset(["eq", "ne", "lt", "le", "gt", "ge", "ult", "ule",
                     "ugt", "uge", "feq", "fne", "flt", "fle", "fgt", "fge"])


@dataclass
class BinOp(Inst):
    dst: VReg
    op: str
    left: VReg
    right: VReg


@dataclass
class UnOp(Inst):
    dst: VReg
    op: str               # 'neg' | 'not' | 'lognot' | 'fneg'
    src: VReg


@dataclass
class Cmp(Inst):
    """Value-producing comparison (0/1)."""

    dst: VReg
    op: str
    left: VReg
    right: VReg


@dataclass
class IntToFloat(Inst):
    dst: VReg
    src: VReg


@dataclass
class FloatToInt(Inst):
    dst: VReg
    src: VReg


# -- calls ------------------------------------------------------------------------

@dataclass
class Call(Inst):
    dst: Optional[VReg]
    callee: str
    args: List[VReg]
    tail: bool = False    # candidate for tail-call optimization


@dataclass
class CallInd(Inst):
    """Indirect call through a function pointer of signature ``sig``.

    ``targets_hint`` is an optional statically proven over-approximation
    of the pointer's possible callees (function names), produced by the
    points-to pass in :mod:`repro.analysis.dataflow`.  Empty means
    unknown; a non-empty hint lets the CFG generator intersect the
    type-matched target set with the hint, splitting equivalence
    classes.  Hints never *add* targets — the generator falls back to
    pure type matching whenever the intersection would be empty.
    """

    dst: Optional[VReg]
    pointer: VReg
    args: List[VReg]
    sig: FuncSig = None   # type: ignore[assignment]
    tail: bool = False
    targets_hint: Tuple[str, ...] = ()


@dataclass
class Syscall(Inst):
    dst: VReg
    args: List[VReg]      # number + up to 3 arguments


@dataclass
class SetjmpInst(Inst):
    dst: VReg
    buf: VReg


@dataclass
class LongjmpInst(Inst):
    buf: VReg
    value: VReg


# -- terminators ----------------------------------------------------------------

@dataclass
class Jump(Inst):
    target: str


@dataclass
class CondBr(Inst):
    op: str               # a CMP_OPS member
    left: VReg
    right: VReg
    then_block: str
    else_block: str


@dataclass
class SwitchBr(Inst):
    """Dense jump-table dispatch (becomes an indirect jump)."""

    value: VReg
    low: int
    targets: List[str]    # one label per value in [low, low+len)
    default: str


@dataclass
class Ret(Inst):
    value: Optional[VReg] = None


TERMINATORS = (Jump, CondBr, SwitchBr, Ret)


@dataclass
class BasicBlock:
    label: str
    instrs: List[Inst] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Inst]:
        if self.instrs and isinstance(self.instrs[-1], TERMINATORS):
            return self.instrs[-1]
        return None

    @property
    def terminated(self) -> bool:
        return self.terminator is not None


@dataclass
class MirFunction:
    name: str
    ftype: FuncType
    params: List[str]                       # unique local names
    locals: Dict[str, Type] = field(default_factory=dict)
    blocks: List[BasicBlock] = field(default_factory=list)
    n_vregs: int = 0
    is_static: bool = False

    def block(self, label: str) -> BasicBlock:
        for candidate in self.blocks:
            if candidate.label == label:
                return candidate
        raise KeyError(label)

    def validate(self) -> None:
        """Cheap structural invariants (every block terminated, labels
        resolve); used by tests and by the pipeline in debug mode."""
        labels = {block.label for block in self.blocks}
        if len(labels) != len(self.blocks):
            raise ValueError(f"{self.name}: duplicate block labels")
        for block in self.blocks:
            if not block.terminated:
                raise ValueError(
                    f"{self.name}:{block.label} lacks a terminator")
            for inst in block.instrs[:-1]:
                if isinstance(inst, TERMINATORS):
                    raise ValueError(
                        f"{self.name}:{block.label} has a terminator "
                        f"mid-block")
            term = block.terminator
            refs: Tuple[str, ...] = ()
            if isinstance(term, Jump):
                refs = (term.target,)
            elif isinstance(term, CondBr):
                refs = (term.then_block, term.else_block)
            elif isinstance(term, SwitchBr):
                refs = tuple(term.targets) + (term.default,)
            for ref in refs:
                if ref not in labels:
                    raise ValueError(
                        f"{self.name}:{block.label} references unknown "
                        f"block {ref!r}")


@dataclass
class GlobalData:
    """One global variable's layout: scalar words plus relocations.

    ``words`` are ``(offset, width, value)`` stores into the zeroed
    global; ``relocs`` are ``(offset, kind, symbol)`` 8-byte address
    slots filled at link/load time — ``kind`` is ``'func'`` (a function
    address: the address-taken-in-data case), ``'global'`` (another
    global's address) or ``'str'`` (a string blob id).
    """

    name: str
    ctype: Type
    size: int
    words: List[Tuple[int, int, int]] = field(default_factory=list)
    relocs: List[Tuple[int, str, object]] = field(default_factory=list)


@dataclass
class MirModule:
    """All MIR functions of one translation unit plus its data."""

    name: str
    functions: List[MirFunction] = field(default_factory=list)
    globals: Dict[str, GlobalData] = field(default_factory=dict)
    #: deduplicated string literals: id -> bytes (NUL-terminated)
    strings: Dict[int, bytes] = field(default_factory=dict)
    #: per-scope ordered string references recorded during lowering
    #: ('' = global initializers, else the function name).  Replaying
    #: these lists in scope order through a fresh interner reproduces
    #: the ``strings`` numbering exactly, which is how the incremental
    #: build renumbers the string table after a single-function edit.
    intern_refs: Dict[str, List[bytes]] = field(default_factory=dict)

    def function(self, name: str) -> MirFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
