"""Code generation: MIR -> symbolic SimISA assembly.

The generated assembly is *pre-instrumentation*: every indirect control
transfer is a pseudo-item (:class:`PseudoReturn`,
:class:`PseudoIndirectCall`, :class:`PseudoIndirectJump`) that a later
pass lowers — :func:`repro.core.instrument.instrument_items` expands
them into MCFI check transactions, while
:func:`repro.core.instrument.lower_native` produces the uninstrumented
baseline the Fig. 5 overhead is measured against.

Register conventions (see :mod:`repro.isa.registers`):

* ``rax``/``rdx``/``rbx`` are the code generator's scratch registers;
* ``rcx``/``rsi``/``rdi`` are *reserved* for MCFI check transactions —
  the paper's "reserve scratch registers" LLVM pass; codegen only uses
  ``rcx`` to hold an indirect-branch target, which is exactly where the
  check sequence expects it;
* arguments in ``r8-r11``, extra arguments on the stack; result in
  ``rax``; virtual registers and locals live in the frame.

Architecture modes:

* ``x64`` performs tail-call optimization (``return f(...)`` becomes a
  jump), which reduces equivalence-class counts exactly as the paper
  observes on x86-64 (Table 3);
* ``x32`` does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CodegenError
from repro.isa.assembler import AsmInstr, Data, DataWord, Item, Label, \
    LabelRef, Mark
from repro.isa.instructions import Op
from repro.isa.registers import ARG_REGS, Reg
from repro.mir import ir
from repro.tinyc.typecheck import CheckedUnit
from repro.tinyc.types import FuncSig

# ---------------------------------------------------------------------------
# Pseudo items: indirect control transfers awaiting instrumentation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PseudoReturn:
    """A function return (x86 ``ret``), to be expanded by a CFI pass."""

    fn: str


@dataclass(frozen=True)
class PseudoIndirectCall:
    """``call *reg`` through a pointer of canonical signature ``sig``.

    ``ptargets`` carries the points-to pass's proven callee names (see
    :class:`repro.mir.ir.CallInd`); empty means no static refinement.
    """

    fn: str
    reg: Reg
    sig: FuncSig
    ptargets: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PseudoIndirectJump:
    """``jmp *reg``: a switch table, indirect tail call, or longjmp.

    ``kind`` is 'switch' (targets = case labels), 'tail' (sig set) or
    'longjmp' (targets the setjmp-resume equivalence class).
    ``ptargets`` refines 'tail' sites exactly as for indirect calls.
    """

    fn: str
    reg: Reg
    kind: str
    sig: Optional[FuncSig] = None
    targets: Tuple[str, ...] = ()
    ptargets: Tuple[str, ...] = ()


RawItem = Union[Item, PseudoReturn, PseudoIndirectCall, PseudoIndirectJump]


@dataclass
class FunctionMeta:
    """Per-function facts carried into the module's auxiliary info."""

    name: str
    sig: FuncSig
    address_taken: bool
    exported: bool
    entry_label: str = ""
    module: str = ""


@dataclass
class RawModule:
    """Codegen output for one translation unit, before instrumentation."""

    name: str
    arch: str
    items: List[RawItem]
    functions: Dict[str, FunctionMeta]
    #: global name -> GlobalData (laid out in the data region by the linker)
    globals: Dict[str, ir.GlobalData]
    #: string blob label -> bytes
    strings: Dict[str, bytes]
    #: names of functions referenced but not defined here (imports)
    imports: List[str] = field(default_factory=list)
    #: direct call edges (caller, callee, is_tail) for the call graph
    direct_calls: List[Tuple[str, str, bool]] = field(default_factory=list)
    uses_setjmp: bool = False
    #: names whose address this module takes (may include imports —
    #: taking the address of another module's function must mark it
    #: address-taken in the *merged* CFG)
    taken_names: set = field(default_factory=set)


_WIDTH_LOAD = {1: Op.LOAD8, 2: Op.LOAD16, 4: Op.LOAD32, 8: Op.LOAD64}
_WIDTH_STORE = {1: Op.STORE8, 2: Op.STORE16, 4: Op.STORE32, 8: Op.STORE64}

_INT_BINOP = {
    "add": Op.ADD_RR, "sub": Op.SUB_RR, "mul": Op.IMUL_RR,
    "div": Op.IDIV_RR, "mod": Op.IMOD_RR, "and": Op.AND_RR,
    "or": Op.OR_RR, "xor": Op.XOR_RR, "shl": Op.SHL_RR, "shr": Op.SHR_RR,
    "sar": Op.SAR_RR,
}
_FLOAT_BINOP = {"fadd": Op.FADD_RR, "fsub": Op.FSUB_RR,
                "fmul": Op.FMUL_RR, "fdiv": Op.FDIV_RR}

#: MIR compare op -> (conditional jump, float compare?, swap operands?)
_CMP_JCC = {
    "eq": (Op.JE, False, False), "ne": (Op.JNE, False, False),
    "lt": (Op.JL, False, False), "le": (Op.JLE, False, False),
    "gt": (Op.JG, False, False), "ge": (Op.JGE, False, False),
    "ult": (Op.JB, False, False), "ule": (Op.JAE, False, True),
    "ugt": (Op.JB, False, True), "uge": (Op.JAE, False, False),
    "feq": (Op.JE, True, False), "fne": (Op.JNE, True, False),
    "flt": (Op.JL, True, False), "fle": (Op.JLE, True, False),
    "fgt": (Op.JL, True, True), "fge": (Op.JLE, True, True),
}

_RAX, _RDX, _RBX, _RCX = Reg.RAX, Reg.RDX, Reg.RBX, Reg.RCX


class FunctionCodegen:
    """Emits one MIR function as symbolic assembly."""

    def __init__(self, func: ir.MirFunction, unit_name: str,
                 arch: str) -> None:
        self.func = func
        self.unit = unit_name
        self.arch = arch
        self.items: List[RawItem] = []
        self._local_offsets: Dict[str, int] = {}
        self._vreg_base = 0
        self.frame_size = 0
        self._label_counter = 0
        self.direct_calls: List[Tuple[str, str, bool]] = []
        self.referenced: set = set()
        self._emitted_tail = False
        self._layout_frame()

    # -- frame ----------------------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 0
        for name, ctype in self.func.locals.items():
            size = max(8, (ctype.size + 7) & ~7)
            offset += size
            self._local_offsets[name] = -offset
        self._vreg_base = offset
        offset += 8 * self.func.n_vregs
        self.frame_size = (offset + 15) & ~15

    def _vreg_offset(self, vreg: ir.VReg) -> int:
        return -(self._vreg_base + 8 * (vreg + 1))

    # -- emission helpers ---------------------------------------------------------

    def emit(self, op: Op, *operands) -> None:
        self.items.append(AsmInstr(op, tuple(operands)))

    def load_vreg(self, reg: Reg, vreg: ir.VReg) -> None:
        self.emit(Op.LOAD64, reg, Reg.RBP, self._vreg_offset(vreg))

    def store_vreg(self, vreg: ir.VReg, reg: Reg) -> None:
        self.emit(Op.STORE64, Reg.RBP, self._vreg_offset(vreg), reg)

    def block_label(self, block: str) -> str:
        return f"{self.func.name}.{block}"

    def fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.func.name}.{hint}{self._label_counter}"

    # -- driver -----------------------------------------------------------------

    def generate(self) -> List[RawItem]:
        func = self.func
        self.items.append(Label(func.name))
        self.items.append(Mark("func_entry", func.name))
        self.emit(Op.PUSH, Reg.RBP)
        self.emit(Op.MOV_RR, Reg.RBP, Reg.RSP)
        if self.frame_size:
            self.emit(Op.SUB_RI, Reg.RSP, self.frame_size)
        for index, pname in enumerate(func.params):
            offset = self._local_offsets[pname]
            if index < len(ARG_REGS):
                self.emit(Op.STORE64, Reg.RBP, offset, ARG_REGS[index])
            else:
                stack_offset = 16 + 8 * (index - len(ARG_REGS))
                self.emit(Op.LOAD64, _RAX, Reg.RBP, stack_offset)
                self.emit(Op.STORE64, Reg.RBP, offset, _RAX)
        if func.blocks and func.blocks[0].label != "entry":
            raise CodegenError(f"{func.name}: first block must be entry")
        self._jump_tables: List[Tuple[str, Tuple[str, ...]]] = []
        for block in func.blocks:
            self.items.append(Label(self.block_label(block.label)))
            for inst in block.instrs:
                self._emit_inst(inst)
        for table_label, targets in self._jump_tables:
            self.items.append(Mark("jt_start", table_label))
            self.items.append(Label(table_label))
            for target in targets:
                self.items.append(DataWord(LabelRef(target)))
            self.items.append(Mark("jt_end", table_label))
        return self.items

    # -- instruction selection ------------------------------------------------------

    def _emit_inst(self, inst: ir.Inst) -> None:
        handler = getattr(self, "_gen_" + type(inst).__name__.lower(), None)
        if handler is None:
            raise CodegenError(f"no codegen for {type(inst).__name__}")
        handler(inst)

    def _gen_const(self, inst: ir.Const) -> None:
        self.emit(Op.MOV_RI, _RAX, inst.value)
        self.store_vreg(inst.dst, _RAX)

    def _gen_conststr(self, inst: ir.ConstStr) -> None:
        self.emit(Op.MOV_RI, _RAX, LabelRef(f"{self.unit}.str{inst.sid}"))
        self.store_vreg(inst.dst, _RAX)

    def _gen_globaladdr(self, inst: ir.GlobalAddr) -> None:
        self.emit(Op.MOV_RI, _RAX, LabelRef(inst.name))
        self.store_vreg(inst.dst, _RAX)

    def _gen_funcaddr(self, inst: ir.FuncAddr) -> None:
        self.referenced.add(inst.name)
        self.emit(Op.MOV_RI, _RAX, LabelRef(inst.name))
        self.store_vreg(inst.dst, _RAX)

    def _gen_localaddr(self, inst: ir.LocalAddr) -> None:
        self.emit(Op.LEA, _RAX, Reg.RBP, self._local_offsets[inst.local])
        self.store_vreg(inst.dst, _RAX)

    def _gen_copy(self, inst: ir.Copy) -> None:
        self.load_vreg(_RAX, inst.src)
        self.store_vreg(inst.dst, _RAX)

    def _gen_load(self, inst: ir.Load) -> None:
        self.load_vreg(_RBX, inst.addr)
        self.emit(_WIDTH_LOAD[inst.width], _RAX, _RBX, 0)
        if inst.signed and inst.width < 8:
            shift = 64 - 8 * inst.width
            self.emit(Op.SHL_RI, _RAX, shift)
            self.emit(Op.SAR_RI, _RAX, shift)
        self.store_vreg(inst.dst, _RAX)

    def _gen_store(self, inst: ir.Store) -> None:
        self.load_vreg(_RBX, inst.addr)
        self.load_vreg(_RAX, inst.src)
        self.emit(_WIDTH_STORE[inst.width], _RBX, 0, _RAX)

    def _gen_binop(self, inst: ir.BinOp) -> None:
        self.load_vreg(_RAX, inst.left)
        self.load_vreg(_RDX, inst.right)
        opcode = _INT_BINOP.get(inst.op) or _FLOAT_BINOP.get(inst.op)
        if opcode is None:
            raise CodegenError(f"unknown binop {inst.op!r}")
        self.emit(opcode, _RAX, _RDX)
        self.store_vreg(inst.dst, _RAX)

    def _gen_unop(self, inst: ir.UnOp) -> None:
        self.load_vreg(_RAX, inst.src)
        if inst.op == "neg":
            self.emit(Op.NEG, _RAX)
        elif inst.op == "not":
            self.emit(Op.NOT, _RAX)
        elif inst.op == "fneg":
            self.emit(Op.MOV_RI, _RDX, -(1 << 63))
            self.emit(Op.XOR_RR, _RAX, _RDX)
        else:
            raise CodegenError(f"unknown unop {inst.op!r}")
        self.store_vreg(inst.dst, _RAX)

    def _gen_cmp(self, inst: ir.Cmp) -> None:
        jcc, is_float, swap = _CMP_JCC[inst.op]
        left, right = (inst.right, inst.left) if swap else (inst.left,
                                                            inst.right)
        self.load_vreg(_RAX, left)
        self.load_vreg(_RDX, right)
        self.emit(Op.FCMP_RR if is_float else Op.CMP_RR, _RAX, _RDX)
        true_label = self.fresh_label("cmp.t")
        end_label = self.fresh_label("cmp.e")
        self.emit(jcc, LabelRef(true_label))
        self.emit(Op.MOV_RI, _RAX, 0)
        self.emit(Op.JMP, LabelRef(end_label))
        self.items.append(Label(true_label))
        self.emit(Op.MOV_RI, _RAX, 1)
        self.items.append(Label(end_label))
        self.store_vreg(inst.dst, _RAX)

    def _gen_inttofloat(self, inst: ir.IntToFloat) -> None:
        self.load_vreg(_RAX, inst.src)
        self.emit(Op.CVTSI2F, _RAX)
        self.store_vreg(inst.dst, _RAX)

    def _gen_floattoint(self, inst: ir.FloatToInt) -> None:
        self.load_vreg(_RAX, inst.src)
        self.emit(Op.CVTF2SI, _RAX)
        self.store_vreg(inst.dst, _RAX)

    # -- calls ------------------------------------------------------------------

    def _marshal_args(self, args: Sequence[ir.VReg]) -> int:
        """Load register args; push stack args (reverse). Returns #pushed."""
        stack_args = args[len(ARG_REGS):]
        for vreg in reversed(stack_args):
            self.load_vreg(_RAX, vreg)
            self.emit(Op.PUSH, _RAX)
        for index, vreg in enumerate(args[:len(ARG_REGS)]):
            self.load_vreg(ARG_REGS[index], vreg)
        return len(stack_args)

    def _gen_call(self, inst: ir.Call) -> None:
        self.referenced.add(inst.callee)
        is_tail = inst.tail and self.arch == "x64"
        self.direct_calls.append((self.func.name, inst.callee, is_tail))
        if is_tail:
            self._marshal_args(inst.args)
            self._emit_epilogue_body()
            self.emit(Op.JMP, LabelRef(inst.callee))
            self._emitted_tail = True  # the trailing Ret is dead code
            return
        pushed = self._marshal_args(inst.args)
        self.emit(Op.CALL, LabelRef(inst.callee))
        self.items.append(Mark("retsite", (self.func.name, inst.callee)))
        if pushed:
            self.emit(Op.ADD_RI, Reg.RSP, 8 * pushed)
        if inst.dst is not None:
            self.store_vreg(inst.dst, _RAX)

    def _gen_callind(self, inst: ir.CallInd) -> None:
        if inst.tail and self.arch == "x64":
            self._marshal_args(inst.args)
            self.load_vreg(_RCX, inst.pointer)  # before the frame drops
            self._emit_epilogue_body()
            self.items.append(PseudoIndirectJump(
                fn=self.func.name, reg=_RCX, kind="tail", sig=inst.sig,
                ptargets=tuple(inst.targets_hint)))
            self._emitted_tail = True  # the trailing Ret is dead code
            return
        pushed = self._marshal_args(inst.args)
        self.load_vreg(_RCX, inst.pointer)
        self.items.append(PseudoIndirectCall(
            fn=self.func.name, reg=_RCX, sig=inst.sig,
            ptargets=tuple(inst.targets_hint)))
        self.items.append(Mark("retsite", (self.func.name, None)))
        if pushed:
            self.emit(Op.ADD_RI, Reg.RSP, 8 * pushed)
        if inst.dst is not None:
            self.store_vreg(inst.dst, _RAX)

    def _gen_syscall(self, inst: ir.Syscall) -> None:
        number, *args = inst.args
        self.load_vreg(_RAX, number)
        for reg, vreg in zip((Reg.R8, Reg.R9, Reg.R10), args):
            self.load_vreg(reg, vreg)
        self.emit(Op.SYSCALL)
        self.store_vreg(inst.dst, _RAX)

    def _gen_setjmpinst(self, inst: ir.SetjmpInst) -> None:
        resume = self.fresh_label("setjmp.resume")
        self.load_vreg(_RBX, inst.buf)
        self.emit(Op.MOV_RI, _RAX, LabelRef(resume))
        self.emit(Op.STORE64, _RBX, 0, _RAX)
        self.emit(Op.STORE64, _RBX, 8, Reg.RSP)
        self.emit(Op.STORE64, _RBX, 16, Reg.RBP)
        self.emit(Op.MOV_RI, _RAX, 0)
        # Fall through to the resume point; longjmp arrives with the
        # return value already in rax.
        self.items.append(Mark("setjmp_resume", resume))
        self.items.append(Label(resume))
        self.store_vreg(inst.dst, _RAX)

    def _gen_longjmpinst(self, inst: ir.LongjmpInst) -> None:
        self.load_vreg(_RBX, inst.buf)
        self.load_vreg(_RAX, inst.value)
        self.emit(Op.LOAD64, Reg.RSP, _RBX, 8)
        self.emit(Op.LOAD64, Reg.RBP, _RBX, 16)
        self.emit(Op.LOAD64, _RCX, _RBX, 0)
        self.items.append(PseudoIndirectJump(
            fn=self.func.name, reg=_RCX, kind="longjmp"))

    # -- terminators -----------------------------------------------------------------

    def _gen_jump(self, inst: ir.Jump) -> None:
        self.emit(Op.JMP, LabelRef(self.block_label(inst.target)))

    def _gen_condbr(self, inst: ir.CondBr) -> None:
        jcc, is_float, swap = _CMP_JCC[inst.op]
        left, right = (inst.right, inst.left) if swap else (inst.left,
                                                            inst.right)
        self.load_vreg(_RAX, left)
        self.load_vreg(_RDX, right)
        self.emit(Op.FCMP_RR if is_float else Op.CMP_RR, _RAX, _RDX)
        self.emit(jcc, LabelRef(self.block_label(inst.then_block)))
        self.emit(Op.JMP, LabelRef(self.block_label(inst.else_block)))

    def _gen_switchbr(self, inst: ir.SwitchBr) -> None:
        table_label = self.fresh_label("jt")
        targets = tuple(self.block_label(t) for t in inst.targets)
        default = self.block_label(inst.default)
        self.load_vreg(_RAX, inst.value)
        self.emit(Op.CMP_RI, _RAX, inst.low)
        self.emit(Op.JL, LabelRef(default))
        self.emit(Op.CMP_RI, _RAX, inst.low + len(inst.targets) - 1)
        self.emit(Op.JG, LabelRef(default))
        if inst.low:
            self.emit(Op.SUB_RI, _RAX, inst.low)
        self.emit(Op.SHL_RI, _RAX, 3)
        self.emit(Op.MOV_RI, _RBX, LabelRef(table_label))
        self.emit(Op.ADD_RR, _RBX, _RAX)
        self.emit(Op.LOAD64, _RCX, _RBX, 0)
        self._jump_tables.append((table_label, targets))
        self.items.append(PseudoIndirectJump(
            fn=self.func.name, reg=_RCX, kind="switch", targets=targets))

    def _emit_epilogue_body(self) -> None:
        self.emit(Op.MOV_RR, Reg.RSP, Reg.RBP)
        self.emit(Op.POP, Reg.RBP)

    def _gen_ret(self, inst: ir.Ret) -> None:
        if self._emitted_tail:
            # The preceding tail call already left the function; do not
            # emit an unreachable epilogue + return.
            self._emitted_tail = False
            return
        if inst.value is not None:
            self.load_vreg(_RAX, inst.value)
        self._emit_epilogue_body()
        self.items.append(PseudoReturn(fn=self.func.name))


def generate(module: ir.MirModule, checked: CheckedUnit,
             arch: str = "x64") -> RawModule:
    """Generate symbolic assembly + metadata for one translation unit."""
    if arch not in ("x64", "x32"):
        raise CodegenError(f"unknown arch {arch!r}")
    items: List[RawItem] = []
    functions: Dict[str, FunctionMeta] = {}
    direct_calls: List[Tuple[str, str, bool]] = []
    referenced: set = set()
    for func in module.functions:
        codegen = FunctionCodegen(func, module.name, arch)
        items.extend(codegen.generate())
        direct_calls.extend(codegen.direct_calls)
        referenced |= codegen.referenced
        functions[func.name] = FunctionMeta(
            name=func.name, sig=FuncSig.of(func.ftype),
            address_taken=func.name in checked.address_taken,
            exported=not func.is_static, entry_label=func.name,
            module=module.name)

    strings = {f"{module.name}.str{sid}": blob
               for sid, blob in module.strings.items()}
    # Functions referenced in global initializers are address-taken too.
    for data in module.globals.values():
        for _, kind, symbol in data.relocs:
            if kind == "func":
                referenced.add(symbol)
                checked.address_taken.add(symbol)
                if symbol in functions:
                    functions[symbol].address_taken = True

    defined = set(functions)
    imports = sorted(name for name in referenced if name not in defined)
    return RawModule(
        name=module.name, arch=arch, items=items, functions=functions,
        globals=dict(module.globals), strings=strings, imports=imports,
        direct_calls=direct_calls, uses_setjmp=checked.uses_setjmp,
        taken_names=set(checked.address_taken))
