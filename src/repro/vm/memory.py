"""Flat paged memory with page protections for the SimVM.

The address-space layout mirrors the paper's x86-64 sandbox design
(Sec. 5.1): application code and data live in the low 4GB; the ID tables
live in a *separate* table region addressed through a reserved segment
register (``%gs`` in the paper, the ``TLOAD`` instructions here), so
sandboxed application writes — which are restricted to ``[0, 4GB)`` by
``MOVZX32`` instrumentation — can never reach the tables.

Layout constants::

    [0, 0x1000)                  unmapped null page
    [CODE_BASE, CODE_LIMIT)      code region (R+X; may embed RO jump tables)
    [DATA_BASE, DATA_LIMIT)      globals + heap (R+W)
    [STACK_BASE, STACK_LIMIT)    thread stacks (R+W)
    SANDBOX_LIMIT = 4GB          upper bound for any sandboxed write

The table region is a separate :class:`TableMemory`, not part of the
flat address space: the only way application code can touch it is via
``TLOAD`` reads, exactly like ``%gs``-based addressing.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import MemoryFault

PAGE_SIZE = 0x1000
PAGE_SHIFT = 12

CODE_BASE = 0x10000
CODE_LIMIT = 0x400000          # 4 MiB of code address space
DATA_BASE = 0x1000000
DATA_LIMIT = 0x1800000         # 8 MiB of globals + heap
STACK_BASE = 0x1800000
STACK_LIMIT = 0x2000000        # 8 MiB of stacks
SANDBOX_LIMIT = 0x100000000    # 4 GiB

_MASK64 = 0xFFFFFFFFFFFFFFFF


class Memory:
    """Byte-addressable paged memory with R/W/X page protections.

    Normal accessors (``read_*``/``write_*``) enforce protections; the
    ``host_*`` accessors bypass them and model the trusted runtime
    (loader, dynamic linker) which runs outside the sandbox.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._readable: Set[int] = set()
        self._writable: Set[int] = set()
        self._executable: Set[int] = set()

    # -- mapping ----------------------------------------------------------

    def map(self, address: int, size: int, *, readable: bool = True,
            writable: bool = False, executable: bool = False) -> None:
        """Map ``[address, address + size)`` (page-rounded) with protections."""
        if address % PAGE_SIZE:
            raise MemoryFault(address, "map", "address not page aligned")
        first = address >> PAGE_SHIFT
        last = (address + size + PAGE_SIZE - 1) >> PAGE_SHIFT
        for page in range(first, last):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
            if readable:
                self._readable.add(page)
            if writable:
                self._writable.add(page)
            if executable:
                self._executable.add(page)

    def protect(self, address: int, size: int, *, readable: bool = True,
                writable: bool = False, executable: bool = False) -> None:
        """Change protections on already-mapped pages (``mprotect``)."""
        first = address >> PAGE_SHIFT
        last = (address + size + PAGE_SIZE - 1) >> PAGE_SHIFT
        for page in range(first, last):
            if page not in self._pages:
                raise MemoryFault(page << PAGE_SHIFT, "protect", "unmapped")
            for flag, group in ((readable, self._readable),
                                (writable, self._writable),
                                (executable, self._executable)):
                if flag:
                    group.add(page)
                else:
                    group.discard(page)

    def is_mapped(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._pages

    def is_writable(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._writable

    def is_executable(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._executable

    # -- checked access (application) --------------------------------------

    def read_u8(self, address: int) -> int:
        page = address >> PAGE_SHIFT
        if page not in self._readable:
            raise MemoryFault(address, "read")
        return self._pages[page][address & (PAGE_SIZE - 1)]

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self._read(address, 8), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self._read(address, 4), "little")

    def write_u8(self, address: int, value: int) -> None:
        page = address >> PAGE_SHIFT
        if page not in self._writable:
            raise MemoryFault(address, "write")
        self._pages[page][address & (PAGE_SIZE - 1)] = value & 0xFF

    def write_u32(self, address: int, value: int) -> None:
        self._write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, address: int, value: int) -> None:
        self._write(address, (value & _MASK64).to_bytes(8, "little"))

    def read_bytes(self, address: int, size: int) -> bytes:
        return self._read(address, size)

    def write_bytes(self, address: int, payload: bytes) -> None:
        self._write(address, payload)

    def fetch(self, address: int, size: int) -> bytes:
        """Read up to ``size`` bytes for instruction fetch (X required)."""
        page = address >> PAGE_SHIFT
        if page not in self._executable:
            raise MemoryFault(address, "execute")
        return self._read(address, size, check=self._executable)

    # -- unchecked access (trusted runtime) ---------------------------------

    def host_read(self, address: int, size: int) -> bytes:
        return self._read(address, size, check=None)

    def host_write(self, address: int, payload: bytes) -> None:
        self._write(address, payload, check=None)

    # -- internals ----------------------------------------------------------

    def _read(self, address: int, size: int,
              check: Set[int] | None | str = "default") -> bytes:
        check_set = self._readable if check == "default" else check
        out = bytearray()
        remaining = size
        cursor = address
        while remaining > 0:
            page = cursor >> PAGE_SHIFT
            if check_set is not None and page not in check_set:
                raise MemoryFault(cursor, "read")
            if page not in self._pages:
                raise MemoryFault(cursor, "read", "unmapped")
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            out += self._pages[page][offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def _write(self, address: int, payload: bytes,
               check: Set[int] | None | str = "default") -> None:
        check_set = self._writable if check == "default" else check
        remaining = len(payload)
        cursor = address
        index = 0
        while remaining > 0:
            page = cursor >> PAGE_SHIFT
            if check_set is not None and page not in check_set:
                raise MemoryFault(cursor, "write")
            if page not in self._pages:
                raise MemoryFault(cursor, "write", "unmapped")
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            self._pages[page][offset:offset + chunk] = \
                payload[index:index + chunk]
            cursor += chunk
            remaining -= chunk
            index += chunk


class TableMemory:
    """The MCFI ID-table region, reachable only through ``TLOAD``.

    * The **Tary** table occupies offsets ``[0, tary_size)`` and is
      indexed directly by code address (paper: the table "is an array of
      IDs indexed by code addresses"; we keep the identity mapping, so
      ``tary_size`` must cover ``CODE_LIMIT``).
    * The **Bary** table lives in a region that 32-bit sandboxed
      addresses cannot name: ``TLOAD_RI`` indexes it through a separate
      base, mirroring how the paper keeps branch-ID reads at
      loader-patched constant indexes.

    A ``TLOAD_RR`` with an index outside the Tary table faults, which
    models the segfault a real out-of-range ``%gs`` access would take —
    fail-safe, not fail-open.
    """

    def __init__(self, tary_size: int = CODE_LIMIT,
                 bary_entries: int = 65536) -> None:
        self.tary = bytearray(tary_size)
        self.bary = bytearray(4 * bary_entries)
        self.tary_size = tary_size
        self.bary_entries = bary_entries

    # Reads are what TxCheck performs; they are atomic at 4-byte
    # granularity because the scheduler interleaves whole instructions.

    def read_tary(self, index: int) -> int:
        if not 0 <= index <= self.tary_size - 4:
            raise MemoryFault(index, "tary-read", "outside Tary table")
        return int.from_bytes(self.tary[index:index + 4], "little")

    def read_bary(self, index: int) -> int:
        if not 0 <= index <= len(self.bary) - 4:
            raise MemoryFault(index, "bary-read", "outside Bary table")
        return int.from_bytes(self.bary[index:index + 4], "little")

    # Writes are privileged: only the trusted runtime (TxUpdate) calls
    # them.  Each call is one atomic 4-byte store (the paper's ``movnti``).

    def write_tary(self, index: int, ident: int) -> None:
        if index % 4:
            raise MemoryFault(index, "tary-write", "unaligned ID store")
        self.tary[index:index + 4] = (ident & 0xFFFFFFFF).to_bytes(4, "little")

    def write_bary(self, index: int, ident: int) -> None:
        if index % 4:
            raise MemoryFault(index, "bary-write", "unaligned ID store")
        self.bary[index:index + 4] = (ident & 0xFFFFFFFF).to_bytes(4, "little")
