"""Flat paged memory with page protections for the SimVM.

The address-space layout mirrors the paper's x86-64 sandbox design
(Sec. 5.1): application code and data live in the low 4GB; the ID tables
live in a *separate* table region addressed through a reserved segment
register (``%gs`` in the paper, the ``TLOAD`` instructions here), so
sandboxed application writes — which are restricted to ``[0, 4GB)`` by
``MOVZX32`` instrumentation — can never reach the tables.

Layout constants::

    [0, 0x1000)                  unmapped null page
    [CODE_BASE, CODE_LIMIT)      code region (R+X; may embed RO jump tables)
    [DATA_BASE, DATA_LIMIT)      globals + heap (R+W)
    [STACK_BASE, STACK_LIMIT)    thread stacks (R+W)
    SANDBOX_LIMIT = 4GB          upper bound for any sandboxed write

The table region is a separate :class:`TableMemory`, not part of the
flat address space: the only way application code can touch it is via
``TLOAD`` reads, exactly like ``%gs``-based addressing.
"""

from __future__ import annotations

import struct
from typing import Dict, Set

from repro.errors import MemoryFault

PAGE_SIZE = 0x1000
PAGE_SHIFT = 12

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

CODE_BASE = 0x10000
CODE_LIMIT = 0x400000          # 4 MiB of code address space
DATA_BASE = 0x1000000
DATA_LIMIT = 0x1800000         # 8 MiB of globals + heap
STACK_BASE = 0x1800000
STACK_LIMIT = 0x2000000        # 8 MiB of stacks
SANDBOX_LIMIT = 0x100000000    # 4 GiB

_MASK64 = 0xFFFFFFFFFFFFFFFF


class Memory:
    """Byte-addressable paged memory with R/W/X page protections.

    Normal accessors (``read_*``/``write_*``) enforce protections; the
    ``host_*`` accessors bypass them and model the trusted runtime
    (loader, dynamic linker) which runs outside the sandbox.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._readable: Set[int] = set()
        self._writable: Set[int] = set()
        self._executable: Set[int] = set()

    # -- mapping ----------------------------------------------------------

    def map(self, address: int, size: int, *, readable: bool = True,
            writable: bool = False, executable: bool = False) -> None:
        """Map ``[address, address + size)`` (page-rounded) with protections."""
        if address % PAGE_SIZE:
            raise MemoryFault(address, "map", "address not page aligned")
        first = address >> PAGE_SHIFT
        last = (address + size + PAGE_SIZE - 1) >> PAGE_SHIFT
        for page in range(first, last):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
            if readable:
                self._readable.add(page)
            if writable:
                self._writable.add(page)
            if executable:
                self._executable.add(page)

    def protect(self, address: int, size: int, *, readable: bool = True,
                writable: bool = False, executable: bool = False) -> None:
        """Change protections on already-mapped pages (``mprotect``)."""
        first = address >> PAGE_SHIFT
        last = (address + size + PAGE_SIZE - 1) >> PAGE_SHIFT
        for page in range(first, last):
            if page not in self._pages:
                raise MemoryFault(page << PAGE_SHIFT, "protect", "unmapped")
            for flag, group in ((readable, self._readable),
                                (writable, self._writable),
                                (executable, self._executable)):
                if flag:
                    group.add(page)
                else:
                    group.discard(page)

    def is_mapped(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._pages

    def is_writable(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._writable

    def is_executable(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._executable

    # -- checked access (application) --------------------------------------

    # The word accessors below take a no-copy fast path when the access
    # stays inside one page (the overwhelmingly common case on the VM's
    # hot load/store/stack paths) and fall back to the general
    # byte-slicing ``_read``/``_write`` only for page-straddling
    # accesses.  Fault addresses are identical on both paths.

    def read_u8(self, address: int) -> int:
        page = address >> PAGE_SHIFT
        if page not in self._readable:
            raise MemoryFault(address, "read")
        return self._pages[page][address & (PAGE_SIZE - 1)]

    def read_u16(self, address: int) -> int:
        """Atomic 16-bit read; faults before observing either byte."""
        offset = address & (PAGE_SIZE - 1)
        page = address >> PAGE_SHIFT
        if offset <= PAGE_SIZE - 2:
            if page not in self._readable:
                raise MemoryFault(address, "read")
            return _U16.unpack_from(self._pages[page], offset)[0]
        if page not in self._readable:
            raise MemoryFault(address, "read")
        high_page = page + 1
        if high_page not in self._readable:
            raise MemoryFault(address + 1, "read")
        return (self._pages[page][PAGE_SIZE - 1]
                | (self._pages[high_page][0] << 8))

    def read_u64(self, address: int) -> int:
        offset = address & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 8:
            page = address >> PAGE_SHIFT
            if page not in self._readable:
                raise MemoryFault(address, "read")
            return _U64.unpack_from(self._pages[page], offset)[0]
        return int.from_bytes(self._read(address, 8), "little")

    def read_u32(self, address: int) -> int:
        offset = address & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 4:
            page = address >> PAGE_SHIFT
            if page not in self._readable:
                raise MemoryFault(address, "read")
            return _U32.unpack_from(self._pages[page], offset)[0]
        return int.from_bytes(self._read(address, 4), "little")

    def write_u8(self, address: int, value: int) -> None:
        page = address >> PAGE_SHIFT
        if page not in self._writable:
            raise MemoryFault(address, "write")
        self._pages[page][address & (PAGE_SIZE - 1)] = value & 0xFF

    def write_u16(self, address: int, value: int) -> None:
        """Atomic 16-bit store: both byte addresses are validated
        before either byte is written, so a fault at a page boundary
        (e.g. a read-only second page) can never leave a torn,
        one-byte partial store behind."""
        offset = address & (PAGE_SIZE - 1)
        page = address >> PAGE_SHIFT
        if offset <= PAGE_SIZE - 2:
            if page not in self._writable:
                raise MemoryFault(address, "write")
            _U16.pack_into(self._pages[page], offset, value & 0xFFFF)
            return
        if page not in self._writable:
            raise MemoryFault(address, "write")
        high_page = page + 1
        if high_page not in self._writable:
            raise MemoryFault(address + 1, "write")
        self._pages[page][PAGE_SIZE - 1] = value & 0xFF
        self._pages[high_page][0] = (value >> 8) & 0xFF

    def write_u32(self, address: int, value: int) -> None:
        offset = address & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 4:
            page = address >> PAGE_SHIFT
            if page not in self._writable:
                raise MemoryFault(address, "write")
            _U32.pack_into(self._pages[page], offset, value & 0xFFFFFFFF)
            return
        self._write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, address: int, value: int) -> None:
        offset = address & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 8:
            page = address >> PAGE_SHIFT
            if page not in self._writable:
                raise MemoryFault(address, "write")
            _U64.pack_into(self._pages[page], offset, value & _MASK64)
            return
        self._write(address, (value & _MASK64).to_bytes(8, "little"))

    def read_bytes(self, address: int, size: int) -> bytes:
        return self._read(address, size)

    def write_bytes(self, address: int, payload: bytes) -> None:
        self._write(address, payload)

    def fetch(self, address: int, size: int) -> bytes:
        """Read up to ``size`` bytes for instruction fetch (X required)."""
        page = address >> PAGE_SHIFT
        if page not in self._executable:
            raise MemoryFault(address, "execute")
        return self._read(address, size, check=self._executable)

    # -- unchecked access (trusted runtime) ---------------------------------

    def host_read(self, address: int, size: int) -> bytes:
        return self._read(address, size, check=None)

    def host_write(self, address: int, payload: bytes) -> None:
        self._write(address, payload, check=None)

    # -- internals ----------------------------------------------------------

    def _read(self, address: int, size: int,
              check: Set[int] | None | str = "default") -> bytes:
        check_set = self._readable if check == "default" else check
        out = bytearray()
        remaining = size
        cursor = address
        while remaining > 0:
            page = cursor >> PAGE_SHIFT
            if check_set is not None and page not in check_set:
                raise MemoryFault(cursor, "read")
            if page not in self._pages:
                raise MemoryFault(cursor, "read", "unmapped")
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            out += self._pages[page][offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def _write(self, address: int, payload: bytes,
               check: Set[int] | None | str = "default") -> None:
        check_set = self._writable if check == "default" else check
        # Page-straddling stores validate every page up front so a
        # protection fault on a later page cannot leave a torn partial
        # write (one VM instruction is one atomic store).  The fault
        # address matches the lazy path: the first offending byte.
        if payload and (address + len(payload) - 1) >> PAGE_SHIFT != \
                address >> PAGE_SHIFT:
            first = address >> PAGE_SHIFT
            last = (address + len(payload) - 1) >> PAGE_SHIFT
            for page in range(first, last + 1):
                bad = max(address, page << PAGE_SHIFT)
                if check_set is not None and page not in check_set:
                    raise MemoryFault(bad, "write")
                if page not in self._pages:
                    raise MemoryFault(bad, "write", "unmapped")
        remaining = len(payload)
        cursor = address
        index = 0
        while remaining > 0:
            page = cursor >> PAGE_SHIFT
            if check_set is not None and page not in check_set:
                raise MemoryFault(cursor, "write")
            if page not in self._pages:
                raise MemoryFault(cursor, "write", "unmapped")
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            self._pages[page][offset:offset + chunk] = \
                payload[index:index + chunk]
            cursor += chunk
            remaining -= chunk
            index += chunk


class TableMemory:
    """The MCFI ID-table region, reachable only through ``TLOAD``.

    * The **Tary** table occupies offsets ``[0, tary_size)`` and is
      indexed directly by code address (paper: the table "is an array of
      IDs indexed by code addresses"; we keep the identity mapping, so
      ``tary_size`` must cover ``CODE_LIMIT``).
    * The **Bary** table lives in a region that 32-bit sandboxed
      addresses cannot name: ``TLOAD_RI`` indexes it through a separate
      base, mirroring how the paper keeps branch-ID reads at
      loader-patched constant indexes.

    A ``TLOAD_RR`` with an index outside the Tary table faults, which
    models the segfault a real out-of-range ``%gs`` access would take —
    fail-safe, not fail-open.
    """

    def __init__(self, tary_size: int = CODE_LIMIT,
                 bary_entries: int = 65536) -> None:
        self.tary = bytearray(tary_size)
        self.bary = bytearray(4 * bary_entries)
        self.tary_size = tary_size
        self.bary_entries = bary_entries
        #: Monotonic write-generation stamp.  Every privileged table
        #: store bumps it, and so do bulk restores (journal rollback)
        #: and :meth:`repro.core.tables.IdTables.note_update`.  The
        #: dispatch plane's fused check transactions compare it to
        #: decide whether a cached branch-ID read is still current —
        #: any update transaction therefore invalidates fused fast
        #: paths (see :mod:`repro.vm.dispatch`).
        self.generation = 0

    # Reads are what TxCheck performs; they are atomic at 4-byte
    # granularity because the scheduler interleaves whole instructions.

    def read_tary(self, index: int) -> int:
        if not 0 <= index <= self.tary_size - 4:
            raise MemoryFault(index, "tary-read", "outside Tary table")
        return int.from_bytes(self.tary[index:index + 4], "little")

    def read_bary(self, index: int) -> int:
        if not 0 <= index <= len(self.bary) - 4:
            raise MemoryFault(index, "bary-read", "outside Bary table")
        return int.from_bytes(self.bary[index:index + 4], "little")

    # Writes are privileged: only the trusted runtime (TxUpdate) calls
    # them.  Each call is one atomic 4-byte store (the paper's ``movnti``).

    def write_tary(self, index: int, ident: int) -> None:
        if index % 4:
            raise MemoryFault(index, "tary-write", "unaligned ID store")
        self.tary[index:index + 4] = (ident & 0xFFFFFFFF).to_bytes(4, "little")
        self.generation += 1

    def write_bary(self, index: int, ident: int) -> None:
        if index % 4:
            raise MemoryFault(index, "bary-write", "unaligned ID store")
        self.bary[index:index + 4] = (ident & 0xFFFFFFFF).to_bytes(4, "little")
        self.generation += 1
