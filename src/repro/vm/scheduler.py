"""Deterministic interleaving scheduler for SimVM threads.

The paper's key concurrency challenge — one thread executing check
transactions while another runs an update transaction — is reproduced
here with a seeded, deterministic scheduler.  Tasks are either CPU
threads (one instruction per step) or Python generators (the trusted
runtime's update transactions and the concurrent attacker perform one
atomic action per ``yield``).

Determinism makes every interleaving replayable from its seed, which the
property-based linearizability tests exploit: instead of hoping a race
fires on real hardware, we enumerate seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Mapping, Optional

from repro.errors import CfiViolation, MemoryFault, \
    RuntimeError_, VMError
from repro.vm.cpu import CPU, ProgramExit, ThreadExit


class Task:
    """A schedulable unit: one atomic action per :meth:`step`."""

    name = "task"
    alive = True

    def step(self) -> None:
        raise NotImplementedError


class CpuTask(Task):
    """A SimVM hardware thread; one step executes ``burst`` instructions.

    ``burst`` of 1 gives maximal interleaving (for race-condition tests);
    larger bursts model coarser time slices for performance runs.
    """

    def __init__(self, cpu: CPU, name: str = "cpu", burst: int = 1) -> None:
        self.cpu = cpu
        self.name = name
        self.burst = burst
        self.alive = True

    def step(self) -> None:
        try:
            for _ in range(self.burst):
                self.cpu.step()
        except ThreadExit:
            self.alive = False


class GeneratorTask(Task):
    """Wraps a generator; each ``yield`` boundary is one atomic step.

    Used for the trusted runtime's update transactions (each yield is at
    most one table-write batch) and the concurrent attacker (each yield
    is one memory corruption).
    """

    def __init__(self, generator: Generator[None, None, None],
                 name: str = "gen") -> None:
        self.generator = generator
        self.name = name
        self.alive = True

    def step(self) -> None:
        try:
            next(self.generator)
        except StopIteration:
            self.alive = False


@dataclass
class Outcome:
    """Result of a scheduler run."""

    exit_code: Optional[int] = None
    violation: Optional[CfiViolation] = None
    fault: Optional[Exception] = None
    ticks: int = 0
    faulting_task: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.violation is None and self.fault is None

    def describe(self) -> str:
        if self.violation is not None:
            return f"CFI violation: {self.violation}"
        if self.fault is not None:
            return f"fault in {self.faulting_task}: {self.fault}"
        return f"exit({self.exit_code})"


class Scheduler:
    """Seeded random interleaving of tasks.

    The program terminates when: the main thread's program calls exit
    (``ProgramExit``), a CFI check halts (``CfiViolation``), a memory
    fault occurs, or ``max_ticks`` is exceeded (``VMError``).
    """

    def __init__(self, seed: int = 0,
                 weights: Optional[Mapping[str, float]] = None) -> None:
        """``weights`` biases task selection by task name (default 1.0
        each).  The fault plane uses this for adversarial
        interleavings: weighting an updater or attacker far above the
        victim thread concentrates scheduling on the windows where a
        race could admit a forged edge.  Selection stays seeded and
        fully deterministic."""
        self._rng = random.Random(seed)
        self.tasks: List[Task] = []
        self.weights = dict(weights) if weights else None
        #: Live tick counter, updated as :meth:`run` executes so tasks
        #: can read a logical clock mid-run (the table service stamps
        #: request submit/complete times with it).  Deterministic: it
        #: advances exactly once per scheduled step.
        self.ticks = 0

    def _pick(self, live: List[Task]) -> Task:
        if len(live) == 1:
            return live[0]
        if not self.weights:
            return live[self._rng.randrange(len(live))]
        totals = [max(0.0, self.weights.get(t.name, 1.0)) for t in live]
        total = sum(totals)
        if total <= 0.0:
            return live[self._rng.randrange(len(live))]
        point = self._rng.random() * total
        for task, weight in zip(live, totals):
            point -= weight
            if point < 0:
                return task
        return live[-1]

    def add(self, task: Task) -> Task:
        self.tasks.append(task)
        return task

    def add_cpu(self, cpu: CPU, name: str = "cpu", burst: int = 1) -> CpuTask:
        return self.add(CpuTask(cpu, name=name, burst=burst))  # type: ignore[return-value]

    def add_generator(self, generator: Generator[None, None, None],
                      name: str = "gen") -> GeneratorTask:
        return self.add(GeneratorTask(generator, name=name))  # type: ignore[return-value]

    def run(self, max_ticks: int = 10_000_000) -> Outcome:
        outcome = Outcome()
        self.ticks = 0
        while self.ticks < max_ticks:
            live = [t for t in self.tasks if t.alive]
            if not live:
                break
            task = self._pick(live)
            try:
                task.step()
            except ProgramExit as program_exit:
                outcome.exit_code = program_exit.code
                break
            except CfiViolation as violation:
                outcome.violation = violation
                outcome.faulting_task = task.name
                break
            except (MemoryFault, RuntimeError_) as fault:
                outcome.fault = fault
                outcome.faulting_task = task.name
                break
            self.ticks += 1
        else:
            raise VMError(f"scheduler exceeded {max_ticks} ticks")
        outcome.ticks = self.ticks
        return outcome
