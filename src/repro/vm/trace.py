"""Execution tracing and dynamic policy-conformance checking.

Two facilities built on a step-hook around :class:`~repro.vm.cpu.CPU`:

* :class:`BranchTracer` records every control transfer (kind, source,
  target) — the raw material for coverage-style analyses and debugging.
* :class:`ConformanceChecker` asserts, for every *indirect* transfer a
  hardened program actually performs, that the generated CFG permits it
  (``Cfg.permits``).  This is the ground-truth link between the two
  halves of the system: the instruction-level enforcement (check
  transactions against ID tables) and the declarative policy (the
  type-matching CFG).  If instrumentation, table installation, and CFG
  generation agree, a legal run produces zero conformance errors; any
  divergence is a bug in one of them, not in the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.generator import Cfg
from repro.isa.instructions import Op
from repro.vm.cpu import CPU

_INDIRECT = (int(Op.RET), int(Op.JMP_R), int(Op.CALL_R))
_BRANCHES = _INDIRECT + (int(Op.CALL), int(Op.JMP))


@dataclass(frozen=True)
class BranchEvent:
    """One executed control transfer."""

    kind: str          # 'ret' | 'jmp*' | 'call*' | 'call' | 'jmp'
    source: int        # address of the branch instruction
    target: int        # where control actually went


_KIND = {int(Op.RET): "ret", int(Op.JMP_R): "jmp*",
         int(Op.CALL_R): "call*", int(Op.CALL): "call",
         int(Op.JMP): "jmp"}


class BranchTracer:
    """Wraps a CPU's step to record executed branches.

    ``indirect_only`` keeps the trace small for long runs.  The hook
    costs one icache probe per instruction; use only in tests/tools.
    """

    def __init__(self, cpu: CPU, indirect_only: bool = True,
                 limit: int = 1_000_000) -> None:
        self.cpu = cpu
        self.events: List[BranchEvent] = []
        self.indirect_only = indirect_only
        self.limit = limit
        # Remember whether the CPU already carried an instance-level
        # step hook: detach() must restore that exact state.  Leaving
        # a stray instance attribute behind would permanently force
        # run() off the basic-block fast path (it detects hooks via
        # ``"step" in cpu.__dict__``).
        self._had_instance_step = "step" in cpu.__dict__
        self._original_step = cpu.step
        cpu.step = self._traced_step  # type: ignore[method-assign]

    def _traced_step(self) -> None:
        cpu = self.cpu
        rip = cpu.rip
        entry = cpu.icache.get(rip)
        if entry is None:
            self._original_step()
            # the fetch populated the cache; re-inspect for the record
            entry = cpu.icache.get(rip)
            if entry is None:
                return
            op = entry[0]
            if self._wanted(op) and len(self.events) < self.limit:
                self.events.append(BranchEvent(_KIND[op], rip, cpu.rip))
            return
        op = entry[0]
        self._original_step()
        if self._wanted(op) and len(self.events) < self.limit:
            self.events.append(BranchEvent(_KIND[op], rip, cpu.rip))

    def _wanted(self, op: int) -> bool:
        return op in (_INDIRECT if self.indirect_only else _BRANCHES)

    def detach(self) -> None:
        if self._had_instance_step:
            self.cpu.step = self._original_step  # type: ignore[method-assign]
        else:
            # Drop our hook entirely so the class method shows through
            # again and run() may resume block dispatch.
            try:
                del self.cpu.step
            except AttributeError:
                pass

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


class ConformanceChecker:
    """Checks every executed indirect transfer against a :class:`Cfg`.

    Requires the loader's site numbering to recover which branch site a
    given ``jmp *%rcx`` belongs to; since the check transaction embeds
    the Bary index right before the branch, we instead check the
    *address-level* policy: the target must be a permitted target of
    *some* class, and — when ``site_of`` is provided — of the branch's
    own class.
    """

    def __init__(self, cpu: CPU, cfg: Cfg,
                 site_of: Optional[Dict[int, int]] = None) -> None:
        self.cfg = cfg
        self.site_of = site_of or {}
        self.violations: List[BranchEvent] = []
        self.checked = 0
        self.tracer = BranchTracer(cpu, indirect_only=True)

    def verify_trace(self) -> int:
        """Validate all recorded events; returns how many were checked."""
        tary = self.cfg.tary_ecns
        for event in self.tracer.events:
            self.checked += 1
            if event.target not in tary:
                self.violations.append(event)
                continue
            site = self.site_of.get(event.source)
            if site is not None and not self.cfg.permits(site,
                                                         event.target):
                self.violations.append(event)
        return self.checked

    @property
    def conformant(self) -> bool:
        return not self.violations


def site_map(module) -> Dict[int, int]:
    """Map each indirect-branch *instruction address* to its site number.

    Reconstructed by disassembling the module: the ``tload rdi, imm``
    of each check transaction names the site (``imm = 4 * site`` after
    loader patching; pre-patching the module's ``bary_slots`` give the
    same association), and the following ``jmp*``/``call*`` is the
    branch instruction.
    """
    from repro.isa.disasm import sweep_ranges
    instrs = sweep_ranges(module.code, module.base, module.code_ranges)
    offsets_to_site = {offset: site
                       for site, offset in module.bary_slots.items()}
    out: Dict[int, int] = {}
    current_site: Optional[int] = None
    for decoded in instrs:
        if decoded.instr.op == Op.TLOAD_RI:
            # the imm field sits right after opcode+reg bytes
            field_offset = decoded.address - module.base + 2
            site = offsets_to_site.get(field_offset)
            if site is not None:
                current_site = site
        elif decoded.instr.op in (Op.JMP_R, Op.CALL_R):
            if current_site is not None:
                out[decoded.address] = current_site
    return out
