"""The SimVM CPU: a deterministic SimISA interpreter with a cycle model.

Each :class:`CPU` is one hardware thread.  Threads share a
:class:`~repro.vm.memory.Memory`, a
:class:`~repro.vm.memory.TableMemory` and a decoded-instruction cache;
each has its own registers, flags and stack.

Determinism and atomicity
-------------------------
One ``step()`` executes exactly one instruction, and the scheduler
interleaves whole steps, so every memory and table access is atomic at
instruction granularity — the same atomicity the paper gets from 4-byte
aligned ID loads/stores on x86.

Dispatch
--------
``step()`` executes through the :mod:`repro.vm.dispatch` plane: each
decoded instruction is specialized once into a closure and cached, so
the historic ``if/elif`` chain is gone from the hot path.  The chain
survives verbatim as :meth:`CPU.step_reference` — the executable
semantics spec that conformance tests diff the dispatch plane against.
Single-threaded ``run()`` additionally executes whole decoded basic
blocks (and fused check transactions) from the shared
:class:`~repro.vm.dispatch.DispatchCache`; the scheduler always goes
through ``step()``, preserving per-instruction interleaving.

Flags
-----
Unlike x86, only the compare/test family sets flags (``cmp``, ``test``,
``cmpw``, ``testb1``, ``fcmp``).  Generated code always pairs a compare
with its conditional jump, so this deviation is unobservable.

Cycle model
-----------
``cycles`` accumulates each instruction's static cost (see
:data:`repro.isa.instructions.SPECS`).  Only *relative* cycle counts are
meaningful; Fig. 5/6 overheads are ratios of instrumented to native
cycles on identical inputs.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    CfiViolation,
    EncodingError,
    InvalidInstruction,
    MemoryFault,
    VMError,
)
from repro.isa.encoding import decode
from repro.isa.instructions import MAX_INSTRUCTION_LENGTH, Op
from repro.isa.registers import Reg
from repro.obs import OBS
from repro.vm.dispatch import (
    MAX_BLOCK_ADVANCE,
    DispatchCache,
    build_block,
    compile_entry,
)
from repro.vm.memory import Memory, PAGE_SIZE, TableMemory

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK32 = 0xFFFFFFFF
_SIGN64 = 1 << 63

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


class ProgramExit(Exception):
    """Raised by the exit syscall; carries the process exit code."""

    def __init__(self, code: int) -> None:
        self.code = code
        super().__init__(f"program exited with code {code}")


class ThreadExit(Exception):
    """Raised by the thread-exit syscall; terminates one thread only."""


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN64 else value


def _float_of(bits: int) -> float:
    return _PACK_D.unpack(_PACK_Q.pack(bits & _MASK64))[0]


def _bits_of(value: float) -> int:
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


class CPU:
    """One SimVM hardware thread."""

    def __init__(self, memory: Memory, tables: TableMemory,
                 syscall_handler: Optional[Callable[["CPU"], None]] = None,
                 icache: Optional[Dict[int, Tuple[int, Tuple[int, ...], int, int]]] = None,
                 thread_id: int = 0,
                 dispatch_cache: Optional[DispatchCache] = None) -> None:
        self.memory = memory
        self.tables = tables
        self.syscall_handler = syscall_handler
        self.icache = icache if icache is not None else {}
        #: Compiled-closure and decoded-block caches; shared across the
        #: CPUs of one address space exactly like the icache, and
        #: invalidated alongside it by the dynamic linker.
        self.dispatch_cache = (dispatch_cache if dispatch_cache is not None
                               else DispatchCache())
        self.ccache = self.dispatch_cache.closures
        self.thread_id = thread_id
        self.regs = [0] * 16
        self.rip = 0
        self.zf = False
        self.lt = False
        self.ltu = False
        self.cycles = 0
        self.instructions = 0
        #: check-transaction attempts: one per Bary-table read (the
        #: TLOAD_RI that opens a Try block), so retries count again
        self.tx_checks = 0
        #: set when the current instruction raised during fetch/decode,
        #: i.e. *before* any counter was charged; ``run()`` uses it to
        #: report the retired-instruction count exactly.
        self._decode_fault = False

    # -- fetch --------------------------------------------------------------

    def _fetch_decode(self, address: int) -> Tuple[int, Tuple[int, ...], int, int]:
        window = bytearray()
        cursor = address
        while len(window) < MAX_INSTRUCTION_LENGTH:
            if not self.memory.is_executable(cursor):
                if not window:
                    raise MemoryFault(address, "execute")
                break
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(MAX_INSTRUCTION_LENGTH - len(window),
                        PAGE_SIZE - offset)
            window += self.memory.host_read(cursor, chunk)
            cursor += chunk
        try:
            instr, length = decode(bytes(window))
        except EncodingError as exc:
            raise InvalidInstruction(
                f"undecodable bytes at {address:#x}: {exc}") from exc
        entry = (int(instr.op), instr.operands, length, instr.cost)
        self.icache[address] = entry
        return entry

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one instruction at ``rip``.

        Dispatch is closure-driven: the decoded instruction is
        specialized once by :func:`repro.vm.dispatch.compile_entry` and
        cached, then every later execution is a single dict probe plus
        a call.  Architectural semantics are bit-identical to
        :meth:`step_reference`.
        """
        rip = self.rip
        fn = self.ccache.get(rip)
        if fn is None:
            entry = self.icache.get(rip)
            if entry is None:
                try:
                    entry = self._fetch_decode(rip)
                except BaseException:
                    self._decode_fault = True
                    raise
            fn = compile_entry(entry, rip)
            self.ccache[rip] = fn
        self.rip = fn(self)

    def step_reference(self) -> None:
        """Execute one instruction via the original ``if/elif`` chain.

        This is the executable semantics spec: the dispatch plane must
        match it bit-for-bit on every architectural observable, and the
        conformance tests (and ``bench_vm_dispatch.py --conformance``)
        diff the two.  Force a CPU onto it with
        ``cpu.step = cpu.step_reference`` — an instance-level ``step``
        also makes ``run()`` take the per-instruction path.
        """
        rip = self.rip
        entry = self.icache.get(rip)
        if entry is None:
            entry = self._fetch_decode(rip)
        op, ops, length, cost = entry
        self.cycles += cost
        self.instructions += 1
        regs = self.regs
        next_rip = rip + length

        if op == Op.MOV_RR:
            regs[ops[0]] = regs[ops[1]]
        elif op == Op.MOV_RI:
            regs[ops[0]] = ops[1] & _MASK64
        elif op == Op.LOAD64:
            regs[ops[0]] = self.memory.read_u64(
                (regs[ops[1]] + ops[2]) & _MASK64)
        elif op == Op.STORE64:
            self.memory.write_u64((regs[ops[0]] + ops[1]) & _MASK64,
                                  regs[ops[2]])
        elif op == Op.ADD_RR:
            regs[ops[0]] = (regs[ops[0]] + regs[ops[1]]) & _MASK64
        elif op == Op.ADD_RI:
            regs[ops[0]] = (regs[ops[0]] + ops[1]) & _MASK64
        elif op == Op.SUB_RR:
            regs[ops[0]] = (regs[ops[0]] - regs[ops[1]]) & _MASK64
        elif op == Op.SUB_RI:
            regs[ops[0]] = (regs[ops[0]] - ops[1]) & _MASK64
        elif op == Op.CMP_RR:
            self._compare(regs[ops[0]], regs[ops[1]])
        elif op == Op.CMP_RI:
            self._compare(regs[ops[0]], ops[1] & _MASK64)
        elif op == Op.JE:
            if self.zf:
                next_rip += ops[0]
        elif op == Op.JNE:
            if not self.zf:
                next_rip += ops[0]
        elif op == Op.JL:
            if self.lt:
                next_rip += ops[0]
        elif op == Op.JLE:
            if self.lt or self.zf:
                next_rip += ops[0]
        elif op == Op.JG:
            if not (self.lt or self.zf):
                next_rip += ops[0]
        elif op == Op.JGE:
            if not self.lt:
                next_rip += ops[0]
        elif op == Op.JB:
            if self.ltu:
                next_rip += ops[0]
        elif op == Op.JAE:
            if not self.ltu:
                next_rip += ops[0]
        elif op == Op.JMP:
            next_rip += ops[0]
        elif op == Op.PUSH:
            rsp = (regs[Reg.RSP] - 8) & _MASK64
            self.memory.write_u64(rsp, regs[ops[0]])
            regs[Reg.RSP] = rsp
        elif op == Op.POP:
            rsp = regs[Reg.RSP]
            regs[ops[0]] = self.memory.read_u64(rsp)
            regs[Reg.RSP] = (rsp + 8) & _MASK64
        elif op == Op.CALL:
            rsp = (regs[Reg.RSP] - 8) & _MASK64
            self.memory.write_u64(rsp, next_rip)
            regs[Reg.RSP] = rsp
            next_rip += ops[0]
        elif op == Op.CALL_R:
            rsp = (regs[Reg.RSP] - 8) & _MASK64
            self.memory.write_u64(rsp, next_rip)
            regs[Reg.RSP] = rsp
            next_rip = regs[ops[0]]
        elif op == Op.RET:
            rsp = regs[Reg.RSP]
            next_rip = self.memory.read_u64(rsp)
            regs[Reg.RSP] = (rsp + 8) & _MASK64
        elif op == Op.JMP_R:
            next_rip = regs[ops[0]]
        elif op == Op.TLOAD_RI:
            self.tx_checks += 1
            regs[ops[0]] = self.tables.read_bary(ops[1])
        elif op == Op.TLOAD_RR:
            regs[ops[0]] = self.tables.read_tary(regs[ops[1]])
        elif op == Op.MOVZX32:
            regs[ops[0]] &= _MASK32
        elif op == Op.TESTB1:
            self.zf = (regs[ops[0]] & 1) == 0
        elif op == Op.CMPW_RR:
            self.zf = (regs[ops[0]] & 0xFFFF) == (regs[ops[1]] & 0xFFFF)
        elif op == Op.LEA:
            regs[ops[0]] = (regs[ops[1]] + ops[2]) & _MASK64
        elif op == Op.LOAD8:
            regs[ops[0]] = self.memory.read_u8(
                (regs[ops[1]] + ops[2]) & _MASK64)
        elif op == Op.LOAD32:
            regs[ops[0]] = self.memory.read_u32(
                (regs[ops[1]] + ops[2]) & _MASK64)
        elif op == Op.STORE8:
            self.memory.write_u8((regs[ops[0]] + ops[1]) & _MASK64,
                                 regs[ops[2]])
        elif op == Op.STORE32:
            self.memory.write_u32((regs[ops[0]] + ops[1]) & _MASK64,
                                  regs[ops[2]])
        elif op == Op.LOAD16:
            regs[ops[0]] = self.memory.read_u16(
                (regs[ops[1]] + ops[2]) & _MASK64)
        elif op == Op.STORE16:
            # One atomic store: write_u16 validates both byte
            # addresses before mutating, so a page-boundary fault can
            # never leave a torn one-byte partial write.
            self.memory.write_u16((regs[ops[0]] + ops[1]) & _MASK64,
                                  regs[ops[2]])
        elif op == Op.SAR_RI:
            regs[ops[0]] = (_signed(regs[ops[0]]) >> (ops[1] & 63)) & _MASK64
        elif op == Op.SAR_RR:
            regs[ops[0]] = (_signed(regs[ops[0]]) >>
                            (regs[ops[1]] & 63)) & _MASK64
        elif op == Op.IMUL_RR:
            regs[ops[0]] = (_signed(regs[ops[0]]) *
                            _signed(regs[ops[1]])) & _MASK64
        elif op == Op.IDIV_RR:
            regs[ops[0]] = self._divide(regs[ops[0]], regs[ops[1]], mod=False)
        elif op == Op.IMOD_RR:
            regs[ops[0]] = self._divide(regs[ops[0]], regs[ops[1]], mod=True)
        elif op == Op.AND_RR:
            regs[ops[0]] &= regs[ops[1]]
        elif op == Op.AND_RI:
            regs[ops[0]] &= ops[1] & _MASK64
        elif op == Op.OR_RR:
            regs[ops[0]] |= regs[ops[1]]
        elif op == Op.OR_RI:
            regs[ops[0]] = (regs[ops[0]] | ops[1]) & _MASK64
        elif op == Op.XOR_RR:
            regs[ops[0]] ^= regs[ops[1]]
        elif op == Op.XOR_RI:
            regs[ops[0]] = (regs[ops[0]] ^ ops[1]) & _MASK64
        elif op == Op.SHL_RI:
            regs[ops[0]] = (regs[ops[0]] << (ops[1] & 63)) & _MASK64
        elif op == Op.SHR_RI:
            regs[ops[0]] >>= (ops[1] & 63)
        elif op == Op.SHL_RR:
            regs[ops[0]] = (regs[ops[0]] << (regs[ops[1]] & 63)) & _MASK64
        elif op == Op.SHR_RR:
            regs[ops[0]] >>= (regs[ops[1]] & 63)
        elif op == Op.NEG:
            regs[ops[0]] = (-regs[ops[0]]) & _MASK64
        elif op == Op.NOT:
            regs[ops[0]] ^= _MASK64
        elif op == Op.TEST_RR:
            self.zf = (regs[ops[0]] & regs[ops[1]]) == 0
        elif op == Op.TEST_RI:
            self.zf = (regs[ops[0]] & ops[1] & _MASK64) == 0
        elif op == Op.NOP:
            pass
        elif op == Op.HLT:
            self._cfi_halt(rip)
        elif op == Op.SYSCALL:
            self.rip = next_rip  # handler may change rip (e.g. longjmp)
            if self.syscall_handler is None:
                raise VMError(f"syscall at {rip:#x} with no handler")
            self.syscall_handler(self)
            return
        elif op == Op.FADD_RR:
            regs[ops[0]] = _bits_of(_float_of(regs[ops[0]]) +
                                    _float_of(regs[ops[1]]))
        elif op == Op.FSUB_RR:
            regs[ops[0]] = _bits_of(_float_of(regs[ops[0]]) -
                                    _float_of(regs[ops[1]]))
        elif op == Op.FMUL_RR:
            regs[ops[0]] = _bits_of(_float_of(regs[ops[0]]) *
                                    _float_of(regs[ops[1]]))
        elif op == Op.FDIV_RR:
            divisor = _float_of(regs[ops[1]])
            if divisor == 0.0:
                raise VMError(f"float division by zero at {rip:#x}")
            regs[ops[0]] = _bits_of(_float_of(regs[ops[0]]) / divisor)
        elif op == Op.FCMP_RR:
            left = _float_of(regs[ops[0]])
            right = _float_of(regs[ops[1]])
            if left != left or right != right:
                # Unordered (NaN operand): x86 ucomisd sets ZF=CF=1 and
                # SF=OF=0, so je/jb/jbe observe "equal/below" and
                # jl/jg observe "not less/not greater".
                self.zf = True
                self.lt = False
                self.ltu = True
            else:
                self.zf = left == right
                self.lt = self.ltu = left < right
        elif op == Op.CVTSI2F:
            regs[ops[0]] = _bits_of(float(_signed(regs[ops[0]])))
        elif op == Op.CVTF2SI:
            regs[ops[0]] = int(_float_of(regs[ops[0]])) & _MASK64
        else:  # pragma: no cover - SPECS and this chain are kept in sync
            raise InvalidInstruction(f"unimplemented opcode {op:#x}")
        self.rip = next_rip

    def run(self, max_steps: int = 0) -> int:
        """Run until the program exits; return its exit code.

        ``max_steps`` of 0 means no limit.  A limit guards tests against
        runaway programs (raises :class:`VMError` when exceeded).
        CFI violations and memory faults propagate as exceptions.

        Single-threaded execution takes the basic-block fast path:
        straight-line runs execute as one loop over cached closures
        without re-entering ``step()``, and recognized check
        transactions execute as one fused macro-op (see
        :mod:`repro.vm.dispatch`).  If an instance-level ``step`` hook
        is installed (a :class:`~repro.vm.trace.BranchTracer`, or
        ``cpu.step = cpu.step_reference``), execution stays strictly
        per-instruction through the hook.  Either way the architectural
        observables are identical.

        Observability is recorded once per call (a ``vm.run`` span and
        instruction/cycle counters), never per step — the dispatch loop
        stays untouched.
        """
        cycles_before = self.cycles
        instructions_before = self.instructions
        blocks_before = self.dispatch_cache.blocks_built
        fused_before = self.dispatch_cache.fused_sites
        self._decode_fault = False
        limit_error = False
        span = OBS.tracer.begin("vm.run", thread=self.thread_id)
        try:
            if "step" in self.__dict__:
                step = self.step
                executed = 0
                while True:
                    step()
                    executed += 1
                    if max_steps and executed >= max_steps:
                        limit_error = True
                        raise VMError(f"exceeded step limit of {max_steps}")
            blocks = self.dispatch_cache.blocks
            # With a step limit, finish the last stretch per-instruction
            # so the limit check lands on the exact instruction the
            # reference interpreter would raise at.
            threshold = max_steps - MAX_BLOCK_ADVANCE if max_steps else 0
            while True:
                if max_steps and (self.instructions -
                                  instructions_before) >= threshold:
                    step = self.step
                    while True:
                        step()
                        if (self.instructions -
                                instructions_before) >= max_steps:
                            limit_error = True
                            raise VMError(
                                f"exceeded step limit of {max_steps}")
                rip = self.rip
                block = blocks.get(rip)
                if block is None:
                    block = build_block(self, rip)
                self.rip = block.execute(self)
        except ProgramExit as program_exit:
            return program_exit.code
        finally:
            # ``executed`` counts *retired* steps, exactly like the
            # seed's per-step loop: an instruction that charged its
            # counters but then raised (including the exiting syscall)
            # is not retired; one that failed to even decode charged
            # nothing and is likewise excluded.
            executed = self.instructions - instructions_before
            if executed and not limit_error and not self._decode_fault:
                executed -= 1
            if OBS.enabled:
                metrics = OBS.metrics
                metrics.counter("vm.runs").inc()
                metrics.counter("vm.instructions").inc(executed)
                metrics.counter("vm.cycles").inc(
                    self.cycles - cycles_before)
                built = self.dispatch_cache.blocks_built - blocks_before
                fused = self.dispatch_cache.fused_sites - fused_before
                if built:
                    metrics.counter("vm.dispatch.blocks_built").inc(built)
                if fused:
                    metrics.counter("vm.dispatch.fused_sites").inc(fused)
            span.end(instructions=executed,
                     cycles=self.cycles - cycles_before)

    # -- helpers --------------------------------------------------------

    def _compare(self, left: int, right: int) -> None:
        self.zf = left == right
        self.lt = _signed(left) < _signed(right)
        self.ltu = left < right

    @staticmethod
    def _divide(dividend: int, divisor: int, mod: bool) -> int:
        sd = _signed(dividend)
        sr = _signed(divisor)
        if sr == 0:
            raise VMError("integer division by zero")
        quotient = abs(sd) // abs(sr)
        if (sd < 0) != (sr < 0):
            quotient = -quotient
        if mod:
            return (sd - quotient * sr) & _MASK64
        return quotient & _MASK64

    def _cfi_halt(self, rip: int) -> None:
        """Translate the check transaction's ``hlt`` into a CFI violation."""
        target = self.regs[Reg.RCX]
        target_id = self.regs[Reg.RSI]
        if target_id & 1 == 0:
            reason = ("invalid target ID: destination is not a permitted "
                      "indirect-branch target (or is unaligned)")
        else:
            reason = "equivalence-class mismatch between branch and target"
        raise CfiViolation(rip, target, reason)

    def snapshot(self) -> dict:
        """Return a debugging snapshot of the architectural state."""
        return {
            "rip": self.rip,
            "regs": {str(Reg(i)): self.regs[i] for i in range(16)},
            "flags": {"zf": self.zf, "lt": self.lt, "ltu": self.ltu},
            "cycles": self.cycles,
            "instructions": self.instructions,
        }
