"""The CFI concurrent-attacker model (Sec. 4, threat model).

The attacker is "a separate thread running in parallel with user
threads" that "can read and write any memory (subject to memory page
protection)" but cannot directly modify another thread's registers.

Attackers here are generator tasks for the scheduler: each ``yield``
boundary is one atomic corruption, so the attacker can strike *between
any two instructions* of the victim — exactly the paper's model.  The
canned strategies below implement the classic control-flow hijacks the
evaluation discusses: return-address smashing (ROP entry point) and
function-pointer overwrites (return-to-libc / jump-to-execve).
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional, Tuple

from repro.errors import MemoryFault
from repro.vm.cpu import CPU
from repro.vm.memory import Memory


def write_word_attacker(memory: Memory, address: int, value: int,
                        repeat: bool = True) -> Generator[None, None, None]:
    """Persistently write ``value`` at ``address`` (one write per step).

    With ``repeat`` the attacker keeps re-corrupting the slot, defeating
    time-of-check-to-time-of-use defenses that re-read memory (this is
    why MCFI's return instrumentation pops the address into a register
    *before* checking, rather than checking the stack slot).
    """
    while True:
        try:
            memory.write_u64(address, value)
        except MemoryFault:
            pass  # page not (yet) writable; the attacker keeps trying
        yield
        if not repeat:
            return


def stack_smash_attacker(cpu: CPU, payload: int, depth_words: int = 8,
                         ) -> Generator[None, None, None]:
    """Overwrite return-address candidates near the victim's stack top.

    Scans a small window above ``rsp`` each step and replaces every
    word that looks like a code address with ``payload``.  This models
    a stack-smashing write primitive racing the victim.
    """
    from repro.vm.memory import CODE_BASE, CODE_LIMIT

    memory = cpu.memory
    while True:
        rsp = cpu.regs[4]  # Reg.RSP
        for slot in range(depth_words):
            address = rsp + 8 * slot
            try:
                word = memory.read_u64(address)
            except MemoryFault:
                continue
            if CODE_BASE <= word < CODE_LIMIT:
                try:
                    memory.write_u64(address, payload)
                except MemoryFault:
                    pass
        yield


def conditional_attacker(memory: Memory,
                         trigger: Callable[[], bool],
                         writes: Iterable[Tuple[int, int]],
                         ) -> Generator[None, None, None]:
    """Wait for ``trigger()`` then perform ``(address, value)`` writes.

    Useful for attacks that must fire in a specific program phase, e.g.
    corrupting a function pointer after it has been initialized but
    before it is called.
    """
    while not trigger():
        yield
    for address, value in writes:
        try:
            memory.write_u64(address, value)
        except MemoryFault:
            pass
        yield


def table_tamper_attacker(tables, forged_id: int, index: int,
                          sink: Optional[list] = None,
                          ) -> Generator[None, None, "AttackReport"]:
    """Attempt to corrupt the ID tables directly, and report.

    The tables live outside the sandboxed address space, so application
    threads (and therefore the in-sandbox attacker) have *no* store
    instruction that can reach them.  The attacker observes one
    scheduler step and produces an :class:`AttackReport`: ``blocked``
    when the targeted entry still holds its original value, and
    ``hijacked`` when the forged ID landed (only possible for a
    privileged writer — a table-protection regression).  The report is
    the generator's return value and, since scheduler tasks discard
    return values, is also appended to ``sink`` when given.
    """
    before = tables.read_tary(index)
    yield
    after = tables.read_tary(index)
    hijacked = after != before and after == forged_id
    report = AttackReport(
        name="table-tamper", hijacked=hijacked, blocked=not hijacked,
        detail=(f"tary[{index}] forged to {after:#x}" if hijacked else
                f"tary[{index}] intact ({after:#x})"))
    if sink is not None:
        sink.append(report)
    return report


class AttackReport:
    """Outcome summary used by the security benchmarks."""

    KIND = "attack"

    def __init__(self, name: str, hijacked: bool, blocked: bool,
                 detail: str = "") -> None:
        self.name = name
        self.hijacked = hijacked
        self.blocked = blocked
        self.detail = detail

    def to_dict(self) -> dict:
        return {"name": self.name, "hijacked": self.hijacked,
                "blocked": self.blocked, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "AttackReport":
        return cls(name=data["name"], hijacked=data["hijacked"],
                   blocked=data["blocked"], detail=data.get("detail", ""))

    def __repr__(self) -> str:
        status = "BLOCKED" if self.blocked else (
            "HIJACKED" if self.hijacked else "NO-EFFECT")
        return f"<AttackReport {self.name}: {status} {self.detail}>"
