"""SimVM: deterministic virtual machine executing SimISA.

Provides paged memory with protections, the separate MCFI table region,
a cycle-counting CPU interpreter, a seeded interleaving scheduler for
multithreaded runs, the syscall ABI and the concurrent-attacker model.
"""

from repro.vm.memory import (
    CODE_BASE,
    CODE_LIMIT,
    DATA_BASE,
    DATA_LIMIT,
    PAGE_SIZE,
    SANDBOX_LIMIT,
    STACK_BASE,
    STACK_LIMIT,
    Memory,
    TableMemory,
)
from repro.vm.cpu import CPU, ProgramExit, ThreadExit
from repro.vm.scheduler import (
    CpuTask,
    GeneratorTask,
    Outcome,
    Scheduler,
    Task,
)
from repro.vm import syscalls
from repro.vm import attacker

__all__ = [
    "CODE_BASE", "CODE_LIMIT", "DATA_BASE", "DATA_LIMIT", "PAGE_SIZE",
    "SANDBOX_LIMIT", "STACK_BASE", "STACK_LIMIT", "Memory", "TableMemory",
    "CPU", "ProgramExit", "ThreadExit",
    "CpuTask", "GeneratorTask", "Outcome", "Scheduler", "Task",
    "syscalls", "attacker",
]
