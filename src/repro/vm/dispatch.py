"""Table-driven fast-path dispatch plane for the SimVM.

The seed interpreter executed every instruction by walking one long
``if/elif`` chain in :meth:`~repro.vm.cpu.CPU.step`; by PR 5 that chain
had become the dominant wall-clock cost of every Fig. 5/6 benchmark and
fault campaign.  This module replaces it with three layers, none of
which changes a single architectural observable (``cycles``,
``instructions``, ``tx_checks``, traces and ``RunResult`` payloads are
bit-identical to the reference interpreter, which survives as
:meth:`CPU.step_reference` for conformance checking):

1. **Per-opcode compilers** (:data:`COMPILERS`, built once at import).
   Each opcode has a compiler that specializes one decoded instruction
   into a closure ``fn(cpu) -> next_rip`` with its operands, cost and
   fall-through address captured as locals — the operand tuple is never
   re-indexed and no opcode comparison happens at execution time.
   ``CPU.step()`` executes exactly one closure, so scheduler
   interleaving keeps instruction-granularity atomicity.

2. **A decoded basic-block cache** (:class:`DispatchCache`), layered on
   the per-instruction icache.  ``CPU.run()`` (the single-threaded fast
   path) executes whole straight-line runs as one Python loop over the
   block's closures without re-entering ``step()`` or re-probing any
   per-instruction cache.  Faults anywhere in a block restore the exact
   per-instruction architectural state (``rip`` at the faulting
   instruction; counters include it) before propagating.

3. **Superinstruction fusion** of the verifier-recognized check
   transaction (``TLOAD_RI``/``TLOAD_RR``/``CMP``/``JNE``/``JMP_R``,
   the Fig. 4 Try block) into one fused macro-op.  The fused op caches
   the branch-ID load behind a generation stamp
   (:attr:`repro.vm.memory.TableMemory.generation`): every privileged
   table store — in particular every
   :class:`~repro.core.transactions.UpdateTransaction`, via
   ``write_tary``/``write_bary`` and ``IdTables.note_update()`` —
   bumps the stamp and thereby invalidates the fused fast path, which
   then re-reads the Bary entry.  ``tx_checks`` still counts one check
   per attempt, exactly like the unfused ``TLOAD_RI``.

Code-region invalidation mirrors the icache: the dynamic linker's
unload/rollback paths call :meth:`DispatchCache.invalidate_range`
whenever they drop decoded icache entries, so re-mapping or
JIT-installing code at a previously executed address can never execute
stale closures or blocks.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InvalidInstruction, MemoryFault, VMError
from repro.isa.instructions import BLOCK_TERMINATORS, Op

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK32 = 0xFFFFFFFF
_SIGN64 = 1 << 63
_TWO64 = 1 << 64

_RSP = 4  # Reg.RSP; a plain int so closures avoid the enum lookup

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


def _signed(value: int) -> int:
    return value - _TWO64 if value & _SIGN64 else value


def _float_of(bits: int) -> float:
    return _PACK_D.unpack(_PACK_Q.pack(bits & _MASK64))[0]


def _bits_of(value: float) -> int:
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def _divide(dividend: int, divisor: int, mod: bool) -> int:
    sd = _signed(dividend)
    sr = _signed(divisor)
    if sr == 0:
        raise VMError("integer division by zero")
    quotient = abs(sd) // abs(sr)
    if (sd < 0) != (sr < 0):
        quotient = -quotient
    if mod:
        return (sd - quotient * sr) & _MASK64
    return quotient & _MASK64


# ---------------------------------------------------------------------------
# Per-opcode compilers
# ---------------------------------------------------------------------------
#
# Every compiler returns a closure ``fn(cpu) -> next_rip`` implementing
# exactly one instruction with the reference interpreter's semantics:
# cost and instruction count are charged *before* the body (so a
# faulting instruction is included in the counters, as in the
# reference), and ``rip`` is never written — ``step()`` stores the
# returned value, and the block executor repairs ``rip`` on faults.

_Closure = Callable[[object], int]
_Compiler = Callable[[Tuple[int, ...], int, int, int], _Closure]

COMPILERS: List[Optional[_Compiler]] = [None] * 0x100


def _op(opcode: Op):
    def register(builder: _Compiler) -> _Compiler:
        COMPILERS[int(opcode)] = builder
        return builder
    return register


@_op(Op.NOP)
def _c_nop(ops, rip, nxt, cost):
    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        return nxt
    return fn


@_op(Op.HLT)
def _c_hlt(ops, rip, nxt, cost):
    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu._cfi_halt(rip)
    return fn


@_op(Op.SYSCALL)
def _c_syscall(ops, rip, nxt, cost):
    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.rip = nxt  # handler may change rip (e.g. longjmp)
        handler = cpu.syscall_handler
        if handler is None:
            raise VMError(f"syscall at {rip:#x} with no handler")
        handler(cpu)
        return cpu.rip
    return fn


@_op(Op.MOV_RR)
def _c_mov_rr(ops, rip, nxt, cost):
    d, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = regs[s]
        return nxt
    return fn


@_op(Op.MOV_RI)
def _c_mov_ri(ops, rip, nxt, cost):
    d = ops[0]
    value = ops[1] & _MASK64

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.regs[d] = value
        return nxt
    return fn


@_op(Op.MOVZX32)
def _c_movzx32(ops, rip, nxt, cost):
    d = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.regs[d] &= _MASK32
        return nxt
    return fn


@_op(Op.LEA)
def _c_lea(ops, rip, nxt, cost):
    d, b, disp = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = (regs[b] + disp) & _MASK64
        return nxt
    return fn


def _binop_rr(opcode, expr):
    """Register-register ALU compilers share one template."""
    def builder(ops, rip, nxt, cost):
        d, s = ops

        def fn(cpu):
            cpu.cycles += cost
            cpu.instructions += 1
            regs = cpu.regs
            regs[d] = expr(regs[d], regs[s])
            return nxt
        return fn
    COMPILERS[int(opcode)] = builder


_binop_rr(Op.ADD_RR, lambda a, b: (a + b) & _MASK64)
_binop_rr(Op.SUB_RR, lambda a, b: (a - b) & _MASK64)
_binop_rr(Op.IMUL_RR, lambda a, b: (_signed(a) * _signed(b)) & _MASK64)
_binop_rr(Op.AND_RR, lambda a, b: a & b)
_binop_rr(Op.OR_RR, lambda a, b: a | b)
_binop_rr(Op.XOR_RR, lambda a, b: a ^ b)
_binop_rr(Op.SHL_RR, lambda a, b: (a << (b & 63)) & _MASK64)
_binop_rr(Op.SHR_RR, lambda a, b: a >> (b & 63))
_binop_rr(Op.SAR_RR, lambda a, b: (_signed(a) >> (b & 63)) & _MASK64)
_binop_rr(Op.IDIV_RR, lambda a, b: _divide(a, b, mod=False))
_binop_rr(Op.IMOD_RR, lambda a, b: _divide(a, b, mod=True))


def _binop_ri(opcode, expr):
    """Register-immediate ALU compilers: the immediate is pre-bound."""
    def builder(ops, rip, nxt, cost):
        d, imm = ops

        def fn(cpu):
            cpu.cycles += cost
            cpu.instructions += 1
            regs = cpu.regs
            regs[d] = expr(regs[d], imm)
            return nxt
        return fn
    COMPILERS[int(opcode)] = builder


_binop_ri(Op.ADD_RI, lambda a, imm: (a + imm) & _MASK64)
_binop_ri(Op.SUB_RI, lambda a, imm: (a - imm) & _MASK64)
_binop_ri(Op.AND_RI, lambda a, imm: a & (imm & _MASK64))
_binop_ri(Op.OR_RI, lambda a, imm: (a | imm) & _MASK64)
_binop_ri(Op.XOR_RI, lambda a, imm: (a ^ imm) & _MASK64)
_binop_ri(Op.SHL_RI, lambda a, imm: (a << (imm & 63)) & _MASK64)
_binop_ri(Op.SHR_RI, lambda a, imm: a >> (imm & 63))
_binop_ri(Op.SAR_RI, lambda a, imm: (_signed(a) >> (imm & 63)) & _MASK64)


@_op(Op.NEG)
def _c_neg(ops, rip, nxt, cost):
    d = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = (-regs[d]) & _MASK64
        return nxt
    return fn


@_op(Op.NOT)
def _c_not(ops, rip, nxt, cost):
    d = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.regs[d] ^= _MASK64
        return nxt
    return fn


@_op(Op.CMP_RR)
def _c_cmp_rr(ops, rip, nxt, cost):
    a, b = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        left = regs[a]
        right = regs[b]
        cpu.zf = left == right
        cpu.lt = (left - _TWO64 if left & _SIGN64 else left) < \
            (right - _TWO64 if right & _SIGN64 else right)
        cpu.ltu = left < right
        return nxt
    return fn


@_op(Op.CMP_RI)
def _c_cmp_ri(ops, rip, nxt, cost):
    a = ops[0]
    right = ops[1] & _MASK64
    signed_right = _signed(right)

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        left = cpu.regs[a]
        cpu.zf = left == right
        cpu.lt = (left - _TWO64 if left & _SIGN64 else left) < signed_right
        cpu.ltu = left < right
        return nxt
    return fn


@_op(Op.TEST_RR)
def _c_test_rr(ops, rip, nxt, cost):
    a, b = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        cpu.zf = (regs[a] & regs[b]) == 0
        return nxt
    return fn


@_op(Op.TEST_RI)
def _c_test_ri(ops, rip, nxt, cost):
    a = ops[0]
    imm = ops[1] & _MASK64

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.zf = (cpu.regs[a] & imm) == 0
        return nxt
    return fn


@_op(Op.CMPW_RR)
def _c_cmpw_rr(ops, rip, nxt, cost):
    a, b = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        cpu.zf = (regs[a] & 0xFFFF) == (regs[b] & 0xFFFF)
        return nxt
    return fn


@_op(Op.TESTB1)
def _c_testb1(ops, rip, nxt, cost):
    a = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.zf = (cpu.regs[a] & 1) == 0
        return nxt
    return fn


@_op(Op.LOAD8)
def _c_load8(ops, rip, nxt, cost):
    d, b, disp = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = cpu.memory.read_u8((regs[b] + disp) & _MASK64)
        return nxt
    return fn


@_op(Op.LOAD16)
def _c_load16(ops, rip, nxt, cost):
    d, b, disp = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = cpu.memory.read_u16((regs[b] + disp) & _MASK64)
        return nxt
    return fn


@_op(Op.LOAD32)
def _c_load32(ops, rip, nxt, cost):
    d, b, disp = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = cpu.memory.read_u32((regs[b] + disp) & _MASK64)
        return nxt
    return fn


@_op(Op.LOAD64)
def _c_load64(ops, rip, nxt, cost):
    d, b, disp = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = cpu.memory.read_u64((regs[b] + disp) & _MASK64)
        return nxt
    return fn


@_op(Op.STORE8)
def _c_store8(ops, rip, nxt, cost):
    b, disp, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        cpu.memory.write_u8((regs[b] + disp) & _MASK64, regs[s])
        return nxt
    return fn


@_op(Op.STORE16)
def _c_store16(ops, rip, nxt, cost):
    b, disp, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        cpu.memory.write_u16((regs[b] + disp) & _MASK64, regs[s])
        return nxt
    return fn


@_op(Op.STORE32)
def _c_store32(ops, rip, nxt, cost):
    b, disp, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        cpu.memory.write_u32((regs[b] + disp) & _MASK64, regs[s])
        return nxt
    return fn


@_op(Op.STORE64)
def _c_store64(ops, rip, nxt, cost):
    b, disp, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        cpu.memory.write_u64((regs[b] + disp) & _MASK64, regs[s])
        return nxt
    return fn


@_op(Op.PUSH)
def _c_push(ops, rip, nxt, cost):
    s = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        rsp = (regs[_RSP] - 8) & _MASK64
        cpu.memory.write_u64(rsp, regs[s])
        regs[_RSP] = rsp
        return nxt
    return fn


@_op(Op.POP)
def _c_pop(ops, rip, nxt, cost):
    d = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        rsp = regs[_RSP]
        regs[d] = cpu.memory.read_u64(rsp)
        regs[_RSP] = (rsp + 8) & _MASK64
        return nxt
    return fn


@_op(Op.CALL)
def _c_call(ops, rip, nxt, cost):
    target = nxt + ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        rsp = (regs[_RSP] - 8) & _MASK64
        cpu.memory.write_u64(rsp, nxt)
        regs[_RSP] = rsp
        return target
    return fn


@_op(Op.CALL_R)
def _c_call_r(ops, rip, nxt, cost):
    r = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        rsp = (regs[_RSP] - 8) & _MASK64
        cpu.memory.write_u64(rsp, nxt)
        regs[_RSP] = rsp
        return regs[r]
    return fn


@_op(Op.RET)
def _c_ret(ops, rip, nxt, cost):
    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        rsp = regs[_RSP]
        target = cpu.memory.read_u64(rsp)
        regs[_RSP] = (rsp + 8) & _MASK64
        return target
    return fn


@_op(Op.JMP)
def _c_jmp(ops, rip, nxt, cost):
    target = nxt + ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        return target
    return fn


@_op(Op.JMP_R)
def _c_jmp_r(ops, rip, nxt, cost):
    r = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        return cpu.regs[r]
    return fn


def _cond_jump(opcode, decide):
    """``decide(zf, lt, ltu) -> bool``: whether the jump is taken."""
    def builder(ops, rip, nxt, cost):
        taken = nxt + ops[0]

        def fn(cpu):
            cpu.cycles += cost
            cpu.instructions += 1
            return taken if decide(cpu.zf, cpu.lt, cpu.ltu) else nxt
        return fn
    COMPILERS[int(opcode)] = builder


_cond_jump(Op.JE, lambda zf, lt, ltu: zf)
_cond_jump(Op.JNE, lambda zf, lt, ltu: not zf)
_cond_jump(Op.JL, lambda zf, lt, ltu: lt)
_cond_jump(Op.JLE, lambda zf, lt, ltu: lt or zf)
_cond_jump(Op.JG, lambda zf, lt, ltu: not (lt or zf))
_cond_jump(Op.JGE, lambda zf, lt, ltu: not lt)
_cond_jump(Op.JB, lambda zf, lt, ltu: ltu)
_cond_jump(Op.JAE, lambda zf, lt, ltu: not ltu)


@_op(Op.TLOAD_RI)
def _c_tload_ri(ops, rip, nxt, cost):
    d, index = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        cpu.tx_checks += 1
        cpu.regs[d] = cpu.tables.read_bary(index)
        return nxt
    return fn


@_op(Op.TLOAD_RR)
def _c_tload_rr(ops, rip, nxt, cost):
    d, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = cpu.tables.read_tary(regs[s])
        return nxt
    return fn


def _float_binop(opcode, expr):
    def builder(ops, rip, nxt, cost):
        d, s = ops

        def fn(cpu):
            cpu.cycles += cost
            cpu.instructions += 1
            regs = cpu.regs
            regs[d] = _bits_of(expr(_float_of(regs[d]), _float_of(regs[s])))
            return nxt
        return fn
    COMPILERS[int(opcode)] = builder


_float_binop(Op.FADD_RR, lambda a, b: a + b)
_float_binop(Op.FSUB_RR, lambda a, b: a - b)
_float_binop(Op.FMUL_RR, lambda a, b: a * b)


@_op(Op.FDIV_RR)
def _c_fdiv_rr(ops, rip, nxt, cost):
    d, s = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        divisor = _float_of(regs[s])
        if divisor == 0.0:
            raise VMError(f"float division by zero at {rip:#x}")
        regs[d] = _bits_of(_float_of(regs[d]) / divisor)
        return nxt
    return fn


@_op(Op.FCMP_RR)
def _c_fcmp_rr(ops, rip, nxt, cost):
    a, b = ops

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        left = _float_of(regs[a])
        right = _float_of(regs[b])
        if left != left or right != right:
            # Unordered (NaN operand): x86 ucomisd sets ZF=CF=1,
            # SF=OF=0, so je/jb/jbe are taken and jl/jg are not.
            cpu.zf = True
            cpu.lt = False
            cpu.ltu = True
        else:
            cpu.zf = left == right
            cpu.lt = cpu.ltu = left < right
        return nxt
    return fn


@_op(Op.CVTSI2F)
def _c_cvtsi2f(ops, rip, nxt, cost):
    d = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = _bits_of(float(_signed(regs[d])))
        return nxt
    return fn


@_op(Op.CVTF2SI)
def _c_cvtf2si(ops, rip, nxt, cost):
    d = ops[0]

    def fn(cpu):
        cpu.cycles += cost
        cpu.instructions += 1
        regs = cpu.regs
        regs[d] = int(_float_of(regs[d])) & _MASK64
        return nxt
    return fn


def compile_entry(entry: Tuple[int, Tuple[int, ...], int, int],
                  rip: int) -> _Closure:
    """Specialize one decoded icache entry into an execution closure."""
    op, ops, length, cost = entry
    builder = COMPILERS[op] if op < len(COMPILERS) else None
    if builder is None:
        def fn(cpu):  # pragma: no cover - SPECS and COMPILERS in sync
            cpu.cycles += cost
            cpu.instructions += 1
            raise InvalidInstruction(f"unimplemented opcode {op:#x}")
        return fn
    return builder(ops, rip, rip + length, cost)


# ---------------------------------------------------------------------------
# Superinstruction fusion: the Fig. 4 Try block
# ---------------------------------------------------------------------------

#: Instruction count charged by the fused op on the taken (IDs equal)
#: path: TLOAD_RI, TLOAD_RR, CMP_RR, JNE (not taken), JMP_R.
_FUSED_MATCH_INSTRS = 5
#: ... and on the mismatch path: the same minus the JMP_R.
_FUSED_MISS_INSTRS = 4


def try_fuse_check(cpu, addr: int,
                   entry0: Tuple[int, Tuple[int, ...], int, int]):
    """Recognize a check-transaction Try block starting at ``addr``.

    Returns ``(closure, end_address)`` when the five-instruction
    template matches (with the three scratch registers pairwise
    distinct, which the instrumenter guarantees), else ``(None, 0)``.
    The closure is a block terminator: it manages its own counters,
    ``tx_checks`` and fault-time ``rip``, and returns the next rip.
    """
    icache = cpu.icache
    entries = [entry0]
    cursor = addr + entry0[2]
    try:
        for _ in range(4):
            entry = icache.get(cursor)
            if entry is None:
                entry = cpu._fetch_decode(cursor)
            entries.append(entry)
            cursor += entry[2]
    except (MemoryFault, InvalidInstruction):
        return None, 0
    e0, e1, e2, e3, e4 = entries
    if (e1[0], e2[0], e3[0], e4[0]) != (int(Op.TLOAD_RR), int(Op.CMP_RR),
                                        int(Op.JNE), int(Op.JMP_R)):
        return None, 0
    r_a, bary_imm = e0[1]
    r_b, r_c = e1[1]
    if e2[1] != (r_a, r_b) or e4[1] != (r_c,):
        return None, 0
    if len({r_a, r_b, r_c}) != 3:
        return None, 0

    a0 = addr
    a1 = addr + e0[2]
    jne_addr = a1 + e1[2] + e2[2]
    check_target = jne_addr + e3[2] + e3[1][0]
    cost0 = e0[3]
    cost01 = e0[3] + e1[3]
    miss_cost = e0[3] + e1[3] + e2[3] + e3[3]
    match_cost = miss_cost + e4[3]
    # Mutable cell for the generation-stamped branch-ID cache:
    # [cached_id, stamp].  A stamp of -1 never matches a real
    # generation, so the first execution always reads the table.
    cell = [0, -1]

    def fused(cpu):
        tables = cpu.tables
        cpu.tx_checks += 1
        generation = tables.generation
        if generation == cell[1]:
            branch_id = cell[0]
        else:
            try:
                branch_id = tables.read_bary(bary_imm)
            except MemoryFault:
                cpu.cycles += cost0
                cpu.instructions += 1
                cpu.rip = a0
                raise
            cell[0] = branch_id
            cell[1] = generation
        regs = cpu.regs
        regs[r_a] = branch_id
        try:
            target_id = tables.read_tary(regs[r_c])
        except MemoryFault:
            cpu.cycles += cost01
            cpu.instructions += 2
            cpu.rip = a1
            raise
        regs[r_b] = target_id
        if branch_id == target_id:
            cpu.zf = True
            cpu.lt = False
            cpu.ltu = False
            cpu.cycles += match_cost
            cpu.instructions += _FUSED_MATCH_INSTRS
            return regs[r_c]
        cpu.zf = False
        # Stored IDs are 32-bit words, so signed and unsigned 64-bit
        # comparisons agree (both operands are small positives).
        cpu.lt = cpu.ltu = branch_id < target_id
        cpu.cycles += miss_cost
        cpu.instructions += _FUSED_MISS_INSTRS
        return check_target

    return fused, cursor


# ---------------------------------------------------------------------------
# Decoded basic blocks
# ---------------------------------------------------------------------------

#: Maximum instructions decoded into one block.  Together with the
#: fused macro-op's five instructions this bounds how far a single
#: block execution can advance the instruction counter, which
#: ``CPU.run`` uses to honour ``max_steps`` exactly.
MAX_BLOCK_INSTRS = 64
MAX_BLOCK_ADVANCE = MAX_BLOCK_INSTRS + _FUSED_MATCH_INSTRS


class Block:
    """One decoded straight-line run: closures plus fault bookkeeping."""

    __slots__ = ("entry", "limit", "linear", "addrs", "term", "term_addr",
                 "term_sets_rip", "exit_rip")

    def __init__(self, entry: int, limit: int, linear, addrs,
                 term: Optional[_Closure], term_addr: int,
                 term_sets_rip: bool, exit_rip: int) -> None:
        self.entry = entry
        self.limit = limit          # one past the last decoded byte
        self.linear = linear        # tuple of closures
        self.addrs = addrs          # per-closure instruction addresses
        self.term = term
        self.term_addr = term_addr
        self.term_sets_rip = term_sets_rip
        self.exit_rip = exit_rip    # fall-through when term is None

    def execute(self, cpu) -> int:
        """Run the whole block; return the rip to continue at.

        On any exception the architectural state is exactly what the
        per-instruction interpreter would leave: counters include the
        faulting instruction (each closure charges itself first) and
        ``rip`` names it.
        """
        index = 0
        try:
            for fn in self.linear:
                fn(cpu)
                index += 1
        except BaseException:
            cpu.rip = self.addrs[index]
            raise
        term = self.term
        if term is None:
            return self.exit_rip
        if self.term_sets_rip:
            return term(cpu)
        try:
            return term(cpu)
        except BaseException:
            cpu.rip = self.term_addr
            raise

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.entry < hi and lo < self.limit


class DispatchCache:
    """Shared decoded state for one address space.

    Two layers keyed by code address: ``closures`` (one compiled
    closure per instruction, used by ``step()``) and ``blocks`` (one
    :class:`Block` per basic-block entry, used by ``run()``).  Both sit
    on top of the raw decoded icache and follow its invalidation: the
    dynamic linker calls :meth:`invalidate_range` wherever it drops
    icache entries.
    """

    __slots__ = ("closures", "blocks", "blocks_built", "fused_sites")

    def __init__(self) -> None:
        self.closures: Dict[int, _Closure] = {}
        self.blocks: Dict[int, Block] = {}
        self.blocks_built = 0
        self.fused_sites = 0

    def invalidate_range(self, lo: int, hi: int) -> None:
        """Drop every closure and block touching ``[lo, hi)``."""
        closures = self.closures
        for address in [a for a in closures if lo <= a < hi]:
            del closures[address]
        blocks = self.blocks
        for address in [a for a, b in blocks.items() if b.overlaps(lo, hi)]:
            del blocks[address]

    def clear(self) -> None:
        self.closures.clear()
        self.blocks.clear()


def _replay_closure(addr: int) -> _Closure:
    """Terminator for addresses that failed to decode at build time.

    Decoding may legitimately fail *ahead* of execution (straight-line
    code running to the end of the executable region): the fault must
    be raised when — and only when — execution actually reaches the
    address, with per-step state.  Replaying through the step path
    reproduces that exactly, and still works if the address has become
    decodable again in the meantime.
    """
    def fn(cpu):
        cpu.rip = addr
        ccache = cpu.ccache
        closure = ccache.get(addr)
        if closure is None:
            entry = cpu.icache.get(addr)
            if entry is None:
                try:
                    entry = cpu._fetch_decode(addr)
                except BaseException:
                    cpu._decode_fault = True
                    raise
            closure = compile_entry(entry, addr)
            ccache[addr] = closure
        return closure(cpu)
    return fn


_TLOAD_RI_INT = int(Op.TLOAD_RI)
_SYSCALL_INT = int(Op.SYSCALL)


def build_block(cpu, entry_rip: int) -> Block:
    """Decode, compile and cache the basic block starting at ``entry_rip``."""
    cache: DispatchCache = cpu.dispatch_cache
    ccache = cache.closures
    icache = cpu.icache
    linear: List[_Closure] = []
    addrs: List[int] = []
    term: Optional[_Closure] = None
    term_addr = 0
    term_sets_rip = False
    addr = entry_rip
    for _ in range(MAX_BLOCK_INSTRS):
        entry = icache.get(addr)
        if entry is None:
            try:
                entry = cpu._fetch_decode(addr)
            except (MemoryFault, InvalidInstruction):
                term = _replay_closure(addr)
                term_addr = addr
                term_sets_rip = True
                addr += 1  # keep the failed address inside the span
                break
        op = entry[0]
        if op == _TLOAD_RI_INT:
            fused, end = try_fuse_check(cpu, addr, entry)
            if fused is not None:
                term = fused
                term_addr = addr
                term_sets_rip = True  # the fused op repairs rip itself
                cache.fused_sites += 1
                addr = end
                break
        if op in BLOCK_TERMINATORS:
            closure = ccache.get(addr)
            if closure is None:
                closure = compile_entry(entry, addr)
                ccache[addr] = closure
            term = closure
            term_addr = addr
            term_sets_rip = op == _SYSCALL_INT
            addr += entry[2]
            break
        closure = ccache.get(addr)
        if closure is None:
            closure = compile_entry(entry, addr)
            ccache[addr] = closure
        linear.append(closure)
        addrs.append(addr)
        addr += entry[2]
    block = Block(entry_rip, addr, tuple(linear), tuple(addrs),
                  term, term_addr, term_sets_rip, exit_rip=addr)
    cache.blocks[entry_rip] = block
    cache.blocks_built += 1
    return block
