"""SimVM syscall ABI.

The MCFI runtime "does not allow modules to directly invoke native
system calls.  Instead, it wraps system calls as API functions and
checks their arguments" (Sec. 7).  This module defines only the ABI —
numbers, register convention and string helpers; the trusted
implementation with argument checking lives in
:mod:`repro.runtime.services`.

Convention::

    rax = syscall number      r8, r9, r10 = arguments
    rax = return value
"""

from __future__ import annotations

from repro.vm.memory import Memory

SYS_EXIT = 1          # exit(code)                        never returns
SYS_WRITE = 2         # write(fd, buf, len) -> len
SYS_SBRK = 3          # sbrk(delta) -> old_break
SYS_TIME = 4          # time() -> current cycle count
SYS_THREAD_SPAWN = 5  # thread_spawn(fn, arg) -> tid
SYS_THREAD_EXIT = 6   # thread_exit()                     never returns
SYS_DLOPEN = 7        # dlopen(path_cstr) -> handle or 0
SYS_DLSYM = 8         # dlsym(handle, name_cstr) -> fn address or 0
SYS_MPROTECT = 9      # mprotect(addr, len, prot) -> 0 or -1
SYS_READ = 10         # read(fd, buf, len) -> bytes read
SYS_YIELD = 11        # sched_yield() -> 0
SYS_JIT = 12          # jit_compile(src_cstr, name_cstr) -> fn address
SYS_DLCLOSE = 13      # dlclose(handle) -> 0 or -1

#: mprotect protection bits.
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_WRITE: "write",
    SYS_SBRK: "sbrk",
    SYS_TIME: "time",
    SYS_THREAD_SPAWN: "thread_spawn",
    SYS_THREAD_EXIT: "thread_exit",
    SYS_DLOPEN: "dlopen",
    SYS_DLSYM: "dlsym",
    SYS_MPROTECT: "mprotect",
    SYS_READ: "read",
    SYS_YIELD: "yield",
    SYS_JIT: "jit_compile",
    SYS_DLCLOSE: "dlclose",
}


def read_cstring(memory: Memory, address: int, limit: int = 4096) -> bytes:
    """Read a NUL-terminated byte string from application memory."""
    out = bytearray()
    cursor = address
    while len(out) < limit:
        byte = memory.read_u8(cursor)
        if byte == 0:
            return bytes(out)
        out.append(byte)
        cursor += 1
    return bytes(out)
