"""TinyC type checker and semantic-fact collector.

Beyond validating the program, the checker produces everything the rest
of the MCFI toolchain consumes:

* every expression gets a ``ctype``;
* every type conversion — explicit or implicit — becomes a
  :class:`~repro.tinyc.ast.Cast` node, and conversions *involving
  function-pointer types* are recorded as :class:`CastRecord` with the
  context the C1 analyzer's false-positive elimination needs (Sec. 6);
* functions are recorded with canonical signatures and an
  ``address_taken`` flag (a function name used anywhere other than as
  the callee of a direct call takes its address — LLVM's rule, which
  the paper's CFG generation relies on);
* call sites are recorded (direct callee, or the function-pointer type
  of an indirect call) for call-graph construction;
* locals are renamed to flat unique names, so MIR lowering is
  scope-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TypeError_
from repro.tinyc import ast
from repro.tinyc.types import (
    ArrayType,
    CHAR,
    CHAR_PTR,
    DOUBLE,
    FloatType,
    FuncSig,
    FuncType,
    INT,
    IntType,
    LONG,
    PointerType,
    StructType,
    Type,
    ULONG,
    VOID,
    VOID_PTR,
    canonical,
    contains_function_pointer,
    decay,
    is_arith,
    is_function_pointer,
    is_integer,
    is_pointer,
    is_scalar,
)
from repro.tinyc.symbols import SymbolTable

#: Functions treated as allocators for the MF (malloc/free) elimination.
ALLOCATORS = frozenset(["malloc", "calloc", "realloc"])
DEALLOCATORS = frozenset(["free"])

#: Compiler intrinsics; they get special code generation.
INTRINSICS = frozenset(["setjmp", "longjmp", "__syscall"])


@dataclass
class CastRecord:
    """One type conversion involving function-pointer types.

    The flags capture the syntactic context used by the analyzer's
    UC/DC/MF/SU/NF eliminations and K1/K2 classification.
    """

    line: int
    src: Type
    dst: Type
    explicit: bool
    unit: str = ""
    function: str = ""                 # enclosing function, "" at top level
    operand_func: Optional[str] = None  # casting (the address of) function f
    operand_zero: bool = False          # casting the literal 0 / NULL
    via_alloc: bool = False             # cast of a malloc/calloc/realloc result
    via_free: bool = False              # implicit cast at a free() argument
    member_nonfptr: bool = False        # result only used to read a non-fptr field
    assign_to_fptr: bool = False        # value stored into a function pointer


@dataclass
class CallRecord:
    """One call site, as the CFG generator will see it."""

    caller: str
    line: int
    direct: Optional[str]              # callee name for direct calls
    sig: Optional[FuncSig]             # pointer signature for indirect calls


@dataclass
class CheckedFunction:
    name: str
    ftype: FuncType
    param_names: List[str]             # unique (renamed) parameter names
    locals: List[Tuple[str, Type]]     # unique name -> type (params included)
    body: ast.Block
    is_static: bool = False
    #: function names whose address *this* body takes (per-function view
    #: of the unit-level ``address_taken`` set; incremental rebuilds merge
    #: these instead of re-deriving the flat set)
    takes: Set[str] = field(default_factory=set)
    uses_setjmp: bool = False


@dataclass
class CheckedUnit:
    """The checker's output for one translation unit."""

    name: str
    unit: ast.TranslationUnit
    functions: Dict[str, CheckedFunction] = field(default_factory=dict)
    func_sigs: Dict[str, FuncSig] = field(default_factory=dict)
    func_types: Dict[str, FuncType] = field(default_factory=dict)
    address_taken: Set[str] = field(default_factory=set)
    #: addresses taken outside any function body (global initializers)
    global_takes: Set[str] = field(default_factory=set)
    calls: List[CallRecord] = field(default_factory=list)
    casts: List[CastRecord] = field(default_factory=list)
    globals: List[ast.GlobalVar] = field(default_factory=list)
    uses_setjmp: bool = False

    def defined_functions(self) -> List[str]:
        return list(self.functions)


class Checker:
    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.out = CheckedUnit(name=unit.name, unit=unit)
        self.symbols = SymbolTable()
        self.current_function: Optional[CheckedFunction] = None
        self._cast_records: Dict[int, CastRecord] = {}

    # -- driver ---------------------------------------------------------------

    def check(self) -> CheckedUnit:
        # Register all function signatures first (mutual recursion).
        for decl in self.unit.decls:
            self._register_function(decl.name, decl.ftype)
        for func in self.unit.funcs:
            self._register_function(func.name, func.ftype)
        for var in self.unit.globals:
            ctype = var.ctype
            self.symbols.declare(var.name, ctype, "global", var.line)
            self.out.globals.append(var)
        for var in self.unit.globals:
            if var.init is not None:
                var.init = self._check_initializer(var.init, var.ctype,
                                                   var.line)
        for func in self.unit.funcs:
            self._check_function(func)
        return self.out

    def _register_function(self, name: str, ftype: FuncType) -> None:
        existing = self.out.func_types.get(name)
        if existing is not None and canonical(existing) != canonical(ftype):
            raise TypeError_(f"conflicting declarations of {name!r}")
        self.out.func_types[name] = ftype
        self.out.func_sigs[name] = FuncSig.of(ftype)
        if self.symbols.lookup(name) is None:
            self.symbols.declare(name, ftype, "func")

    def _check_function(self, func: ast.FuncDef) -> None:
        checked = CheckedFunction(name=func.name, ftype=func.ftype,
                                  param_names=[], locals=[], body=func.body,
                                  is_static=func.is_static)
        self.out.functions[func.name] = checked
        self.current_function = checked
        self.symbols.push()
        for pname, ptype in zip(func.param_names, func.ftype.params):
            symbol = self.symbols.declare(pname, ptype, "param", func.line)
            checked.param_names.append(symbol.unique)
            checked.locals.append((symbol.unique, ptype))
        self._check_stmt(func.body)
        self.symbols.pop()
        self.current_function = None

    # -- statements -------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.symbols.push()
            for index, inner in enumerate(stmt.stmts):
                if isinstance(inner, ast.DeclStmt):
                    self._check_decl(inner)
                else:
                    self._check_stmt(inner)
            self.symbols.pop()
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                stmt.expr = self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self._check_decl(stmt)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._check_scalar(stmt.cond)
            self._check_stmt(stmt.then)
            if stmt.other is not None:
                self._check_stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            stmt.cond = self._check_scalar(stmt.cond)
            self._check_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body)
            stmt.cond = self._check_scalar(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._check_scalar(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._check_expr(stmt.step)
            self._check_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            ret = self.current_function.ftype.ret
            if stmt.value is not None:
                if isinstance(ret, type(VOID)):
                    raise TypeError_("return with value in void function",
                                     stmt.line)
                stmt.value = self._coerce(self._check_expr(stmt.value), ret,
                                          context="return")
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.Switch):
            stmt.expr = self._check_expr(stmt.expr)
            if not is_integer(stmt.expr.ctype):
                raise TypeError_("switch requires an integer", stmt.line)
            seen_values = set()
            defaults = 0
            for case in stmt.cases:
                if case.value is None:
                    defaults += 1
                    if defaults > 1:
                        raise TypeError_("duplicate default label",
                                         stmt.line)
                elif case.value in seen_values:
                    raise TypeError_(
                        f"duplicate case label {case.value}", stmt.line)
                else:
                    seen_values.add(case.value)
            self.symbols.push()
            for case in stmt.cases:
                for inner in case.stmts:
                    self._check_stmt(inner)
            self.symbols.pop()
        else:
            raise TypeError_(f"unhandled statement {type(stmt).__name__}",
                             stmt.line)

    def _check_decl(self, decl: ast.DeclStmt) -> None:
        symbol = self.symbols.declare(decl.name, decl.ctype, "local",
                                      decl.line)
        decl.name = symbol.unique
        self.current_function.locals.append((symbol.unique, decl.ctype))
        if decl.init is not None:
            decl.init = self._coerce(self._check_expr(decl.init), decl.ctype,
                                     context="init")

    def _check_initializer(self, init, ctype: Type, line: int):
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                if len(init) > ctype.length:
                    raise TypeError_(
                        f"too many initializers for {ctype} "
                        f"({len(init)} > {ctype.length})", line)
                return [self._check_initializer(item, ctype.element, line)
                        for item in init]
            if isinstance(ctype, StructType):
                if len(init) > len(ctype.fields):
                    raise TypeError_("too many initializers", line)
                return [self._check_initializer(item, ftype, line)
                        for item, (_, ftype) in zip(init, ctype.fields)]
            raise TypeError_("brace initializer for scalar", line)
        return self._coerce(self._check_expr(init), ctype, context="init")

    # -- expressions --------------------------------------------------------------

    def _check_scalar(self, expr: ast.Expr) -> ast.Expr:
        expr = self._check_expr(expr)
        if not is_scalar(expr.ctype):
            raise TypeError_("condition must be scalar", expr.line)
        return expr

    def _check_expr(self, expr: ast.Expr) -> ast.Expr:
        method = getattr(self, "_check_" + type(expr).__name__.lower(), None)
        if method is None:
            raise TypeError_(f"unhandled expression {type(expr).__name__}",
                             expr.line)
        return method(expr)

    def _check_intlit(self, expr: ast.IntLit) -> ast.Expr:
        expr.ctype = LONG if abs(expr.value) > 0x7FFFFFFF else INT
        return expr

    def _check_floatlit(self, expr: ast.FloatLit) -> ast.Expr:
        expr.ctype = DOUBLE
        return expr

    def _check_strlit(self, expr: ast.StrLit) -> ast.Expr:
        expr.ctype = CHAR_PTR
        return expr

    def _check_ident(self, expr: ast.Ident) -> ast.Expr:
        symbol = self.symbols.lookup(expr.name)
        if symbol is None:
            raise TypeError_(f"undeclared identifier {expr.name!r}",
                             expr.line)
        expr.binding = symbol.kind
        expr.ctype = symbol.ctype
        if symbol.kind in ("local", "param"):
            expr.name = symbol.unique
        if symbol.kind == "func":
            # Using a function name in a value position takes its
            # address; the direct-call case overrides this in _check_call.
            self.out.address_taken.add(expr.name)
            if self.current_function is not None:
                self.current_function.takes.add(expr.name)
            else:
                self.out.global_takes.add(expr.name)
            expr.ctype = PointerType(symbol.ctype)
        return expr

    def _check_unary(self, expr: ast.Unary) -> ast.Expr:
        if expr.op == "&":
            operand = expr.operand
            if isinstance(operand, ast.Ident):
                operand = self._check_ident(operand)
                expr.operand = operand
                if operand.binding == "func":
                    expr.ctype = operand.ctype  # already pointer-to-func
                    return expr
                expr.ctype = PointerType(operand.ctype)
                return expr
            operand = self._check_expr(operand)
            expr.operand = operand
            if not self._is_lvalue(operand):
                raise TypeError_("cannot take address of rvalue", expr.line)
            expr.ctype = PointerType(operand.ctype)
            return expr
        operand = self._check_expr(expr.operand)
        expr.operand = operand
        ctype = decay(operand.ctype)
        if expr.op == "*":
            if isinstance(ctype, PointerType):
                expr.ctype = ctype.pointee
                return expr
            raise TypeError_("dereference of non-pointer", expr.line)
        if expr.op == "!":
            expr.ctype = INT
            return expr
        if expr.op == "-":
            if not is_arith(ctype):
                raise TypeError_("unary - needs arithmetic type", expr.line)
            expr.ctype = ctype
            return expr
        if expr.op == "~":
            if not is_integer(ctype):
                raise TypeError_("~ needs an integer", expr.line)
            expr.ctype = ctype
            return expr
        if expr.op in ("++", "--"):
            if not self._is_lvalue(operand):
                raise TypeError_(f"{expr.op} needs an lvalue", expr.line)
            if not (is_integer(ctype) or is_pointer(ctype)):
                raise TypeError_(f"{expr.op} needs integer or pointer",
                                 expr.line)
            expr.ctype = ctype
            return expr
        raise TypeError_(f"unhandled unary {expr.op!r}", expr.line)

    def _check_binary(self, expr: ast.Binary) -> ast.Expr:
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        ltype = decay(left.ctype)
        rtype = decay(right.ctype)
        op = expr.op
        if op in ("&&", "||"):
            expr.ctype = INT
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            if isinstance(ltype, FloatType) != isinstance(rtype, FloatType):
                left, right = self._unify_arith(left, right)
            expr.ctype = INT
        elif op in ("%", "<<", ">>", "&", "|", "^"):
            if not (is_integer(ltype) and is_integer(rtype)):
                raise TypeError_(f"{op} needs integers", expr.line)
            expr.ctype = ltype
        elif op in ("+", "-"):
            if is_pointer(ltype) and is_integer(rtype):
                expr.ctype = ltype
            elif is_integer(ltype) and is_pointer(rtype) and op == "+":
                expr.ctype = rtype
            elif is_pointer(ltype) and is_pointer(rtype) and op == "-":
                expr.ctype = LONG
            elif is_arith(ltype) and is_arith(rtype):
                left, right = self._unify_arith(left, right)
                expr.ctype = decay(left.ctype)
            else:
                raise TypeError_(f"bad operands to {op}", expr.line)
        elif op in ("*", "/"):
            if not (is_arith(ltype) and is_arith(rtype)):
                raise TypeError_(f"{op} needs arithmetic types", expr.line)
            left, right = self._unify_arith(left, right)
            expr.ctype = decay(left.ctype)
        else:
            raise TypeError_(f"unhandled binary {op!r}", expr.line)
        expr.left = left
        expr.right = right
        return expr

    def _unify_arith(self, left: ast.Expr,
                     right: ast.Expr) -> Tuple[ast.Expr, ast.Expr]:
        ltype = decay(left.ctype)
        rtype = decay(right.ctype)
        if isinstance(ltype, FloatType) and not isinstance(rtype, FloatType):
            right = self._implicit_cast(right, DOUBLE)
        elif isinstance(rtype, FloatType) and not isinstance(ltype,
                                                             FloatType):
            left = self._implicit_cast(left, DOUBLE)
        return left, right

    def _check_assign(self, expr: ast.Assign) -> ast.Expr:
        target = self._check_expr(expr.target)
        if not self._is_lvalue(target):
            raise TypeError_("assignment to rvalue", expr.line)
        value = self._check_expr(expr.value)
        if expr.op == "=":
            value = self._coerce(value, target.ctype, context="assign")
        else:
            # Compound assignment: operands must be arithmetic/pointer.
            base_op = expr.op[:-1]
            if is_pointer(decay(target.ctype)) and base_op in ("+", "-"):
                pass
            elif not (is_arith(decay(target.ctype))
                      and is_arith(decay(value.ctype))):
                raise TypeError_(f"bad compound assignment {expr.op}",
                                 expr.line)
            if isinstance(decay(target.ctype), FloatType) and \
                    not isinstance(decay(value.ctype), FloatType):
                value = self._implicit_cast(value, DOUBLE)
        expr.target = target
        expr.value = value
        expr.ctype = target.ctype
        return expr

    def _check_cond(self, expr: ast.Cond) -> ast.Expr:
        expr.cond = self._check_scalar(expr.cond)
        then = self._check_expr(expr.then)
        other = self._check_expr(expr.other)
        ttype = decay(then.ctype)
        otype = decay(other.ctype)
        if isinstance(ttype, FloatType) != isinstance(otype, FloatType):
            then, other = self._unify_arith(then, other)
        elif canonical(ttype) != canonical(otype) and \
                is_pointer(ttype) and is_pointer(otype):
            other = self._implicit_cast(other, ttype)
        expr.then = then
        expr.other = other
        expr.ctype = decay(then.ctype)
        return expr

    def _check_call(self, expr: ast.Call) -> ast.Expr:
        callee = expr.callee
        direct_name: Optional[str] = None
        # Strip &/* wrappers: (&f)(...) and (*fp)(...) normalize away.
        stripped = callee
        while isinstance(stripped, ast.Unary) and stripped.op in ("&", "*"):
            stripped = stripped.operand
        if isinstance(stripped, ast.Ident):
            symbol = self.symbols.lookup(stripped.name)
            if symbol is not None and symbol.kind == "func" and \
                    stripped is callee:
                direct_name = stripped.name
        if direct_name is not None:
            ftype = self.symbols.lookup(direct_name).ctype
            stripped.binding = "func"
            stripped.ctype = PointerType(ftype)
        else:
            callee = self._check_expr(callee)
            expr.callee = callee
            ctype = decay(callee.ctype)
            if is_function_pointer(ctype):
                ftype = ctype.pointee
            elif isinstance(ctype, FuncType):
                ftype = ctype
            else:
                raise TypeError_("call of non-function", expr.line)
        if not isinstance(ftype, FuncType):
            raise TypeError_("call of non-function", expr.line)

        if len(expr.args) < len(ftype.params) or \
                (len(expr.args) > len(ftype.params) and not ftype.variadic):
            raise TypeError_(
                f"wrong number of arguments ({len(expr.args)} for "
                f"{len(ftype.params)})", expr.line)
        new_args = []
        for index, arg in enumerate(expr.args):
            arg = self._check_expr(arg)
            if index < len(ftype.params):
                context = "arg"
                if direct_name in DEALLOCATORS:
                    context = "free-arg"
                arg = self._coerce(arg, ftype.params[index], context=context)
            else:
                arg = self._promote_vararg(arg)
            new_args.append(arg)
        expr.args = new_args
        expr.direct_name = direct_name
        expr.callee_type = ftype
        expr.ctype = ftype.ret if not isinstance(ftype.ret, type(VOID)) \
            else VOID
        caller = self.current_function.name if self.current_function else ""
        if direct_name is not None:
            if direct_name not in INTRINSICS:
                self.out.calls.append(CallRecord(
                    caller=caller, line=expr.line, direct=direct_name,
                    sig=None))
            if direct_name == "setjmp":
                self.out.uses_setjmp = True
                if self.current_function is not None:
                    self.current_function.uses_setjmp = True
        else:
            self.out.calls.append(CallRecord(
                caller=caller, line=expr.line, direct=None,
                sig=FuncSig.of(ftype)))
        return expr

    def _promote_vararg(self, arg: ast.Expr) -> ast.Expr:
        ctype = decay(arg.ctype)
        if isinstance(ctype, IntType) and ctype.size < 8:
            return arg  # 64-bit registers already
        return arg

    def _check_index(self, expr: ast.Index) -> ast.Expr:
        base = self._check_expr(expr.base)
        index = self._check_expr(expr.index)
        btype = decay(base.ctype)
        if not isinstance(btype, PointerType):
            raise TypeError_("subscript of non-pointer", expr.line)
        if not is_integer(decay(index.ctype)):
            raise TypeError_("subscript index must be integer", expr.line)
        expr.base = base
        expr.index = index
        expr.ctype = btype.pointee
        return expr

    def _check_member(self, expr: ast.Member) -> ast.Expr:
        base = self._check_expr(expr.base)
        btype = decay(base.ctype)
        if expr.arrow:
            if not isinstance(btype, PointerType) or \
                    not isinstance(btype.pointee, StructType):
                raise TypeError_("-> on non-struct-pointer", expr.line)
            struct = btype.pointee
        else:
            if not isinstance(base.ctype, StructType):
                raise TypeError_(". on non-struct", expr.line)
            struct = base.ctype
        ftype = struct.field_type(expr.name)
        if ftype is None:
            raise TypeError_(f"no field {expr.name!r} in {struct}", expr.line)
        expr.base = base
        expr.ctype = ftype
        # NF elimination hook: a cast whose result is only used to read a
        # field that contains no function pointer is a false positive.
        inner = base
        if expr.arrow and isinstance(inner, ast.Cast):
            record = self._cast_records.get(id(inner))
            if record is not None and \
                    not contains_function_pointer(ftype):
                record.member_nonfptr = True
        return expr

    def _check_cast(self, expr: ast.Cast) -> ast.Expr:
        operand = self._check_expr(expr.operand)
        expr.operand = operand
        expr.ctype = expr.target_type
        self._record_cast(expr, operand, expr.target_type, explicit=True)
        return expr

    def _check_sizeoftype(self, expr: ast.SizeofType) -> ast.Expr:
        if expr.query is None:
            operand = self._check_expr(expr.operand)
            expr.operand = operand
            expr.query = operand.ctype
        expr.ctype = ULONG
        return expr

    def _check_comma(self, expr: ast.Comma) -> ast.Expr:
        expr.left = self._check_expr(expr.left)
        expr.right = self._check_expr(expr.right)
        expr.ctype = expr.right.ctype
        return expr

    # -- conversions ------------------------------------------------------------

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            return expr.binding in ("local", "param", "global")
        if isinstance(expr, (ast.Index, ast.Member)):
            return True
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return True
        return False

    def _coerce(self, expr: ast.Expr, target: Type,
                context: str = "assign") -> ast.Expr:
        """Insert an implicit cast if ``expr`` needs conversion to ``target``."""
        source = decay(expr.ctype)
        if canonical(source) == canonical(target):
            return expr
        if isinstance(target, FloatType) and is_integer(source):
            return self._implicit_cast(expr, DOUBLE, context)
        if is_integer(target) and isinstance(source, FloatType):
            return self._implicit_cast(expr, target, context)
        if is_integer(target) and is_integer(source):
            return self._implicit_cast(expr, target, context)
        if is_pointer(target) and is_pointer(source):
            return self._implicit_cast(expr, target, context)
        if is_pointer(target) and is_integer(source):
            return self._implicit_cast(expr, target, context)
        if is_integer(target) and is_pointer(source):
            return self._implicit_cast(expr, target, context)
        raise TypeError_(
            f"cannot convert {expr.ctype} to {target}", expr.line)

    def _implicit_cast(self, expr: ast.Expr, target: Type,
                       context: str = "") -> ast.Expr:
        cast = ast.Cast(line=expr.line, target_type=target, operand=expr,
                        explicit=False)
        cast.ctype = target
        self._record_cast(cast, expr, target, explicit=False,
                          context=context)
        return cast

    def _record_cast(self, cast: ast.Cast, operand: ast.Expr, target: Type,
                     explicit: bool, context: str = "") -> None:
        source = decay(operand.ctype) if operand.ctype else VOID
        if canonical(source) == canonical(target):
            return
        if not (contains_function_pointer(source)
                or contains_function_pointer(target)):
            return
        record = CastRecord(
            line=cast.line, src=source, dst=target, explicit=explicit,
            unit=self.unit.name,
            function=self.current_function.name if self.current_function
            else "")
        operand_core = operand
        if isinstance(operand_core, ast.Unary) and operand_core.op == "&":
            operand_core = operand_core.operand
        if isinstance(operand_core, ast.Ident) and \
                operand_core.binding == "func":
            record.operand_func = operand_core.name
        if isinstance(operand_core, ast.IntLit) and operand_core.value == 0:
            record.operand_zero = True
        if isinstance(operand_core, ast.Call) and \
                operand_core.direct_name in ALLOCATORS:
            record.via_alloc = True
        if context == "free-arg":
            record.via_free = True
        if context in ("assign", "init", "arg", "return") and \
                is_function_pointer(target):
            record.assign_to_fptr = True
        self.out.casts.append(record)
        self._cast_records[id(cast)] = record


def check(unit: ast.TranslationUnit) -> CheckedUnit:
    """Type-check a translation unit and collect semantic facts.

    Mirrors :func:`repro.tinyc.parser.parse`'s stack discipline: the
    checker recurses over expression trees the parser was allowed to
    build deep, so raise the limit the same way — and degrade to a
    clean diagnostic (never a ``RecursionError`` traceback) on inputs
    deep enough to exhaust even that.
    """
    import sys
    limit = sys.getrecursionlimit()
    if limit < 20000:
        sys.setrecursionlimit(20000)
    try:
        return Checker(unit).check()
    except RecursionError:
        raise TypeError_("program nesting too deep") from None
    finally:
        sys.setrecursionlimit(limit)
