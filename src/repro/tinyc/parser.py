"""TinyC recursive-descent parser.

Covers the C subset the MCFI evaluation depends on: full declarator
syntax (function pointers, pointer-to-pointer, arrays), struct/union/
enum/typedef, switch (lowered to jump tables), variadic prototypes, and
both explicit casts and the initializer forms whose implicit casts the
C1 analyzer inspects.

Deliberate omissions (documented in DESIGN.md): the preprocessor,
bitfields, K&R definitions, computed goto, and local brace
initializers.  ``const``/``volatile``/``extern``/``static`` are parsed
and (except for ``static`` on functions) ignored.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ParseError
from repro.tinyc import ast
from repro.tinyc.lexer import Token, tokenize
from repro.tinyc.types import (
    ArrayType,
    CHAR,
    DOUBLE,
    FuncType,
    INT,
    IntType,
    LONG,
    PointerType,
    SHORT,
    StructType,
    Type,
    TypeTable,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    VOID,
)

_TYPE_KEYWORDS = frozenset("""
    void char short int long unsigned signed double float
    struct union enum
""".split())

_QUALIFIERS = frozenset(["const", "volatile"])
_STORAGE = frozenset(["static", "extern", "typedef"])


class Parser:
    """One-translation-unit parser; reusable via :func:`parse`."""

    def __init__(self, source: str, name: str = "unit",
                 types: Optional[TypeTable] = None) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.name = name
        self.types = types if types is not None else TypeTable()
        self.enum_constants: dict[str, int] = {}

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, found {actual.text!r}",
                             actual.line, actual.column)
        return token

    def at_type_start(self) -> bool:
        token = self.peek()
        if token.kind == "keyword" and (token.text in _TYPE_KEYWORDS or
                                        token.text in _QUALIFIERS or
                                        token.text in _STORAGE):
            return True
        return token.kind == "ident" and self.types.is_typedef(token.text)

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(name=self.name)
        while self.peek().kind != "eof":
            self._parse_external(unit)
        return unit

    def _parse_external(self, unit: ast.TranslationUnit) -> None:
        line = self.peek().line
        if self.accept("keyword", "typedef"):
            base = self.parse_type_specifiers()
            name, ctype = self.parse_declarator(base)
            if not name:
                raise ParseError("typedef needs a name", line, 0)
            self.types.typedef(name, ctype)
            self.expect("op", ";")
            return
        is_static = False
        while True:
            if self.accept("keyword", "static"):
                is_static = True
            elif self.accept("keyword", "extern"):
                pass
            else:
                break
        base = self.parse_type_specifiers()
        if self.accept("op", ";"):
            return  # bare struct/union/enum definition
        while True:
            name, ctype = self.parse_declarator(base)
            if isinstance(ctype, FuncType):
                if self.peek().kind == "op" and self.peek().text == "{":
                    param_names = list(self._last_param_names)
                    body = self.parse_block()
                    unit.funcs.append(ast.FuncDef(
                        line=line, name=name, ftype=ctype,
                        param_names=param_names,
                        body=body, is_static=is_static))
                    return
                unit.decls.append(ast.FuncDecl(line=line, name=name,
                                               ftype=ctype))
            else:
                init = None
                if self.accept("op", "="):
                    init = self.parse_initializer()
                unit.globals.append(ast.GlobalVar(line=line, name=name,
                                                  ctype=ctype, init=init))
            if self.accept("op", ","):
                continue
            self.expect("op", ";")
            return

    def parse_initializer(self):
        if self.peek().kind == "op" and self.peek().text == "{":
            self.advance()
            items = []
            if not (self.peek().kind == "op" and self.peek().text == "}"):
                while True:
                    items.append(self.parse_initializer())
                    if not self.accept("op", ","):
                        break
                    if self.peek().kind == "op" and self.peek().text == "}":
                        break  # trailing comma
            self.expect("op", "}")
            return items
        return self.parse_assignment()

    # -- types and declarators -------------------------------------------------

    def parse_type_specifiers(self) -> Type:
        """Parse the specifier part: base type + struct/union/enum defs."""
        token = self.peek()
        line = token.line
        while self.peek().kind == "keyword" and \
                self.peek().text in _QUALIFIERS:
            self.advance()
        token = self.peek()
        if token.kind == "ident" and self.types.is_typedef(token.text):
            self.advance()
            return self.types.typedefs[token.text]
        if token.kind != "keyword":
            raise ParseError(f"expected type, found {token.text!r}",
                             token.line, token.column)
        if token.text in ("struct", "union"):
            return self._parse_struct_or_union()
        if token.text == "enum":
            return self._parse_enum()
        # Primitive type: collect keywords.
        words: List[str] = []
        while self.peek().kind == "keyword" and \
                self.peek().text in _TYPE_KEYWORDS and \
                self.peek().text not in ("struct", "union", "enum"):
            words.append(self.advance().text)
        while self.peek().kind == "keyword" and \
                self.peek().text in _QUALIFIERS:
            self.advance()
        if not words:
            raise ParseError("expected type specifier", line, 0)
        return _primitive_of(words, line)

    def _parse_struct_or_union(self) -> Type:
        keyword = self.advance().text
        is_union = keyword == "union"
        tag_token = self.accept("ident")
        tag = tag_token.text if tag_token else f"__anon{self.pos}"
        struct = self.types.struct(tag, is_union=is_union)
        if self.peek().kind == "op" and self.peek().text == "{":
            self.advance()
            fields: List[Tuple[str, Type]] = []
            while not (self.peek().kind == "op" and self.peek().text == "}"):
                base = self.parse_type_specifiers()
                while True:
                    name, ctype = self.parse_declarator(base)
                    fields.append((name, ctype))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
            self.expect("op", "}")
            struct.define(fields)
        return struct

    def _parse_enum(self) -> Type:
        self.advance()  # 'enum'
        self.accept("ident")  # optional tag (enums are just ints)
        if self.peek().kind == "op" and self.peek().text == "{":
            self.advance()
            next_value = 0
            while not (self.peek().kind == "op" and self.peek().text == "}"):
                name = self.expect("ident").text
                if self.accept("op", "="):
                    next_value = self._parse_constant_int()
                self.enum_constants[name] = next_value
                next_value += 1
                if not self.accept("op", ","):
                    break
            self.expect("op", "}")
        return INT

    def _parse_constant_int(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.peek()
        if token.kind == "int" or token.kind == "char":
            self.advance()
            value = int(token.value)  # type: ignore[arg-type]
        elif token.kind == "ident" and token.text in self.enum_constants:
            self.advance()
            value = self.enum_constants[token.text]
        else:
            raise ParseError("expected integer constant", token.line,
                             token.column)
        return -value if negative else value

    def parse_declarator(self, base: Type) -> Tuple[str, Type]:
        """Parse a (possibly abstract) declarator over ``base``.

        Returns ``(name, type)``; ``name`` is "" for abstract
        declarators (casts, parameter types without names).
        """
        self._last_param_names: List[str] = []
        name, wrap = self._declarator_inner(base)
        return name, wrap(base)

    def _declarator_inner(self, base: Type) -> Tuple[str, Callable[[Type], Type]]:
        # Pointer prefix: applies closest to the base type.
        pointers = 0
        while self.accept("op", "*"):
            pointers += 1
            while self.peek().kind == "keyword" and \
                    self.peek().text in _QUALIFIERS:
                self.advance()

        token = self.peek()
        inner_wrap: Optional[Callable[[Type], Type]] = None
        name = ""
        if token.kind == "ident" and not self.types.is_typedef(token.text):
            name = self.advance().text
        elif token.kind == "op" and token.text == "(" and \
                self._is_grouping_paren():
            self.advance()
            name, inner_wrap = self._declarator_inner(base)
            self.expect("op", ")")

        # Suffixes: arrays and parameter lists, applied left-to-right.
        suffixes: List[Callable[[Type], Type]] = []
        while True:
            if self.accept("op", "["):
                if self.peek().kind == "op" and self.peek().text == "]":
                    length = 0
                else:
                    length = self._parse_constant_int()
                self.expect("op", "]")
                suffixes.append(
                    lambda t, n=length: ArrayType(element=t, length=n))
            elif self.peek().kind == "op" and self.peek().text == "(" and \
                    self._paren_is_params():
                self.advance()
                params, variadic, param_names = self._parse_params()
                if not inner_wrap and name:
                    self._last_param_names = param_names
                suffixes.append(
                    lambda t, p=tuple(params), v=variadic:
                    FuncType(ret=t, params=p, variadic=v))
            else:
                break

        def wrap(ctype: Type) -> Type:
            for _ in range(pointers):
                ctype = PointerType(pointee=ctype)
            for suffix in reversed(suffixes):
                ctype = suffix(ctype)
            if inner_wrap is not None:
                ctype = inner_wrap(ctype)
            return ctype

        return name, wrap

    def _is_grouping_paren(self) -> bool:
        """After a pointer prefix, is ``(`` a grouped declarator?

        It is, unless it starts a parameter list (i.e. the next token is
        a type, ``)``, or ``...``) — that case belongs to the suffix
        loop of the *enclosing* declarator.
        """
        after = self.peek(1)
        if after.kind == "op" and after.text in (")", "..."):
            return False
        if after.kind == "keyword" and (after.text in _TYPE_KEYWORDS or
                                        after.text in _QUALIFIERS):
            return False
        if after.kind == "ident" and self.types.is_typedef(after.text):
            return False
        return True

    def _paren_is_params(self) -> bool:
        return True  # suffix '(' always starts a parameter list

    def _parse_params(self) -> Tuple[List[Type], bool, List[str]]:
        # Parsing each parameter runs a nested declarator, which resets
        # _last_param_names; save/restore so an enclosing declarator's
        # parameter names survive (e.g. functions returning function
        # pointers: ``long (*pick(int up))(long)``).
        saved_names = list(getattr(self, "_last_param_names", []))
        params: List[Type] = []
        names: List[str] = []
        variadic = False
        if self.accept("op", ")"):
            self._last_param_names = saved_names
            return params, variadic, names
        if self.peek().kind == "keyword" and self.peek().text == "void" and \
                self.peek(1).kind == "op" and self.peek(1).text == ")":
            self.advance()
            self.expect("op", ")")
            self._last_param_names = saved_names
            return params, variadic, names
        while True:
            if self.accept("op", "..."):
                variadic = True
                break
            base = self.parse_type_specifiers()
            pname, ctype = self.parse_declarator(base)
            from repro.tinyc.types import decay
            params.append(decay(ctype))
            names.append(pname)
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        self._last_param_names = saved_names
        return params, variadic, names

    # -- statements ------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_token = self.expect("op", "{")
        block = ast.Block(line=open_token.line)
        while not (self.peek().kind == "op" and self.peek().text == "}"):
            block.stmts.extend(self.parse_statement())
        self.expect("op", "}")
        return block

    def parse_statement(self) -> List[ast.Stmt]:
        """Parse one statement; returns a list (declarations may expand)."""
        token = self.peek()
        if token.kind == "op" and token.text == "{":
            return [self.parse_block()]
        if token.kind == "op" and token.text == ";":
            self.advance()
            return []
        if token.kind == "keyword":
            handler = {
                "if": self._parse_if, "while": self._parse_while,
                "do": self._parse_do, "for": self._parse_for,
                "return": self._parse_return, "switch": self._parse_switch,
            }.get(token.text)
            if handler is not None:
                return [handler()]
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return [ast.Break(line=token.line)]
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return [ast.Continue(line=token.line)]
        if self.at_type_start():
            return self._parse_decl_stmt()
        expr = self.parse_expression()
        self.expect("op", ";")
        return [ast.ExprStmt(line=token.line, expr=expr)]

    def _parse_decl_stmt(self) -> List[ast.Stmt]:
        line = self.peek().line
        while self.peek().kind == "keyword" and \
                self.peek().text in _STORAGE:
            self.advance()
        base = self.parse_type_specifiers()
        out: List[ast.Stmt] = []
        while True:
            name, ctype = self.parse_declarator(base)
            init = None
            if self.accept("op", "="):
                if self.peek().kind == "op" and self.peek().text == "{":
                    raise ParseError(
                        "brace initializers are only supported for globals",
                        self.peek().line, self.peek().column)
                init = self.parse_assignment()
            out.append(ast.DeclStmt(line=line, name=name, ctype=ctype,
                                    init=init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return out

    def _parse_if(self) -> ast.Stmt:
        token = self.advance()
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = ast.Block(stmts=self.parse_statement())
        other = None
        if self.accept("keyword", "else"):
            other = ast.Block(stmts=self.parse_statement())
        return ast.If(line=token.line, cond=cond, then=then, other=other)

    def _parse_while(self) -> ast.Stmt:
        token = self.advance()
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = ast.Block(stmts=self.parse_statement())
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_do(self) -> ast.Stmt:
        token = self.advance()
        body = ast.Block(stmts=self.parse_statement())
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(line=token.line, body=body, cond=cond)

    def _parse_for(self) -> ast.Stmt:
        token = self.advance()
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not (self.peek().kind == "op" and self.peek().text == ";"):
            if self.at_type_start():
                stmts = self._parse_decl_stmt()
                init = ast.Block(stmts=stmts)
            else:
                init = ast.ExprStmt(expr=self.parse_expression())
                self.expect("op", ";")
        else:
            self.advance()
        cond = None
        if not (self.peek().kind == "op" and self.peek().text == ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not (self.peek().kind == "op" and self.peek().text == ")"):
            step = self.parse_expression()
        self.expect("op", ")")
        body = ast.Block(stmts=self.parse_statement())
        return ast.For(line=token.line, init=init, cond=cond, step=step,
                       body=body)

    def _parse_return(self) -> ast.Stmt:
        token = self.advance()
        value = None
        if not (self.peek().kind == "op" and self.peek().text == ";"):
            value = self.parse_expression()
        self.expect("op", ";")
        return ast.Return(line=token.line, value=value)

    def _parse_switch(self) -> ast.Stmt:
        token = self.advance()
        self.expect("op", "(")
        expr = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        while not (self.peek().kind == "op" and self.peek().text == "}"):
            if self.accept("keyword", "case"):
                value = self._parse_constant_int()
                self.expect("op", ":")
                current = ast.SwitchCase(line=token.line, value=value)
                cases.append(current)
                continue
            if self.accept("keyword", "default"):
                self.expect("op", ":")
                current = ast.SwitchCase(line=token.line, value=None)
                cases.append(current)
                continue
            if current is None:
                raise ParseError("statement before first case label",
                                 self.peek().line, self.peek().column)
            current.stmts.extend(self.parse_statement())
        self.expect("op", "}")
        return ast.Switch(line=token.line, expr=expr, cases=cases)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept("op", ","):
            right = self.parse_assignment()
            expr = ast.Comma(line=expr.line, left=expr, right=right)
        return expr

    _ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="}

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        token = self.peek()
        if token.kind == "op" and token.text in self._ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(line=token.line, op=token.text, target=left,
                              value=value)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            other = self.parse_conditional()
            return ast.Cond(line=cond.line, cond=cond, then=then, other=other)
        return cond

    _BINARY_LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", "<=", ">", ">="],
        ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ops:
                self.advance()
                right = self.parse_binary(level + 1)
                left = ast.Binary(line=token.line, op=token.text, left=left,
                                  right=right)
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&",
                                                 "++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "keyword" and token.text == "sizeof":
            self.advance()
            if self.peek().kind == "op" and self.peek().text == "(" and \
                    self._paren_starts_type(1):
                self.advance()
                base = self.parse_type_specifiers()
                _, ctype = self.parse_declarator(base)
                self.expect("op", ")")
                return ast.SizeofType(line=token.line, query=ctype)
            operand = self.parse_unary()
            return ast.SizeofType(line=token.line, query=None,
                                  operand=operand)
        if token.kind == "op" and token.text == "(" and \
                self._paren_starts_type(1):
            self.advance()
            base = self.parse_type_specifiers()
            _, ctype = self.parse_declarator(base)
            self.expect("op", ")")
            operand = self.parse_unary()
            return ast.Cast(line=token.line, target_type=ctype,
                            operand=operand, explicit=True)
        return self.parse_postfix()

    def _paren_starts_type(self, ahead: int) -> bool:
        token = self.peek(ahead)
        if token.kind == "keyword" and (token.text in _TYPE_KEYWORDS or
                                        token.text in _QUALIFIERS):
            return True
        return token.kind == "ident" and self.types.is_typedef(token.text)

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind != "op":
                return expr
            if token.text == "(":
                self.advance()
                args: List[ast.Expr] = []
                if not (self.peek().kind == "op" and self.peek().text == ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(line=token.line, callee=expr, args=args)
            elif token.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.text == ".":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=False)
            elif token.text == "->":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=True)
            elif token.text in ("++", "--"):
                self.advance()
                expr = ast.Unary(line=token.line, op=token.text,
                                 operand=expr, postfix=True)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ast.IntLit(line=token.line, value=int(token.value))
        if token.kind == "char":
            self.advance()
            return ast.IntLit(line=token.line, value=int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(line=token.line, value=float(token.value))
        if token.kind == "str":
            self.advance()
            return ast.StrLit(line=token.line, value=bytes(token.value))
        if token.kind == "ident":
            self.advance()
            if token.text in self.enum_constants:
                return ast.IntLit(line=token.line,
                                  value=self.enum_constants[token.text])
            return ast.Ident(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line,
                         token.column)


def parse(source: str, name: str = "unit",
          types: Optional[TypeTable] = None) -> ast.TranslationUnit:
    """Parse TinyC source text into a :class:`TranslationUnit`.

    Recursive descent needs stack proportional to expression nesting;
    raise the interpreter limit so deeply parenthesized programs parse.
    Nesting beyond even the raised limit is a *diagnostic*, not a
    crash: the ``RecursionError`` converts to a clean ParseError.
    """
    import sys
    limit = sys.getrecursionlimit()
    if limit < 20000:
        sys.setrecursionlimit(20000)
    try:
        return Parser(source, name=name, types=types).parse_unit()
    except RecursionError:
        raise ParseError("program nesting too deep") from None
    finally:
        sys.setrecursionlimit(limit)


def _primitive_of(words: List[str], line: int) -> Type:
    """Map a bag of primitive type keywords to a TinyC type."""
    bag = set(words)
    unsigned = "unsigned" in bag
    bag.discard("unsigned")
    bag.discard("signed")
    if bag == {"void"}:
        return VOID
    if bag == {"char"}:
        return UCHAR if unsigned else CHAR
    if bag == {"short"} or bag == {"short", "int"}:
        return USHORT if unsigned else SHORT
    if bag in ({"long"}, {"long", "int"}, {"long", "long"},
               {"long", "long", "int"}):
        return ULONG if unsigned else LONG
    if bag in (set(), {"int"}):
        return UINT if unsigned else INT
    if bag in ({"double"}, {"float"}, {"long", "double"}):
        return DOUBLE
    raise ParseError(f"unsupported type {' '.join(words)!r}", line, 0)
