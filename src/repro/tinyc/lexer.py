"""TinyC lexer.

Produces a flat token list.  TinyC is a C subset: no preprocessor
(modules are standalone sources; shared declarations are injected by
the driver), C89-style tokens plus ``//`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexError

KEYWORDS = frozenset("""
    void char short int long unsigned signed double float
    struct union enum typedef
    if else while do for return break continue switch case default
    sizeof static extern const volatile
""".split())

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: str        # 'ident' | 'keyword' | 'int' | 'float' | 'char' | 'str' | 'op' | 'eof'
    text: str
    line: int
    column: int
    value: object = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> List[Token]:
    """Tokenize TinyC source, raising :class:`LexError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        char = source[pos]
        if char == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if char in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated comment", line, column())
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or
                                    source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column()))
            continue
        if char.isdigit() or (char == "." and pos + 1 < length
                              and source[pos + 1].isdigit()):
            start = pos
            is_float = False
            if source.startswith(("0x", "0X"), pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                digits_end = pos
                while pos < length and source[pos] in "uUlL":
                    pos += 1
                text = source[start:digits_end]
                tokens.append(Token("int", source[start:pos], line,
                                    column(), value=int(text, 16)))
                continue
            while pos < length and source[pos].isdigit():
                pos += 1
            if pos < length and source[pos] == ".":
                is_float = True
                pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            if pos < length and source[pos] in "eE":
                is_float = True
                pos += 1
                if pos < length and source[pos] in "+-":
                    pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            while pos < length and source[pos] in "uUlLfF":
                if source[pos] in "fF":
                    is_float = True
                pos += 1
            text = source[start:pos]
            stripped = text.rstrip("uUlLfF")
            if is_float:
                tokens.append(Token("float", text, line, column(),
                                    value=float(stripped)))
            else:
                tokens.append(Token("int", text, line, column(),
                                    value=int(stripped, 10)))
            continue
        if char == "'":
            value, pos = _char_literal(source, pos, line, column())
            tokens.append(Token("char", source[pos - 1], line, column(),
                                value=value))
            continue
        if char == '"':
            value, pos, line = _string_literal(source, pos, line, column())
            tokens.append(Token("str", "<string>", line, column(),
                                value=value))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator, line, column()))
                pos += len(operator)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column())
    tokens.append(Token("eof", "", line, 1))
    return tokens


def _char_literal(source: str, pos: int, line: int, col: int):
    pos += 1  # opening quote
    if pos >= len(source):
        raise LexError("unterminated character literal", line, col)
    if source[pos] == "\\":
        pos += 1
        escape = source[pos]
        if escape not in _ESCAPES:
            raise LexError(f"bad escape \\{escape}", line, col)
        value = _ESCAPES[escape]
        pos += 1
    else:
        value = ord(source[pos])
        pos += 1
    if pos >= len(source) or source[pos] != "'":
        raise LexError("unterminated character literal", line, col)
    return value, pos + 1


def _string_literal(source: str, pos: int, line: int, col: int):
    pos += 1  # opening quote
    out = bytearray()
    while pos < len(source):
        char = source[pos]
        if char == '"':
            return bytes(out), pos + 1, line
        if char == "\n":
            raise LexError("newline in string literal", line, col)
        if char == "\\":
            pos += 1
            escape = source[pos]
            if escape not in _ESCAPES:
                raise LexError(f"bad escape \\{escape}", line, col)
            out.append(_ESCAPES[escape])
            pos += 1
            continue
        out.append(ord(char))
        pos += 1
    raise LexError("unterminated string literal", line, col)
