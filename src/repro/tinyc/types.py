"""TinyC type system with structural equivalence.

MCFI's CFG generation matches the type of a function pointer against
the types of address-taken functions using *structural equivalence*, in
which "named types are replaced by their definitions" (Sec. 6).  This
module implements exactly that: every type has a canonical string form
in which struct/union tags are expanded to their field lists, with
recursive types folded into mu-notation back-references so expansion
terminates.

Two function types match when their canonical forms are equal; a
variadic function pointer additionally matches any address-taken
function whose return type and *fixed* parameter types match (the
paper's variable-argument rule).

The canonical forms are plain strings, so a module's auxiliary type
information is self-contained and modules compiled separately can be
matched during (dynamic) linking with string comparisons — fast enough
for an online CFG generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Type:
    """Base class for TinyC types."""

    #: byte size; overridden per subclass
    size = 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    size = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, repr=False)
class IntType(Type):
    """Integer types.  TinyC computes in 64 bits; sizes matter for memory."""

    name: str
    size: int
    signed: bool = True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class FloatType(Type):
    name: str = "double"
    size: int = 8

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class PointerType(Type):
    pointee: Type
    size: int = 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True, repr=False)
class ArrayType(Type):
    element: Type
    length: int

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.length

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True, repr=False)
class FuncType(Type):
    ret: Type
    params: Tuple[Type, ...]
    variadic: bool = False
    size: int = 0

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.ret}({params})"


@dataclass(eq=False, repr=False)
class StructType(Type):
    """A struct or union.  Nominal identity, structural canonical form.

    Fields may be filled in after construction (forward declarations).
    """

    tag: str
    is_union: bool = False
    fields: List[Tuple[str, Type]] = field(default_factory=list)
    complete: bool = False

    def define(self, fields: List[Tuple[str, Type]]) -> None:
        self.fields = list(fields)
        self.complete = True

    @property
    def size(self) -> int:  # type: ignore[override]
        if not self.complete:
            return 0
        aligned = [_aligned_size(ftype) for _, ftype in self.fields]
        if self.is_union:
            return max(aligned, default=0)
        return sum(aligned)

    def field_type(self, name: str) -> Optional[Type]:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def field_offset(self, name: str) -> Optional[int]:
        if self.is_union:
            return 0 if self.field_type(name) is not None else None
        offset = 0
        for fname, ftype in self.fields:
            if fname == name:
                return offset
            offset += _aligned_size(ftype)
        return None

    def __str__(self) -> str:
        kind = "union" if self.is_union else "struct"
        return f"{kind} {self.tag}"


def _aligned_size(ctype: Type) -> int:
    """Field size rounded to 8 bytes (simple, uniform layout)."""
    return max(8, (ctype.size + 7) & ~7)


# -- primitive singletons ----------------------------------------------------

VOID = VoidType()
CHAR = IntType("char", 1)
UCHAR = IntType("unsigned char", 1, signed=False)
SHORT = IntType("short", 2)
USHORT = IntType("unsigned short", 2, signed=False)
INT = IntType("int", 4)
UINT = IntType("unsigned int", 4, signed=False)
LONG = IntType("long", 8)
ULONG = IntType("unsigned long", 8, signed=False)
DOUBLE = FloatType()

VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)


def is_integer(ctype: Type) -> bool:
    return isinstance(ctype, IntType)


def is_arith(ctype: Type) -> bool:
    return isinstance(ctype, (IntType, FloatType))


def is_pointer(ctype: Type) -> bool:
    return isinstance(ctype, PointerType)


def is_function_pointer(ctype: Type) -> bool:
    return isinstance(ctype, PointerType) and isinstance(ctype.pointee,
                                                         FuncType)


def is_scalar(ctype: Type) -> bool:
    return is_arith(ctype) or is_pointer(ctype)


def decay(ctype: Type) -> Type:
    """Array-to-pointer and function-to-pointer decay."""
    if isinstance(ctype, ArrayType):
        return PointerType(ctype.element)
    if isinstance(ctype, FuncType):
        return PointerType(ctype)
    return ctype


def contains_function_pointer(ctype: Type,
                              _seen: Optional[set] = None) -> bool:
    """Does ``ctype`` contain a function pointer, transitively?

    Looks through struct/union fields, array elements and one level of
    data pointers.  Used by the C1 analyzer to decide whether a cast
    "involves function pointer types" (Sec. 6, conditions).
    """
    if _seen is None:
        _seen = set()
    if is_function_pointer(ctype):
        return True
    if isinstance(ctype, PointerType):
        return contains_function_pointer(ctype.pointee, _seen)
    if isinstance(ctype, ArrayType):
        return contains_function_pointer(ctype.element, _seen)
    if isinstance(ctype, StructType):
        if id(ctype) in _seen:
            return False
        _seen.add(id(ctype))
        return any(contains_function_pointer(ftype, _seen)
                   for _, ftype in ctype.fields)
    return False


# -- canonical forms ---------------------------------------------------------

def canonical(ctype: Type, _stack: Optional[List[StructType]] = None) -> str:
    """Canonical string form with named types structurally expanded.

    Recursive struct references are rendered as ``mu<k>`` where ``k`` is
    the enclosing struct's depth on the expansion stack, so equal
    recursive structures canonicalize identically regardless of tags.
    """
    if _stack is None:
        _stack = []
    if isinstance(ctype, VoidType):
        return "void"
    if isinstance(ctype, IntType):
        # Width + signedness is the identity of an integer type: the
        # type-matching rule must not conflate int with long.
        return f"{'i' if ctype.signed else 'u'}{ctype.size * 8}"
    if isinstance(ctype, FloatType):
        return "f64"
    if isinstance(ctype, PointerType):
        return "ptr(" + canonical(ctype.pointee, _stack) + ")"
    if isinstance(ctype, ArrayType):
        return f"arr({canonical(ctype.element, _stack)},{ctype.length})"
    if isinstance(ctype, FuncType):
        params = ",".join(canonical(p, _stack) for p in ctype.params)
        tail = ",..." if ctype.variadic else ""
        return f"fn({canonical(ctype.ret, _stack)};{params}{tail})"
    if isinstance(ctype, StructType):
        for depth, open_struct in enumerate(_stack):
            if open_struct is ctype:
                return f"mu{len(_stack) - depth - 1}"
        if not ctype.complete:
            return f"opaque({ctype.tag})"
        _stack.append(ctype)
        try:
            kind = "union" if ctype.is_union else "struct"
            body = ",".join(canonical(ftype, _stack)
                            for _, ftype in ctype.fields)
            return f"{kind}{{{body}}}"
        finally:
            _stack.pop()
    raise TypeError(f"cannot canonicalize {ctype!r}")


@dataclass(frozen=True)
class FuncSig:
    """Serializable, canonical function signature — the auxiliary type
    information an MCFI module carries for each function and each
    function-pointer call site."""

    ret: str
    params: Tuple[str, ...]
    variadic: bool

    def render(self) -> str:
        params = list(self.params) + (["..."] if self.variadic else [])
        return f"{self.ret}({','.join(params)})"

    @classmethod
    def of(cls, ftype: FuncType) -> "FuncSig":
        return cls(ret=canonical(ftype.ret),
                   params=tuple(canonical(p) for p in ftype.params),
                   variadic=ftype.variadic)


def signatures_match(pointer_sig: FuncSig, function_sig: FuncSig) -> bool:
    """The paper's type-matching rule for indirect calls.

    A call through a pointer of signature ``pointer_sig`` may target a
    function of signature ``function_sig`` when the signatures are
    structurally equal; if the *pointer* is variadic, the function must
    match on return type and on the pointer's fixed parameter prefix.
    """
    if pointer_sig == function_sig:
        return True
    if pointer_sig.variadic:
        fixed = pointer_sig.params
        return (pointer_sig.ret == function_sig.ret
                and function_sig.params[:len(fixed)] == fixed)
    return False


def structurally_equal(left: Type, right: Type) -> bool:
    """Structural type equivalence (named types replaced by definitions)."""
    return canonical(left) == canonical(right)


def is_physical_subtype(concrete: StructType, abstract: StructType) -> bool:
    """Is ``abstract``'s field list a prefix of ``concrete``'s?

    This is the "physical subtype" relation behind the analyzer's
    Upcast (UC) false-positive elimination: a concrete struct sharing
    the abstract struct's prefix of fields may be safely viewed as the
    abstract struct.
    """
    if concrete.is_union or abstract.is_union:
        return False
    if len(abstract.fields) > len(concrete.fields):
        return False
    if not abstract.fields:
        return False
    for (_, abstract_field), (_, concrete_field) in zip(abstract.fields,
                                                        concrete.fields):
        if canonical(abstract_field) != canonical(concrete_field):
            return False
    return True


class TypeTable:
    """Registry of struct/union/enum tags and typedefs for one parse."""

    def __init__(self) -> None:
        self.structs: Dict[str, StructType] = {}
        self.typedefs: Dict[str, Type] = {}

    def struct(self, tag: str, is_union: bool = False) -> StructType:
        key = ("union " if is_union else "struct ") + tag
        existing = self.structs.get(key)
        if existing is None:
            existing = StructType(tag=tag, is_union=is_union)
            self.structs[key] = existing
        return existing

    def typedef(self, name: str, ctype: Type) -> None:
        self.typedefs[name] = ctype

    def is_typedef(self, name: str) -> bool:
        return name in self.typedefs
