"""TinyC abstract syntax tree.

Nodes are plain dataclasses.  Expression nodes gain a ``ctype``
attribute during type checking; the checker also *inserts* implicit
:class:`Cast` nodes (marked ``explicit=False``) so that every type
conversion in the program — explicit or implicit — is visible to the
C1/C2 analyzer as a cast node, mirroring how "LLVM's internal
representation makes all type casts explicit" (Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.tinyc.types import FuncType, Type


@dataclass
class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------

@dataclass
class Expr(Node):
    ctype: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: bytes = b""


@dataclass
class Ident(Expr):
    name: str = ""
    #: filled by the type checker: 'local' | 'param' | 'global' | 'func'
    binding: str = ""


@dataclass
class Unary(Expr):
    op: str = ""                      # - ! ~ * & ++ -- (pre)
    operand: Optional[Expr] = None
    postfix: bool = False


@dataclass
class Binary(Expr):
    op: str = ""                      # + - * / % << >> < <= > >= == != & | ^ && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="                     # = += -= *= /= %= &= |= ^= <<= >>=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Cond(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class Call(Expr):
    callee: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)
    #: filled by the checker: function name for direct calls, else None
    direct_name: Optional[str] = None
    #: canonical signature of the callee function/pointer type
    callee_type: Optional[FuncType] = None


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: Optional[Type] = None
    operand: Optional[Expr] = None
    explicit: bool = True


@dataclass
class SizeofType(Expr):
    query: Optional[Type] = None
    #: for ``sizeof expr`` the checker fills ``query`` from this operand
    operand: Optional[Expr] = None


@dataclass
class Comma(Expr):
    left: Optional[Expr] = None
    right: Optional[Expr] = None


# -- statements --------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration (possibly with an initializer)."""

    name: str = ""
    ctype: Optional[Type] = None
    init: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None       # ExprStmt or DeclStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class SwitchCase(Node):
    """One case arm.  ``value`` is None for ``default``."""

    value: Optional[int] = None
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    expr: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


# -- declarations -------------------------------------------------------------

@dataclass
class FuncDef(Node):
    name: str = ""
    ftype: Optional[FuncType] = None
    param_names: List[str] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False


@dataclass
class FuncDecl(Node):
    """A prototype (possibly of a function defined in another module)."""

    name: str = ""
    ftype: Optional[FuncType] = None


@dataclass
class GlobalVar(Node):
    name: str = ""
    ctype: Optional[Type] = None
    init: Optional[object] = None     # Expr, or list (brace initializer)
    is_extern: bool = False


@dataclass
class TranslationUnit(Node):
    name: str = "unit"
    funcs: List[FuncDef] = field(default_factory=list)
    decls: List[FuncDecl] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)

    def function(self, name: str) -> Optional[FuncDef]:
        for func in self.funcs:
            if func.name == name:
                return func
        return None


def walk_expr(expr: Optional[Expr]):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    if expr is None:
        return
    yield expr
    children: Tuple = ()
    if isinstance(expr, Unary):
        children = (expr.operand,)
    elif isinstance(expr, Binary):
        children = (expr.left, expr.right)
    elif isinstance(expr, Assign):
        children = (expr.target, expr.value)
    elif isinstance(expr, Cond):
        children = (expr.cond, expr.then, expr.other)
    elif isinstance(expr, Call):
        children = (expr.callee, *expr.args)
    elif isinstance(expr, Index):
        children = (expr.base, expr.index)
    elif isinstance(expr, Member):
        children = (expr.base,)
    elif isinstance(expr, Cast):
        children = (expr.operand,)
    elif isinstance(expr, Comma):
        children = (expr.left, expr.right)
    for child in children:
        yield from walk_expr(child)


def walk_stmts(stmt: Optional[Stmt]):
    """Yield ``stmt`` and all nested statements, pre-order."""
    if stmt is None:
        return
    yield stmt
    if isinstance(stmt, Block):
        for inner in stmt.stmts:
            yield from walk_stmts(inner)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        yield from walk_stmts(stmt.other)
    elif isinstance(stmt, While):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, DoWhile):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, For):
        yield from walk_stmts(stmt.init)
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            for inner in case.stmts:
                yield from walk_stmts(inner)


def stmt_exprs(stmt: Stmt):
    """Yield the top-level expressions appearing directly in ``stmt``."""
    if isinstance(stmt, ExprStmt) and stmt.expr is not None:
        yield stmt.expr
    elif isinstance(stmt, DeclStmt) and stmt.init is not None:
        yield stmt.init
    elif isinstance(stmt, If) and stmt.cond is not None:
        yield stmt.cond
    elif isinstance(stmt, (While, DoWhile)) and stmt.cond is not None:
        yield stmt.cond
    elif isinstance(stmt, For):
        for expr in (stmt.cond, stmt.step):
            if expr is not None:
                yield expr
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield stmt.value
    elif isinstance(stmt, Switch) and stmt.expr is not None:
        yield stmt.expr
