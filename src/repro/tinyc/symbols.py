"""Scoped symbol table for the TinyC checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import TypeError_
from repro.tinyc.types import Type


@dataclass
class Symbol:
    name: str            # source name
    unique: str          # mangled unique name (locals/params)
    ctype: Type
    kind: str            # 'local' | 'param' | 'global' | 'func'


class SymbolTable:
    """Nested lexical scopes with unique renaming of locals.

    Locals are renamed ``name$k`` so that after checking, every local
    in a function has a distinct flat name — the MIR lowering then needs
    no scope handling of its own.
    """

    def __init__(self) -> None:
        self._scopes: List[Dict[str, Symbol]] = [{}]
        self._counter = 0

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        self._scopes.pop()

    def declare(self, name: str, ctype: Type, kind: str,
                line: int = 0) -> Symbol:
        scope = self._scopes[-1]
        if name in scope and kind in ("local", "param"):
            raise TypeError_(f"redeclaration of {name!r}", line)
        if kind in ("local", "param"):
            self._counter += 1
            unique = f"{name}${self._counter}"
        else:
            unique = name
        symbol = Symbol(name=name, unique=unique, ctype=ctype, kind=kind)
        scope[name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None
