"""The MCFI module: assembled code + data + auxiliary information.

An :class:`McfiModule` is the unit of separate compilation: it can be
statically linked with other modules (:mod:`repro.linker.static_linker`)
or loaded at runtime by the dynamic linker.  It is built from a
separately instrumented module's assembly via :func:`build_module`,
which resolves the symbolic site/mark information into the concrete
:class:`~repro.module.auxinfo.AuxInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.instrument import InstrumentedAsm
from repro.isa.assembler import Assembled
from repro.mir.codegen import RawModule
from repro.module.auxinfo import (
    AuxInfo,
    BranchSiteAux,
    FunctionAux,
    RetSiteAux,
)


@dataclass
class DataLayout:
    """Addresses assigned to globals, strings and GOT slots."""

    base: int
    size: int
    symbols: Dict[str, int] = field(default_factory=dict)
    image: bytes = b""
    #: writable region offset bounds within the image (rodata excluded)
    rodata_end: int = 0


@dataclass
class McfiModule:
    """One loadable MCFI module."""

    name: str
    arch: str
    base: int
    code: bytes
    aux: AuxInfo
    #: module-local site number -> byte offset of its Bary-index immediate
    bary_slots: Dict[int, int]
    labels: Dict[str, int]
    #: code ranges (absolute) that are instructions, for the verifier
    code_ranges: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.code)

    @property
    def limit(self) -> int:
        return self.base + len(self.code)


def build_module(raw: RawModule, instrumented: InstrumentedAsm,
                 assembled: Assembled, site_base: int = 0,
                 instrumented_mode: bool = True) -> McfiModule:
    """Resolve assembly output into a concrete :class:`McfiModule`.

    ``site_base`` offsets the module-local site numbers into the global
    Bary numbering chosen by the linker/loader.
    """
    labels = assembled.labels
    aux = AuxInfo()

    for meta in raw.functions.values():
        entry = labels[meta.entry_label or meta.name]
        taken = meta.address_taken or meta.name in raw.taken_names
        aux.functions[meta.name] = FunctionAux(
            name=meta.name, sig=meta.sig, entry=entry,
            address_taken=taken, exported=meta.exported,
            module=meta.module or raw.name)
        if meta.exported:
            aux.exports[meta.name] = entry

    # Return sites: the Mark("retsite", ...) binds to the address
    # immediately after the call instruction.  Indirect-call marks carry
    # the pointer signature as a third element.
    for info, address in assembled.marks_of("retsite"):
        if len(info) == 3:
            caller, callee, sig = info
        else:
            caller, callee = info
            sig = None
        aux.retsites.append(RetSiteAux(address=address, caller=caller,
                                       callee=callee, sig=sig))

    for site_info in instrumented.sites:
        targets = tuple(labels[t] for t in site_info.targets)
        aux.branch_sites.append(BranchSiteAux(
            site=site_base + site_info.site, kind=site_info.kind,
            fn=site_info.fn, sig=site_info.sig, targets=targets,
            plt_symbol=site_info.plt_symbol,
            ptargets=site_info.ptargets))

    for label in instrumented.setjmp_resumes:
        aux.setjmp_resumes.append(labels[label])

    aux.direct_calls = list(raw.direct_calls)
    aux.imports = list(raw.imports)

    # Jump-table data ranges (skipped by the verifier's disassembly).
    starts = dict(assembled.marks_of("jt_start"))
    ends = dict(assembled.marks_of("jt_end"))
    for table_label, start in starts.items():
        aux.data_ranges.append((start, ends[table_label]))
    aux.data_ranges.sort()

    code_ranges = _code_ranges(assembled, aux.data_ranges)
    bary_slots = {site_base + local: offset
                  for local, offset in assembled.bary_slots.items()}
    module = McfiModule(
        name=raw.name, arch=raw.arch, base=assembled.base,
        code=assembled.code, aux=aux, bary_slots=bary_slots,
        labels=dict(labels), code_ranges=code_ranges)
    if instrumented_mode and len(bary_slots) != len(instrumented.sites):
        raise ValueError(
            f"{raw.name}: {len(instrumented.sites)} sites but "
            f"{len(bary_slots)} patched Bary slots")
    return module


def _code_ranges(assembled: Assembled,
                 data_ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Complement of the data ranges within the module image."""
    ranges: List[Tuple[int, int]] = []
    cursor = assembled.base
    end = assembled.base + len(assembled.code)
    for start, stop in sorted(data_ranges):
        if start > cursor:
            ranges.append((cursor, start))
        cursor = max(cursor, stop)
    if cursor < end:
        ranges.append((cursor, end))
    return ranges
