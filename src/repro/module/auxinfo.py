"""MCFI auxiliary module information (paper Secs. 4, 6).

"An MCFI module not only contains code and data, but also auxiliary
information" — the types of its functions and function pointers, plus
everything needed to (re)generate a CFG when modules are linked:
address-taken flags, call sites and return sites, jump tables, and
setjmp resume points.  Combining the auxiliary information of two
modules is "a simple union operation" — implemented in
:func:`merge_aux` — which is what makes separate compilation work.

All addresses here are absolute (post-layout).  The auxiliary info also
tells the verifier which address ranges are embedded read-only data
(jump tables), enabling complete disassembly of the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tinyc.types import FuncSig


@dataclass(frozen=True)
class FunctionAux:
    """One function: name, canonical signature, entry, AT flag."""

    name: str
    sig: FuncSig
    entry: int
    address_taken: bool
    exported: bool
    module: str


@dataclass(frozen=True)
class RetSiteAux:
    """The address following a call instruction.

    ``callee`` is the direct callee's name, or None for indirect calls
    (whose possible callees come from type matching).  ``sig`` is set
    for indirect calls.
    """

    address: int
    caller: str
    callee: Optional[str]
    sig: Optional[FuncSig] = None


@dataclass(frozen=True)
class BranchSiteAux:
    """One instrumented indirect branch (a Bary table consumer)."""

    site: int                       # global site number after linking
    kind: str                       # 'ret'|'icall'|'tail'|'switch'|'longjmp'|'plt'
    fn: str
    sig: Optional[FuncSig] = None
    targets: Tuple[int, ...] = ()   # resolved switch-case addresses
    plt_symbol: Optional[str] = None
    #: points-to refinement for icall/tail sites: proven callee names.
    #: Empty means unrefined; the CFG generator intersects a non-empty
    #: hint with the type-matched set (never widening it).
    ptargets: Tuple[str, ...] = ()


@dataclass
class AuxInfo:
    """Auxiliary information for one (possibly merged) module."""

    functions: Dict[str, FunctionAux] = field(default_factory=dict)
    retsites: List[RetSiteAux] = field(default_factory=list)
    branch_sites: List[BranchSiteAux] = field(default_factory=list)
    setjmp_resumes: List[int] = field(default_factory=list)
    #: (caller, callee, is_tail) direct-call edges
    direct_calls: List[Tuple[str, str, bool]] = field(default_factory=list)
    #: address ranges of embedded read-only data (jump tables)
    data_ranges: List[Tuple[int, int]] = field(default_factory=list)
    exports: Dict[str, int] = field(default_factory=dict)
    imports: List[str] = field(default_factory=list)

    @property
    def n_sites(self) -> int:
        return len(self.branch_sites)

    def address_taken_functions(self) -> List[FunctionAux]:
        return [f for f in self.functions.values() if f.address_taken]

    def functions_in(self, module: str) -> List[FunctionAux]:
        return [f for f in self.functions.values() if f.module == module]


def merge_aux(parts: List[AuxInfo]) -> AuxInfo:
    """Union the auxiliary information of several modules.

    Branch sites must already carry globally unique site numbers (the
    linker/loader renumbers before merging).  Exported symbols must not
    collide.
    """
    merged = AuxInfo()
    for part in parts:
        for name, func in part.functions.items():
            if name in merged.functions:
                raise ValueError(f"duplicate function {name!r} when merging")
            merged.functions[name] = func
        merged.retsites.extend(part.retsites)
        merged.branch_sites.extend(part.branch_sites)
        merged.setjmp_resumes.extend(part.setjmp_resumes)
        merged.direct_calls.extend(part.direct_calls)
        merged.data_ranges.extend(part.data_ranges)
        for name, address in part.exports.items():
            if name in merged.exports:
                raise ValueError(f"duplicate export {name!r} when merging")
            merged.exports[name] = address
        merged.imports.extend(part.imports)
    defined = set(merged.functions)
    merged.imports = sorted({name for name in merged.imports
                             if name not in defined})
    sites = [s.site for s in merged.branch_sites]
    if len(sites) != len(set(sites)):
        raise ValueError("branch-site numbers collide after merge")
    return merged
