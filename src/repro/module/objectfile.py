"""MCFI object files: instrument once, reuse across programs.

"The loss of separate compilation is a severe restriction in practice
because libraries cannot be instrumented once and reused across
programs" (Sec. 1).  MCFI fixes that, and this module provides the
artifact that makes it tangible: a compiled (pre-link) module — its
symbolic assembly, metadata and auxiliary type information — saved to a
``.mcfo`` object file that any later link or dlopen can consume without
recompiling, let alone re-instrumenting against the other modules.

Format (v2)::

    MCFOBJ\\0 | version | arch tag | SHA-256 digest | pickled RawModule
     7 bytes |  1 byte |  1 byte  |    32 bytes    |     payload

The digest covers version, arch tag *and* payload, so a stale object
file from an older toolchain or one compiled for the other architecture
mode can never be silently loaded: both are part of the integrity check
and both produce a specific :class:`ObjectFileError`.  Pickle is an
implementation choice (the payload is our own dataclasses, never
untrusted data — the *trust* story for foreign modules is the verifier,
which re-checks every module at load time regardless of provenance).
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Optional, Union

from repro.errors import LinkError
from repro.mir.codegen import RawModule

#: 7-byte magic prefix; the byte after it is the format version.
MAGIC = b"MCFOBJ\x00"
#: Bumped whenever the on-disk layout or the pickled payload schema
#: changes; older files are rejected with a "format version" error.
FORMAT_VERSION = 3

_ARCH_TAGS = {"x32": 0x20, "x64": 0x40}
_TAG_ARCHS = {tag: arch for arch, tag in _ARCH_TAGS.items()}
_DIGEST_BYTES = 32
_HEADER_BYTES = len(MAGIC) + 2 + _DIGEST_BYTES


class ObjectFileError(LinkError):
    """Raised for malformed, stale, cross-arch or corrupted object
    files."""


def _digest(version: int, arch_tag: int, payload: bytes) -> bytes:
    return hashlib.sha256(bytes((version, arch_tag)) + payload).digest()


def dumps(raw: RawModule) -> bytes:
    """Serialize a compiled module to object-file bytes."""
    if raw.arch not in _ARCH_TAGS:
        raise ObjectFileError(f"cannot serialize unknown arch {raw.arch!r}")
    arch_tag = _ARCH_TAGS[raw.arch]
    payload = pickle.dumps(raw, protocol=pickle.HIGHEST_PROTOCOL)
    return (MAGIC + bytes((FORMAT_VERSION, arch_tag))
            + _digest(FORMAT_VERSION, arch_tag, payload) + payload)


def loads(blob: bytes, expect_arch: Optional[str] = None) -> RawModule:
    """Deserialize an object file; verifies magic, format version,
    architecture mode and integrity.

    ``expect_arch`` asserts the compile configuration: loading an
    ``x32`` object where ``x64`` is expected (or vice versa) raises
    instead of handing back a module the link would later choke on.
    """
    if len(blob) < _HEADER_BYTES:
        raise ObjectFileError("object file truncated")
    if blob[:len(MAGIC)] != MAGIC:
        raise ObjectFileError("not an MCFI object file (bad magic)")
    version = blob[len(MAGIC)]
    if version != FORMAT_VERSION:
        raise ObjectFileError(
            f"object file format version v{version} is not supported "
            f"(this toolchain reads v{FORMAT_VERSION}); recompile the "
            f"module")
    arch_tag = blob[len(MAGIC) + 1]
    arch = _TAG_ARCHS.get(arch_tag)
    if arch is None:
        raise ObjectFileError(f"unknown arch tag 0x{arch_tag:02x}")
    if expect_arch is not None and arch != expect_arch:
        raise ObjectFileError(
            f"arch mismatch: object file was compiled for {arch}, "
            f"expected {expect_arch}")
    digest = blob[len(MAGIC) + 2:_HEADER_BYTES]
    payload = blob[_HEADER_BYTES:]
    if _digest(version, arch_tag, payload) != digest:
        raise ObjectFileError("object file corrupted (digest mismatch)")
    raw = pickle.loads(payload)
    if not isinstance(raw, RawModule):
        raise ObjectFileError("object file does not contain a module")
    if raw.arch != arch:
        raise ObjectFileError(
            f"arch mismatch: header says {arch} but the module inside "
            f"was compiled for {raw.arch}")
    return raw


def save(raw: RawModule, path: Union[str, Path]) -> Path:
    """Write a compiled module to ``path`` (conventionally ``.mcfo``)."""
    path = Path(path)
    path.write_bytes(dumps(raw))
    return path


def load(path: Union[str, Path],
         expect_arch: Optional[str] = None) -> RawModule:
    """Read a compiled module back from disk."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise ObjectFileError(f"cannot read {path}: {exc}") from exc
    return loads(blob, expect_arch=expect_arch)


def describe(raw: RawModule) -> str:
    """One-paragraph summary of an object file's contents."""
    lines = [
        f"module {raw.name!r} ({raw.arch})",
        f"  functions : {len(raw.functions)} "
        f"({sum(m.address_taken for m in raw.functions.values())} "
        f"address-taken)",
        f"  globals   : {len(raw.globals)}, strings: {len(raw.strings)}",
        f"  imports   : {', '.join(raw.imports) if raw.imports else '-'}",
        f"  exports   : "
        f"{', '.join(n for n, m in raw.functions.items() if m.exported)}",
    ]
    return "\n".join(lines)
