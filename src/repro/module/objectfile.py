"""MCFI object files: instrument once, reuse across programs.

"The loss of separate compilation is a severe restriction in practice
because libraries cannot be instrumented once and reused across
programs" (Sec. 1).  MCFI fixes that, and this module provides the
artifact that makes it tangible: a compiled (pre-link) module — its
symbolic assembly, metadata and auxiliary type information — saved to a
``.mcfo`` object file that any later link or dlopen can consume without
recompiling, let alone re-instrumenting against the other modules.

Format: an 8-byte magic + format version + SHA-256 integrity digest
over a pickled :class:`~repro.mir.codegen.RawModule`.  Pickle is an
implementation choice (the payload is our own dataclasses, never
untrusted data — the *trust* story for foreign modules is the verifier,
which re-checks every module at load time regardless of provenance).
"""

from __future__ import annotations

import hashlib
import io
import pickle
from pathlib import Path
from typing import Union

from repro.errors import LinkError
from repro.mir.codegen import RawModule

MAGIC = b"MCFOBJ\x00\x01"
_DIGEST_BYTES = 32


class ObjectFileError(LinkError):
    """Raised for malformed, truncated or corrupted object files."""


def dumps(raw: RawModule) -> bytes:
    """Serialize a compiled module to object-file bytes."""
    payload = pickle.dumps(raw, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    return MAGIC + digest + payload


def loads(blob: bytes) -> RawModule:
    """Deserialize an object file; verifies magic and integrity."""
    if len(blob) < len(MAGIC) + _DIGEST_BYTES:
        raise ObjectFileError("object file truncated")
    if blob[:len(MAGIC)] != MAGIC:
        raise ObjectFileError("not an MCFI object file (bad magic)")
    digest = blob[len(MAGIC):len(MAGIC) + _DIGEST_BYTES]
    payload = blob[len(MAGIC) + _DIGEST_BYTES:]
    if hashlib.sha256(payload).digest() != digest:
        raise ObjectFileError("object file corrupted (digest mismatch)")
    raw = pickle.loads(payload)
    if not isinstance(raw, RawModule):
        raise ObjectFileError("object file does not contain a module")
    return raw


def save(raw: RawModule, path: Union[str, Path]) -> Path:
    """Write a compiled module to ``path`` (conventionally ``.mcfo``)."""
    path = Path(path)
    path.write_bytes(dumps(raw))
    return path


def load(path: Union[str, Path]) -> RawModule:
    """Read a compiled module back from disk."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise ObjectFileError(f"cannot read {path}: {exc}") from exc
    return loads(blob)


def describe(raw: RawModule) -> str:
    """One-paragraph summary of an object file's contents."""
    lines = [
        f"module {raw.name!r} ({raw.arch})",
        f"  functions : {len(raw.functions)} "
        f"({sum(m.address_taken for m in raw.functions.values())} "
        f"address-taken)",
        f"  globals   : {len(raw.globals)}, strings: {len(raw.strings)}",
        f"  imports   : {', '.join(raw.imports) if raw.imports else '-'}",
        f"  exports   : "
        f"{', '.join(n for n, m in raw.functions.items() if m.exported)}",
    ]
    return "\n".join(lines)
