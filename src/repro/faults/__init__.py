"""Deterministic fault injection for the MCFI runtime (PR 2).

The fault plane answers the question the paper's design argument
raises but its evaluation cannot: *what happens when the machinery
itself is attacked or fails?*  Every injector is seeded, every
campaign cell replays bit-for-bit, and the one inadmissible outcome —
a forged-edge admission — is detected exactly because the harness
knows the trusted CFG.

Modules:

* :mod:`repro.faults.plane` — named fault points, armed per campaign
  cell (:data:`~repro.faults.plane.NULL_PLANE` in production);
* :mod:`repro.faults.injectors` — the injector taxonomy: bit flips,
  stale versions, version churn, torn update barriers, worker faults;
* :mod:`repro.faults.harness` — one injector against one workload,
  classified into survived / degraded / halted / forged / error;
* :mod:`repro.faults.campaign` — the injector × workload × policy
  matrix through the infra pool, with the survival report artifact;
* :mod:`repro.faults.miscompile` — seeded toolchain-miscompile
  injectors and the verifier-evasion campaign gating the
  :mod:`repro.analysis.binverify` trust boundary (PR 9).
"""

from repro.faults.campaign import (
    render_survival,
    run_fault_campaign,
    write_survival_report,
)
from repro.faults.harness import (
    INJECTORS,
    LOAD_PHASES,
    POLICIES,
    TABLE_WORKLOADS,
    SurvivalRecord,
    run_load_scenario,
    run_table_scenario,
)
from repro.faults.injectors import (
    TornUpdateTransaction,
    bit_flip_injector,
    faulty_job,
    stale_version_injector,
    table_scrubber,
    version_churn_injector,
)
from repro.faults.miscompile import (
    MISCOMPILE_INJECTORS,
    EvasionCell,
    EvasionReport,
    evasion_campaign,
)
from repro.faults.plane import NULL_PLANE, FaultEvent, FaultPlane
from repro.faults.service_injectors import (
    shard_bit_flip_storm,
    version_gap_storm,
)

__all__ = [
    "EvasionCell",
    "EvasionReport",
    "FaultEvent",
    "FaultPlane",
    "INJECTORS",
    "MISCOMPILE_INJECTORS",
    "evasion_campaign",
    "LOAD_PHASES",
    "NULL_PLANE",
    "POLICIES",
    "SurvivalRecord",
    "TABLE_WORKLOADS",
    "TornUpdateTransaction",
    "bit_flip_injector",
    "faulty_job",
    "render_survival",
    "run_fault_campaign",
    "run_load_scenario",
    "run_table_scenario",
    "shard_bit_flip_storm",
    "stale_version_injector",
    "table_scrubber",
    "version_churn_injector",
    "version_gap_storm",
    "write_survival_report",
]
