"""Seeded fault injectors for the ID-table and transaction planes.

Each injector is a scheduler generator task (one corruption per
``yield`` boundary, like the Sec. 4 attacker model) or an
:class:`~repro.core.transactions.UpdateTransaction` variant.  All
randomness flows from an explicit seed, so a campaign cell replays
bit-for-bit.

The taxonomy follows the threat models of EC-CFI (hardware fault
attacks on CFI state) and the paper's own concurrency hazards:

* :func:`bit_flip_injector` — single-bit upsets in stored Tary/Bary
  IDs (rowhammer/ glitching model);
* :func:`stale_version_injector` — rewinds entries to a previous
  version, opening stale-version windows that force check retries;
* :func:`version_churn_injector` — back-to-back refresh transactions,
  the sustained-churn load that a bounded check-retry budget must
  survive (by escalating, not spinning);
* :class:`TornUpdateTransaction` — a Fig. 3 update whose Tary/Bary
  barrier is delayed or dropped, for exercising the ordering property;
* :func:`table_scrubber` — not a fault but the matching defense: a
  periodic audit-and-repair task over the trusted ECN assignment.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.core.idencoding import pack_id
from repro.core.tables import IdTables, bary_index, tary_index
from repro.core.transactions import UpdateLock, UpdateTransaction
from repro.faults.plane import FaultEvent


# ---------------------------------------------------------------------------
# Table-state injectors (scheduler tasks)
# ---------------------------------------------------------------------------

def bit_flip_injector(tables: IdTables, seed: int = 0, flips: int = 1,
                      table: str = "tary", bit_range: int = 32,
                      events: Optional[List[FaultEvent]] = None,
                      ) -> Generator[None, None, None]:
    """Flip one seeded bit per step in ``flips`` distinct live entries.

    Models a hardware fault (EC-CFI's threat): the write happens from
    the *host* side — no sandbox store can reach the tables — directly
    into the stored ID word.  Distinct live entries are chosen without
    replacement, so each corrupted word is exactly one bit away from
    its trusted value (the single-event-upset model the parity-spaced
    ECN encoding is designed to catch).
    """
    rng = random.Random(seed)
    live = sorted(tables.tary_ecns if table == "tary"
                  else tables.bary_ecns)
    if not live:
        return
    chosen = rng.sample(live, min(flips, len(live)))
    for n, key in enumerate(chosen):
        bit = rng.randrange(bit_range)
        if table == "tary":
            index = tary_index(key)
            word = tables.memory.read_tary(index) ^ (1 << bit)
            tables.memory.write_tary(index, word)
            label = f"tary[{key:#x}] bit {bit}"
        else:
            index = bary_index(key)
            word = tables.memory.read_bary(index) ^ (1 << bit)
            tables.memory.write_bary(index, word)
            label = f"bary[{key}] bit {bit}"
        if events is not None:
            events.append(FaultEvent(point=f"table.bitflip.{table}",
                                     sequence=n, detail=label))
        yield


def stale_version_injector(tables: IdTables, seed: int = 0,
                           entries: int = 4, back: int = 1,
                           events: Optional[List[FaultEvent]] = None,
                           ) -> Generator[None, None, None]:
    """Rewind seeded Tary entries to a ``back``-older version.

    A checker hitting such an entry sees valid IDs with mismatched
    version halves — exactly the in-flight-update signature — and must
    retry.  Because no update is actually in flight, the window never
    closes on its own: this is the livelock scenario the bounded retry
    budget escalates out of (or the scrubber repairs).
    """
    rng = random.Random(seed)
    for n in range(entries):
        if not tables.tary_ecns:
            return
        address = rng.choice(sorted(tables.tary_ecns))
        stale_version = (tables.version - back) & 0x3FFF
        word = pack_id(tables.tary_ecns[address], stale_version)
        tables.memory.write_tary(tary_index(address), word)
        if events is not None:
            events.append(FaultEvent(
                point="table.stale-version", sequence=n,
                detail=f"tary[{address:#x}] -> version {stale_version}"))
        yield


def version_churn_injector(tables: IdTables, lock: UpdateLock,
                           rounds: int = 8, batch: int = 2,
                           ) -> Generator[None, None, None]:
    """Run ``rounds`` back-to-back refresh transactions.

    Sustained churn keeps version halves in flux; a checker caught
    between rounds retries repeatedly, which is what the bounded retry
    budget (``DEFAULT_CHECK_RETRIES``) exists to cap.
    """
    from repro.core.transactions import refresh_transaction
    for _ in range(rounds):
        yield from refresh_transaction(tables, lock, batch=batch).run()
        yield


# ---------------------------------------------------------------------------
# Torn update transactions
# ---------------------------------------------------------------------------

class TornUpdateTransaction(UpdateTransaction):
    """An update transaction with an adversarial Tary/Bary barrier.

    ``mode``:

    * ``"delay"`` — the barrier stalls for ``stall`` extra scheduler
      steps, stretching the window where Tary is new but Bary is old;
    * ``"drop"``  — the barrier performs no atomic step at all (no
      yield), modelling a missing fence: the Bary write batch begins in
      the same scheduler step as the last Tary write.

    Neither mode may ever let a concurrent check observe a
    forged-valid edge — the version discipline, not the barrier alone,
    carries that property — which is precisely what the ordering
    property test demonstrates across seeds.
    """

    def __init__(self, *args, mode: str = "delay", stall: int = 16,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if mode not in ("delay", "drop"):
            raise ValueError(f"unknown torn-update mode {mode!r}")
        self.mode = mode
        self.stall = max(0, stall)

    def _barrier(self) -> Generator[None, None, None]:
        if self.mode == "drop":
            return
        for _ in range(1 + self.stall):
            yield


# ---------------------------------------------------------------------------
# The matching defense: periodic table scrubbing
# ---------------------------------------------------------------------------

def table_scrubber(tables: IdTables, lock: UpdateLock,
                   interval: int = 8, rounds: int = 0,
                   counter: Optional[dict] = None,
                   ) -> Generator[None, None, None]:
    """Audit-and-repair task: every ``interval`` steps, rewrite any
    stored ID that disagrees with the trusted ECN assignment.

    Skips audits while an update transaction holds the lock (the
    tables are legitimately mid-rewrite then).  ``rounds`` of 0 runs
    forever (until the scheduler retires the task); ``counter`` (if
    given) accumulates ``{"repairs": n, "audits": n}``.
    """
    done = 0
    while rounds == 0 or done < rounds:
        for _ in range(interval):
            yield
        if lock.held:
            continue
        repaired = tables.scrub()
        done += 1
        if counter is not None:
            counter["audits"] = counter.get("audits", 0) + 1
            counter["repairs"] = counter.get("repairs", 0) + repaired


# ---------------------------------------------------------------------------
# Worker-process faults for the infra pool
# ---------------------------------------------------------------------------

def faulty_job(fn, plan: str, attempt_file: str):
    """Wrap a pool job so chosen attempts fail deterministically.

    ``plan`` is a string of one letter per attempt: ``e`` raise an
    exception, ``c`` crash the worker (``os._exit``), ``t`` wedge (a
    long sleep the pool must time out), ``.`` run ``fn`` normally.
    Attempts beyond the plan run normally.  ``attempt_file`` persists
    the attempt count across worker processes (they share no memory).
    """
    import os
    import time as _time

    def body(*args, **kwargs):
        attempt = 0
        if os.path.exists(attempt_file):
            with open(attempt_file) as fh:
                attempt = int(fh.read() or 0)
        with open(attempt_file, "w") as fh:
            fh.write(str(attempt + 1))
        action = plan[attempt] if attempt < len(plan) else "."
        if action == "e":
            raise RuntimeError(f"injected worker fault (attempt "
                               f"{attempt + 1})")
        if action == "c":
            os._exit(17)
        if action == "t":
            _time.sleep(600)
        return fn(*args, **kwargs)

    return body
