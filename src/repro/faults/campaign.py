"""Fault campaigns: the injector × workload × policy matrix.

Reuses the experiment-orchestration machinery of :mod:`repro.infra`
end to end — jobs fan out across the :class:`~repro.infra.pool.
WorkerPool` (each scenario in its own forked worker, so a harness bug
cannot take the campaign down), records land in a
:class:`~repro.infra.results.ResultStore` JSONL, and the survival
report is regenerated from stored records like every other
``benchmarks/results`` artifact.

The headline number is **forged-edge admissions**: across every
injector under the ``halt`` policy it must be zero, which is the
fail-safe claim of the paper's table design made into a regression
check.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.faults.harness import (
    INJECTORS,
    LOAD_PHASES,
    POLICIES,
    TABLE_WORKLOADS,
    run_load_scenario,
    run_table_scenario,
)
from repro.infra.pool import Job, WorkerPool
from repro.infra.results import ResultStore
from repro.obs import clock

#: Record kind used in the JSONL store for one campaign cell.
RECORD_KIND = "fault"


def _table_cell(injector: str, workload: str, policy: str,
                seed: int, scrub: bool) -> Dict[str, Any]:
    record = run_table_scenario(injector, workload=workload,
                                policy=policy, seed=seed, scrub=scrub)
    return record.to_dict()


def _load_cell(phase: str, policy: str, seed: int,
               scheduled: bool) -> Dict[str, Any]:
    record = run_load_scenario(phase, policy=policy, seed=seed,
                               scheduled=scheduled)
    return record.to_dict()


def run_fault_campaign(injectors: Sequence[str] = INJECTORS,
                       workloads: Sequence[str] = tuple(TABLE_WORKLOADS),
                       policies: Sequence[str] = POLICIES,
                       seeds: Sequence[int] = (0, 1),
                       load_phases: Sequence[str] = LOAD_PHASES,
                       scrub: bool = False,
                       jobs: int = 1,
                       store: Optional[ResultStore] = None,
                       timeout: Optional[float] = 120.0,
                       retries: int = 1) -> Dict[str, Any]:
    """Run the full fault matrix through the worker pool.

    Table-plane cells are ``injectors × workloads × policies × seeds``;
    loader-plane cells are ``load_phases × policies × seeds`` (split
    across inline and scheduled execution by seed parity).  Returns the
    campaign summary; per-cell records go to ``store`` when given.
    """
    for injector in injectors:
        if injector not in INJECTORS:
            raise ValueError(f"unknown injector {injector!r}")
    for phase in load_phases:
        if phase not in LOAD_PHASES:
            raise ValueError(f"unknown load phase {phase!r}")
    pool_jobs: List[Job] = []
    for injector in injectors:
        for workload in workloads:
            for policy in policies:
                for seed in seeds:
                    pool_jobs.append(Job(
                        fn=_table_cell,
                        args=(injector, workload, policy, seed, scrub),
                        id=f"{injector}/{workload}/{policy}/s{seed}",
                        group=injector))
    for phase in load_phases:
        for policy in policies:
            for seed in seeds:
                pool_jobs.append(Job(
                    fn=_load_cell,
                    args=(phase, policy, seed, seed % 2 == 1),
                    id=f"load-{phase}/dlopen/{policy}/s{seed}",
                    group=f"load-{phase}"))
    start = clock.now()
    pool = WorkerPool(workers=max(1, jobs), timeout=timeout,
                      retries=retries, breaker_threshold=4)
    outcomes = pool.run(pool_jobs)
    wall = clock.now() - start
    records: List[Dict[str, Any]] = []
    failures: List[str] = []
    for job, outcome in zip(pool_jobs, outcomes):
        if outcome.ok:
            record = dict(outcome.value)
            records.append(record)
            if store is not None:
                store.append(RECORD_KIND, **record)
        else:
            failures.append(outcome.id)
            if store is not None:
                store.append_job(outcome, cell=job.id)
    outcomes_by_kind: Dict[str, int] = {}
    for record in records:
        key = record.get("outcome", "error")
        outcomes_by_kind[key] = outcomes_by_kind.get(key, 0) + 1
    summary = {
        "kind": "fault-summary",
        "cells": len(pool_jobs),
        "completed": len(records),
        "failures": failures,
        "forged": sum(r.get("forged", 0) for r in records),
        "probes": sum(r.get("probes", 0) for r in records),
        "escalations": sum(r.get("escalations", 0) for r in records),
        "outcomes": outcomes_by_kind,
        "wall_seconds": round(wall, 3),
        "jobs": jobs,
    }
    if store is not None:
        store.append(**summary)
    return summary


# ---------------------------------------------------------------------------
# The survival report artifact
# ---------------------------------------------------------------------------

_COLUMNS = ("outcome", "probes", "forged", "denied", "avail",
            "esc", "quar", "ticks")


def render_survival(records: Sequence[Dict[str, Any]]) -> str:
    """Format fault records as the ``fault_survival.txt`` artifact."""
    cells = [r for r in records if r.get("kind", RECORD_KIND)
             == RECORD_KIND and "injector" in r]
    lines: List[str] = []
    lines.append("MCFI fault-injection survival matrix")
    lines.append("(Modular CFI, PLDI 2014 — Sec. 4 tables under "
                 "injected faults)")
    lines.append("")
    header = (f"{'injector':<14} {'workload':<9} {'policy':<10} "
              f"{'seed':>4}  {'outcome':<9} {'probes':>6} "
              f"{'forged':>6} {'avail':>5} {'esc':>4} {'quar':>4} "
              f"{'rolled':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in sorted(cells, key=lambda r: (r.get("injector", ""),
                                          r.get("workload", ""),
                                          r.get("policy", ""),
                                          r.get("seed", 0))):
        rolled = r.get("rolled_back")
        lines.append(
            f"{r.get('injector', '?'):<14} {r.get('workload', '?'):<9} "
            f"{r.get('policy', '?'):<10} {r.get('seed', 0):>4}  "
            f"{r.get('outcome', '?'):<9} {r.get('probes', 0):>6} "
            f"{r.get('forged', 0):>6} {r.get('availability', 0):>5} "
            f"{r.get('escalations', 0):>4} {r.get('quarantined', 0):>4} "
            f"{'-' if rolled is None else ('yes' if rolled else 'NO'):>6}")
    lines.append("")
    forged = sum(r.get("forged", 0) for r in cells)
    outcomes: Dict[str, int] = {}
    for r in cells:
        key = r.get("outcome", "error")
        outcomes[key] = outcomes.get(key, 0) + 1
    breakdown = ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
    lines.append(f"cells: {len(cells)}  ({breakdown})")
    lines.append(f"probes: {sum(r.get('probes', 0) for r in cells)}  "
                 f"escalations: "
                 f"{sum(r.get('escalations', 0) for r in cells)}  "
                 f"repairs: {sum(r.get('repairs', 0) for r in cells)}")
    lines.append(f"forged-edge admissions: {forged}"
                 + ("" if forged == 0 else "  ** SECURITY FAILURE **"))
    not_rolled = [r for r in cells if r.get("rolled_back") is False]
    if any(r.get("rolled_back") is not None for r in cells):
        lines.append(f"failed loads not rolled back: {len(not_rolled)}")
    lines.append("")
    return "\n".join(lines)


def write_survival_report(records: Sequence[Dict[str, Any]],
                          path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_survival(records), encoding="utf-8")
    return path
