"""Service-aware chaos injectors: shard-scoped storms on live tables.

The PR 2 injectors (:mod:`repro.faults.injectors`) attack one
:class:`~repro.core.tables.IdTables` in isolation.  The self-healing
service plane needs faults that land *while the multi-tenant loop is
running*: corruption storms that hit one shard's bands mid-traffic so
the health monitor's evidence feeds (audit findings, TxCheck
escalations, batch rollbacks) — not the test harness — must notice.

Each storm is a scheduler generator task co-scheduled with the tenants
(via ``ServiceLoop._extra_tasks``), gated by an armed
:class:`~repro.faults.plane.FaultPlane` point:

``service.fault.bitflip``
    Flip one seeded bit in a live stored ID word of a seeded shard —
    the single-event-upset model.  Parity-spaced ECNs guarantee a
    single flip can never alias another in-use class, so the flip is
    either an invalid ID (checks fail safe) or an audit finding.

``service.fault.stale``
    Rewind a live entry to a ``back``-older version: checks on it see
    the in-flight-update signature forever and burn their retry budget
    into a TxCheck escalation (immediate quarantine evidence).

The storms **never raise**: an exception escaping an injector task
would surface as a scheduler fault and kill the whole run.  Target
selection advances the storm's private RNG every period whether or not
the plane fires, so arming ``skip``/``count`` changes *which periods*
fire, never *where* the damage lands — campaigns stay replayable
cell-for-cell.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Generator, List, Optional

from repro.core.idencoding import pack_id
from repro.core.tables import bary_index, tary_index
from repro.faults.plane import FaultEvent, FaultPlane

if TYPE_CHECKING:  # pragma: no cover - avoids a faults<->service cycle
    from repro.service.shards import ShardedIdTables

#: Fault points consumed by the storm tasks below (the request-level
#: points ``service.request.poison`` / ``service.tenant.crash`` and the
#: commit-level ``service.commit`` / ``service.commit.step`` live in
#: the service loop and coalescer respectively).
BITFLIP_POINT = "service.fault.bitflip"
STALE_POINT = "service.fault.stale"


def _pick_target(sharded: "ShardedIdTables", rng: random.Random,
                 table: str):
    """Deterministically pick ``(shard, key)`` among live entries.

    Returns ``(None, None)`` when no shard has live entries of the
    requested table (nothing to corrupt yet — early in the run or
    between dlclose and the next dlopen).
    """
    candidates = []
    for shard in sharded.shards:
        live = (shard.tables.tary_ecns if table == "tary"
                else shard.tables.bary_ecns)
        if live:
            candidates.append((shard, sorted(live)))
    if not candidates:
        return None, None
    shard, live = candidates[rng.randrange(len(candidates))]
    return shard, live[rng.randrange(len(live))]


def shard_bit_flip_storm(sharded: "ShardedIdTables", plane: FaultPlane,
                         active: Callable[[], bool],
                         seed: int = 0, interval: int = 16,
                         table: str = "tary", bit_range: int = 32,
                         events: Optional[List[FaultEvent]] = None,
                         ) -> Generator[None, None, None]:
    """Periodic single-bit flips in live stored IDs of seeded shards.

    Every ``interval`` ticks the storm picks a victim word and, if the
    ``service.fault.bitflip`` point fires, XORs one seeded bit into it
    from the host side (no sandbox store can reach the tables; this
    models hardware upsets and trusted-runtime bugs).  Arm the point
    with ``count=N`` to bound the campaign to N flips.
    """
    rng = random.Random(seed)
    while active():
        for _ in range(max(1, interval)):
            yield
            if not active():
                return
        shard, key = _pick_target(sharded, rng, table)
        if shard is None:
            continue
        bit = rng.randrange(bit_range)
        label = f"shard{shard.index}/{table}{key:#x}^bit{bit}"
        if not plane.should(BITFLIP_POINT, detail=label):
            continue
        memory = shard.tables.memory
        if table == "tary":
            index = tary_index(key)
            memory.write_tary(index, memory.read_tary(index) ^ (1 << bit))
        else:
            index = bary_index(key)
            memory.write_bary(index, memory.read_bary(index) ^ (1 << bit))
        if events is not None:
            events.append(FaultEvent(point=BITFLIP_POINT, sequence=0,
                                     detail=label))


def version_gap_storm(sharded: "ShardedIdTables", plane: FaultPlane,
                      active: Callable[[], bool],
                      seed: int = 0, interval: int = 24, back: int = 1,
                      events: Optional[List[FaultEvent]] = None,
                      ) -> Generator[None, None, None]:
    """Periodic stale-version rewrites of live Tary entries.

    A check transaction reading the victim sees two valid IDs whose
    version halves disagree — the in-flight-update signature — and
    retries until its bounded budget escalates into a
    :class:`~repro.errors.TableIntegrityError`, which the service loop
    reports to the health monitor as quarantine-grade evidence.
    """
    rng = random.Random(seed)
    while active():
        for _ in range(max(1, interval)):
            yield
            if not active():
                return
        shard, address = _pick_target(sharded, rng, "tary")
        if shard is None:
            continue
        tables = shard.tables
        stale_version = (tables.version - back) & 0x3FFF
        label = f"shard{shard.index}/tary{address:#x}@v{stale_version}"
        if not plane.should(STALE_POINT, detail=label):
            continue
        word = pack_id(tables.tary_ecns[address], stale_version)
        tables.memory.write_tary(tary_index(address), word)
        if events is not None:
            events.append(FaultEvent(point=STALE_POINT, sequence=0,
                                     detail=label))
