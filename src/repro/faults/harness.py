"""Fault-scenario harness: one injector against one workload, classified.

Two scenario planes:

* **Table plane** (:func:`run_table_scenario`) — synthetic ID tables
  with parity-spaced ECNs, a probe task issuing check transactions for
  known-allowed and known-denied edges, and one injector interleaved by
  the seeded scheduler.  The classification is exact because the
  trusted assignment is known: a denied probe that the check *allows*
  is a forged-edge admission, the one outcome a CFI runtime may never
  produce.

* **Loader plane** (:func:`run_load_scenario`) — a real compiled
  program that ``dlopen``\\ s a library while the fault plane fails the
  dynamic linker at a chosen phase.  Survival means the program
  observed a failed ``dlopen`` (handle 0) and kept running, and the
  ID tables rolled back byte-identical to the pre-load snapshot.

Outcomes (``SurvivalRecord.outcome``):

==============  ========================================================
``survived``    every probe behaved exactly per the trusted policy
``degraded``    faults were detected and absorbed (denied probes,
                escalations, repairs) — no forged edge, run completed
``halted``      the runtime stopped fail-safe (halt policy)
``forged``      a disallowed edge was admitted — a security failure
``error``       the harness itself faulted (infrastructure problem)
==============  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.core.idencoding import INVALID_ID, parity_ecn
from repro.core.tables import IdTables, tary_index
from repro.core.transactions import (
    CheckResult,
    UpdateLock,
    tx_check_gen,
)
from repro.errors import ReproError, TableIntegrityError
from repro.faults.injectors import (
    TornUpdateTransaction,
    bit_flip_injector,
    stale_version_injector,
    table_scrubber,
    version_churn_injector,
)
from repro.faults.plane import FaultPlane
from repro.obs import scoped as obs_scoped
from repro.vm.memory import TableMemory
from repro.vm.scheduler import GeneratorTask, Scheduler

#: Retry budget for harness probes: small enough that an injected
#: livelock escalates in a few scheduler ticks, large enough that a
#: real in-flight update never trips it.
PROBE_RETRY_BUDGET = 64

#: The injector taxonomy the campaign fans out over.
INJECTORS = (
    "bitflip-tary",      # single-bit upsets in target IDs
    "bitflip-bary",      # single-bit upsets in branch IDs
    "stale-version",     # entries rewound to an older version
    "version-churn",     # sustained back-to-back refresh updates
    "torn-delay",        # update barrier stalled between Tary and Bary
    "torn-drop",         # update barrier dropped entirely
)

#: Violation / escalation policies (mirrors Runtime.violation_policy).
POLICIES = ("halt", "report", "quarantine")

#: Synthetic table shapes: (targets, classes, branch_sites).
TABLE_WORKLOADS: Dict[str, Tuple[int, int, int]] = {
    "dispatch": (48, 6, 12),     # vtable-ish: many classes
    "returns": (32, 2, 8),       # return-heavy: two big classes
}


@dataclass
class SurvivalRecord:
    """Classified outcome of one fault-campaign cell."""

    injector: str
    workload: str
    policy: str
    seed: int
    outcome: str = "survived"
    probes: int = 0
    allowed_ok: int = 0          # allowed edge, admitted (correct)
    denied_ok: int = 0           # denied edge, rejected (correct)
    forged: int = 0              # denied edge ADMITTED (security failure)
    availability: int = 0        # allowed edge rejected (fault absorbed)
    escalations: int = 0         # bounded-retry TableIntegrityError
    quarantined: int = 0         # entries zeroed by quarantine policy
    repairs: int = 0             # scrubber rewrites
    retries: int = 0
    ticks: int = 0
    rolled_back: Optional[bool] = None   # loader plane only
    detail: str = ""
    #: Per-cell metrics snapshot (a :class:`repro.obs.Snapshot` dict):
    #: the timing/retry evidence the survival matrix carries along.
    obs: Optional[Dict[str, Any]] = None

    KIND = "fault"

    def to_dict(self) -> Dict[str, Any]:
        return {k: v for k, v in self.__dict__.items() if v is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SurvivalRecord":
        names = {f for f in cls.__dataclass_fields__}  # noqa: C401
        return cls(**{k: v for k, v in data.items() if k in names})

    def as_dict(self) -> Dict[str, Any]:
        """Deprecated alias for :meth:`to_dict` (one-release shim)."""
        import warnings
        warnings.warn(
            "SurvivalRecord.as_dict() is deprecated; use to_dict()",
            DeprecationWarning, stacklevel=2)
        return self.to_dict()


def _make_tables(workload: str) -> Tuple[IdTables, List[Tuple[int, int]],
                                         List[Tuple[int, int]]]:
    """Build parity-spaced synthetic tables plus probe pairs."""
    targets, classes, sites = TABLE_WORKLOADS[workload]
    tary = {0x1000 + 4 * i: parity_ecn(i % classes)
            for i in range(targets)}
    bary = {s: parity_ecn(s % classes) for s in range(sites)}
    tables = IdTables(TableMemory())
    tables.install(tary, bary)
    allowed = [(s, a) for s in bary for a in tary
               if bary[s] == tary[a]]
    denied = [(s, a) for s in bary for a in tary
              if bary[s] != tary[a]]
    # A deterministic, bounded probe set.
    return tables, allowed[:24], denied[:24]


def _injector_tasks(name: str, tables: IdTables, lock: UpdateLock,
                    seed: int) -> List[GeneratorTask]:
    if name == "bitflip-tary":
        gen = bit_flip_injector(tables, seed=seed, flips=3, table="tary")
    elif name == "bitflip-bary":
        gen = bit_flip_injector(tables, seed=seed, flips=2, table="bary")
    elif name == "stale-version":
        gen = stale_version_injector(tables, seed=seed, entries=3)
    elif name == "version-churn":
        gen = version_churn_injector(tables, lock, rounds=6, batch=2)
    elif name in ("torn-delay", "torn-drop"):
        mode = "delay" if name == "torn-delay" else "drop"
        tx = TornUpdateTransaction(
            tables, lock, new_tary=dict(tables.tary_ecns),
            new_bary=dict(tables.bary_ecns), batch=2, mode=mode,
            stall=24, owner=name)
        gen = tx.run()
    else:
        raise ValueError(f"unknown injector {name!r}")
    return [GeneratorTask(gen, name=f"inject:{name}")]


def run_table_scenario(injector: str, workload: str = "dispatch",
                       policy: str = "halt", seed: int = 0,
                       rounds: int = 3, scrub: bool = False,
                       max_ticks: int = 2_000_000) -> SurvivalRecord:
    """One campaign cell on the table plane."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    record = SurvivalRecord(injector=injector, workload=workload,
                            policy=policy, seed=seed)
    # Each cell runs under a fresh scoped registry, so the snapshot
    # attached to the record is this cell's evidence alone (check
    # retries, lock hold steps, update counts) — and the seeded tracer
    # keeps the whole thing deterministic.
    with obs_scoped(seed=seed) as obs_state:
        try:
            return _run_table_scenario(record, injector, workload,
                                       policy, seed, rounds, scrub,
                                       max_ticks)
        finally:
            record.obs = obs_state.metrics.snapshot().to_dict()


def _run_table_scenario(record: SurvivalRecord, injector: str,
                        workload: str, policy: str, seed: int,
                        rounds: int, scrub: bool,
                        max_ticks: int) -> SurvivalRecord:
    tables, allowed, denied = _make_tables(workload)
    lock = UpdateLock()

    def probe_task():
        probes = [(s, a, True) for s, a in allowed] + \
                 [(s, a, False) for s, a in denied]
        for _ in range(rounds):
            for site, address, expect in probes:
                sink: List[Tuple[str, int]] = []
                try:
                    yield from tx_check_gen(
                        tables, site, address, sink,
                        max_retries=PROBE_RETRY_BUDGET)
                except TableIntegrityError:
                    record.escalations += 1
                    if policy == "halt":
                        raise
                    if policy == "quarantine":
                        # Fail-safe: retire the unverifiable entry so
                        # later probes deny instead of re-escalating.
                        tables.memory.write_tary(tary_index(address),
                                                 INVALID_ID)
                        record.quarantined += 1
                    continue
                result, retries = sink[0]
                record.probes += 1
                record.retries += retries
                if result == CheckResult.ALLOWED:
                    if expect:
                        record.allowed_ok += 1
                    else:
                        record.forged += 1
                else:
                    if expect:
                        record.availability += 1
                    else:
                        record.denied_ok += 1
            yield

    scheduler = Scheduler(seed=seed,
                          weights={f"inject:{injector}": 4.0})
    scheduler.add_generator(probe_task(), name="probe")
    for task in _injector_tasks(injector, tables, lock, seed):
        scheduler.add(task)
    if scrub:
        counter: Dict[str, int] = {}
        # Bounded rounds: an unbounded scrubber would keep the
        # scheduler alive after the probe task retires.
        scheduler.add_generator(
            table_scrubber(tables, lock, interval=4, rounds=512,
                           counter=counter),
            name="scrubber")
    outcome = scheduler.run(max_ticks=max_ticks)
    record.ticks = outcome.ticks
    if scrub:
        record.repairs = counter.get("repairs", 0)
    if record.forged:
        record.outcome = "forged"
        record.detail = "forged-edge admission"
    elif isinstance(outcome.fault, TableIntegrityError):
        record.outcome = "halted"
        record.detail = str(outcome.fault)
    elif outcome.fault is not None:
        record.outcome = "error"
        record.detail = str(outcome.fault)
    elif record.availability or record.escalations or record.repairs \
            or record.quarantined:
        record.outcome = "degraded"
    else:
        record.outcome = "survived"
    return record


# ---------------------------------------------------------------------------
# Loader plane
# ---------------------------------------------------------------------------

#: Phases of the dynamic linker's dlopen protocol the plane can fail.
LOAD_PHASES = ("prepare", "cfg", "update", "got", "seal")

_LOADER_MAIN = {"main": """
    int libfn(int x);
    int main(void) {
        long h = dlopen("plugin");
        if (h == 0) { print_str("LOAD-FAILED"); return 99; }
        print_int(libfn(10));
        return 0;
    }
"""}

_LOADER_LIB = "int libfn(int x) { return x * 3 + 1; }"


@lru_cache(maxsize=None)
def _loader_artifacts():
    from repro.build import build_program, compile_object
    program = build_program(_LOADER_MAIN, mcfi=True,
                            allow_unresolved=["libfn"]).program
    library = compile_object(_LOADER_LIB, name="plugin")
    return program, library


def snapshot_tables(runtime) -> Tuple[bytes, bytes]:
    """Byte snapshot of both ID tables (the rollback ground truth)."""
    return (bytes(runtime.tables.tary), bytes(runtime.tables.bary))


def run_load_scenario(phase: str, policy: str = "halt", seed: int = 0,
                      scheduled: bool = False) -> SurvivalRecord:
    """Fail a mid-load dlopen at ``phase`` and classify the recovery."""
    if phase not in LOAD_PHASES:
        raise ValueError(f"unknown load phase {phase!r}")
    record = SurvivalRecord(injector=f"load-{phase}", workload="dlopen",
                            policy=policy, seed=seed)
    with obs_scoped(seed=seed) as obs_state:
        try:
            return _run_load_scenario(record, phase, policy, seed,
                                      scheduled)
        finally:
            record.obs = obs_state.metrics.snapshot().to_dict()


def _run_load_scenario(record: SurvivalRecord, phase: str, policy: str,
                       seed: int, scheduled: bool) -> SurvivalRecord:
    from repro.linker.dynamic_linker import DynamicLinker
    from repro.runtime.runtime import Runtime

    program, library = _loader_artifacts()
    runtime = Runtime(program, violation_policy=policy)
    plane = FaultPlane(seed=seed).arm(f"dlopen.{phase}")
    linker = DynamicLinker(runtime, fault_plane=plane)
    linker.register("plugin", library)
    before = snapshot_tables(runtime)
    try:
        if scheduled:
            result = runtime.run_scheduled(seed=seed)
        else:
            result = runtime.run()
    except ReproError as exc:
        record.outcome = "error"
        record.detail = f"{type(exc).__name__}: {exc}"
        return record
    after = snapshot_tables(runtime)
    record.rolled_back = (before == after)
    record.probes = 1
    fired = plane.fired(f"dlopen.{phase}")
    if not record.rolled_back:
        record.outcome = "forged"
        record.detail = "tables diverged after failed load"
    elif result.exit_code == 99 and b"LOAD-FAILED" in result.output \
            and fired:
        record.outcome = "degraded"
        record.detail = f"dlopen failed at {phase}, program continued"
    elif result.violation is not None or result.violations:
        record.outcome = "halted"
        record.detail = "violation during recovery"
    else:
        record.outcome = "error"
        record.detail = (f"unexpected exit={result.exit_code} "
                         f"output={result.output[:32]!r} fired={fired}")
    return record
