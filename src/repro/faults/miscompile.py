"""Seeded miscompile injection and the verifier-evasion campaign (PR 9).

The binary verifier (:mod:`repro.analysis.binverify`) claims to remove
the rewriter from the TCB.  This module attacks that claim: each
injector models one way a buggy or malicious toolchain stage could
emit plausible-looking machine code that violates the CFI contract,
and :func:`evasion_campaign` measures whether the trust boundary
holds.  Every cell is classified into exactly one outcome:

* ``rejected``  — the verifier refused the mutated module (good);
* ``contained`` — the verifier accepted it, but the runtime trapped
  the divergence (CFI check, sandbox mask, memory fault) — the
  defense-in-depth layer below the verifier held;
* ``benign``    — accepted, and the run is bit-identical to the clean
  run (the mutation was semantics-preserving, e.g. flipping a Bary
  immediate the loader overwrites, or high table-word bits the
  ``movzx32`` mask discards);
* ``undetected``— accepted, divergent, and untrapped.  **The one
  inadmissible outcome**; the CI gate requires zero of these.

All randomness flows from ``random.Random(f"{workload}:{injector}:
{seed}")`` so every cell replays bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.binverify import analyze_module, image_of_module
from repro.errors import ReproError
from repro.isa.disasm import DecodedInstr, sweep_ranges
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.obs import OBS

#: Outcomes that count as "the system caught it".
DETECTED = ("rejected", "contained")

OUTCOMES = ("rejected", "contained", "benign", "undetected",
            "inapplicable")


@dataclass
class MutationContext:
    """Everything an injector may inspect, computed once per workload."""

    module: object                  # McfiModule
    decoded: List[DecodedInstr]
    check_spans: List[Tuple[int, int]]
    aux_targets: frozenset
    label_addrs: frozenset
    boundaries: frozenset

    @classmethod
    def of(cls, module) -> "MutationContext":
        decoded = sweep_ranges(module.code, module.base,
                               module.code_ranges)
        report = analyze_module(module)
        if not report.ok:
            raise ReproError(
                f"clean module {module.name} does not verify; "
                f"campaign baseline is broken: {report.first_error()}")
        image = image_of_module(module)
        return cls(module=module, decoded=decoded,
                   check_spans=list(report.check_spans),
                   aux_targets=image.aux_targets,
                   label_addrs=image.label_addrs,
                   boundaries=frozenset(d.address for d in decoded))

    def offset(self, address: int) -> int:
        return address - self.module.base


#: injector(ctx, rng) -> (mutated_code, detail) | None when no site fits
Injector = Callable[[MutationContext, random.Random],
                    Optional[Tuple[bytes, str]]]


def check_flip(ctx: MutationContext, rng: random.Random):
    """Flip one bit somewhere inside a random intact check transaction.

    Models a single-event upset (or an off-by-one patch) landing in
    the Fig. 4 sequence itself.  Flips inside the Bary-slot immediate
    are benign — the loader re-patches those words at install time.
    """
    if not ctx.check_spans:
        return None
    start, end = rng.choice(ctx.check_spans)
    address = rng.randrange(start, end)
    bit = rng.randrange(8)
    code = bytearray(ctx.module.code)
    code[ctx.offset(address)] ^= 1 << bit
    return bytes(code), f"bit {bit} of {address:#x} in span {start:#x}"


def check_splice(ctx: MutationContext, rng: random.Random):
    """NOP out one whole instruction of a check transaction.

    Models a rewriter that "optimised away" part of the sequence —
    including the ``movzx32`` mask immediately before the span, which
    is what makes the checked register's ID well-formed.
    """
    if not ctx.check_spans:
        return None
    start, end = rng.choice(ctx.check_spans)
    candidates = [d for d in ctx.decoded if start <= d.address < end]
    before = [d for d in ctx.decoded
              if d.end == start and d.instr.op == Op.MOVZX32]
    candidates.extend(before)
    victim = rng.choice(candidates)
    code = bytearray(ctx.module.code)
    off = ctx.offset(victim.address)
    code[off:off + victim.length] = bytes([Op.NOP]) * victim.length
    return bytes(code), (f"spliced {victim.instr.spec.mnemonic} at "
                         f"{victim.address:#x} out of span {start:#x}")


def mask_strip(ctx: MutationContext, rng: random.Random):
    """Remove one ``movzx32`` sandbox mask (two NOPs in its place).

    A store whose base register loses its mask can reach the table and
    code regions — exactly what MCFI006 exists to prove impossible.
    Prefers non-``%rcx`` masks (store-base masks) so the surviving
    check transactions stay intact and only the store discipline is
    violated.
    """
    masks = [d for d in ctx.decoded if d.instr.op == Op.MOVZX32]
    if not masks:
        return None
    preferred = [d for d in masks if d.instr.operands[0]
                 not in (Reg.RCX, Reg.RSP, Reg.RBP)]
    victim = rng.choice(preferred or masks)
    code = bytearray(ctx.module.code)
    off = ctx.offset(victim.address)
    code[off:off + victim.length] = bytes([Op.NOP]) * victim.length
    return bytes(code), (f"stripped movzx32 "
                         f"{Reg(victim.instr.operands[0])!s} at "
                         f"{victim.address:#x}")


def reloc_skew(ctx: MutationContext, rng: random.Random):
    """Skew one direct branch/call relocation by a few bytes.

    Models a linker applying a relocation against the wrong anchor.
    Re-rolls while the skewed target happens to land on another
    declared label: such a skew is a *semantic* miscompile outside any
    CFI verifier's contract (the target is still a legitimate entry),
    so the injector only emits skews the target discipline must catch.
    """
    directs = [d for d in ctx.decoded
               if d.instr.spec.is_branch and not d.instr.spec.is_indirect]
    if not directs:
        return None
    for _ in range(64):
        victim = rng.choice(directs)
        delta = rng.choice((-3, -2, -1, 1, 2, 3, 5))
        target = victim.instr.branch_target(victim.address) + delta
        if target in ctx.label_addrs and target in ctx.boundaries:
            continue
        off = ctx.offset(victim.address) + 1
        code = bytearray(ctx.module.code)
        rel = int.from_bytes(code[off:off + 4], "little", signed=True)
        code[off:off + 4] = (rel + delta).to_bytes(4, "little",
                                                   signed=True)
        return bytes(code), (f"skewed {victim.instr.spec.mnemonic} at "
                             f"{victim.address:#x} by {delta:+d} to "
                             f"{target:#x}")
    return None


def align_break(ctx: MutationContext, rng: random.Random):
    """Turn an alignment-pad NOP before a declared target into the
    first byte of a multi-byte instruction.

    The declared indirect-branch target stops being an instruction
    boundary: complete disassembly (or the boundary discipline) must
    reject the module, because a runtime jump there would execute
    bytes the verifier never saw as an instruction.
    """
    pads = [d for d in ctx.decoded
            if d.instr.op == Op.NOP and d.length == 1
            and d.end in ctx.aux_targets]
    if not pads:
        return None
    victim = rng.choice(pads)
    code = bytearray(ctx.module.code)
    # MOV_RI's first byte: the decoder now swallows the declared
    # target (and 8 immediate bytes) into one bogus instruction.
    code[ctx.offset(victim.address)] = Op.MOV_RI
    return bytes(code), (f"pad NOP at {victim.address:#x} before "
                         f"target {victim.end:#x} became a mov opcode")


def table_high_flip(ctx: MutationContext, rng: random.Random):
    """Flip a high bit (32..63) of one jump-table data word.

    The upper half of a stored target word is dead under the
    ``movzx32`` load mask, so this mutation is semantics-preserving:
    the expected classification is *benign*, documenting exactly why
    the mask instruction exists.
    """
    ranges = list(ctx.module.aux.data_ranges)
    if not ranges:
        return None
    start, end = rng.choice(ranges)
    words = (end - start) // 8
    if words <= 0:
        return None
    word = start + 8 * rng.randrange(words)
    bit = 32 + rng.randrange(32)
    code = bytearray(ctx.module.code)
    off = ctx.offset(word) + bit // 8
    code[off] ^= 1 << (bit % 8)
    return bytes(code), f"bit {bit} of table word at {word:#x}"


MISCOMPILE_INJECTORS: Dict[str, Injector] = {
    "check_flip": check_flip,
    "check_splice": check_splice,
    "mask_strip": mask_strip,
    "reloc_skew": reloc_skew,
    "align_break": align_break,
    "table_high_flip": table_high_flip,
}


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------

@dataclass
class EvasionCell:
    """One (workload, injector, seed) campaign cell."""

    workload: str
    injector: str
    seed: int
    outcome: str
    detail: str = ""
    diagnostic: str = ""   # first verifier code when rejected
    trap: str = ""         # trapping exception type when contained

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass
class EvasionReport:
    """Campaign result: the detection-rate table plus every cell."""

    arch: str
    cells: List[EvasionCell] = field(default_factory=list)

    @property
    def undetected(self) -> List[EvasionCell]:
        return [c for c in self.cells if c.outcome == "undetected"]

    @property
    def ok(self) -> bool:
        return not self.undetected

    def counts(self, injector: Optional[str] = None) -> Dict[str, int]:
        out = {outcome: 0 for outcome in OUTCOMES}
        for cell in self.cells:
            if injector is None or cell.injector == injector:
                out[cell.outcome] += 1
        return out

    def detection_rate(self, injector: Optional[str] = None) -> float:
        """detected / unsafe, where benign mutations are not unsafe."""
        counts = self.counts(injector)
        unsafe = (counts["rejected"] + counts["contained"]
                  + counts["undetected"])
        if not unsafe:
            return 1.0
        return (counts["rejected"] + counts["contained"]) / unsafe

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "verify-evasion", "arch": self.arch,
                "ok": self.ok,
                "summary": self.counts(),
                "cells": [cell.to_dict() for cell in self.cells]}

    def render(self) -> str:
        lines = [f"{'injector':16s} {'cells':>6s} {'rejected':>9s} "
                 f"{'contained':>10s} {'benign':>7s} {'undet':>6s} "
                 f"{'n/a':>4s} {'detect':>7s}"]
        names = sorted({cell.injector for cell in self.cells})
        for name in names + [None]:
            counts = self.counts(name)
            total = sum(counts.values())
            lines.append(
                f"{name or 'total':16s} {total:6d} "
                f"{counts['rejected']:9d} {counts['contained']:10d} "
                f"{counts['benign']:7d} {counts['undetected']:6d} "
                f"{counts['inapplicable']:4d} "
                f"{100 * self.detection_rate(name):6.1f}%")
        lines.append("")
        lines.append(f"undetected unsafe mutations: "
                     f"{len(self.undetected)}"
                     + ("" if self.ok else "  <-- GATE FAILURE"))
        for cell in self.undetected:
            lines.append(f"  {cell.workload}/{cell.injector}"
                         f"#{cell.seed}: {cell.detail}")
        return "\n".join(lines)


def _classify(program, module, clean_fn, max_steps: int) -> EvasionCell:
    """Verdict + differential oracle for one mutated module.

    ``clean_fn`` lazily produces the memoized reference run — it is
    only invoked when a mutation survives the verifier.
    """
    from repro.runtime.runtime import Runtime

    cell = EvasionCell(workload=module.name, injector="", seed=0,
                       outcome="undetected")
    report = analyze_module(module)
    if not report.ok:
        cell.outcome = "rejected"
        first = report.errors[0]
        cell.diagnostic = first.code
        return cell

    clean = clean_fn()
    mutated_program = dataclasses.replace(program, module=module)
    try:
        result = Runtime(mutated_program).run(max_steps=max_steps)
    except ReproError as exc:        # load-time trap (e.g. W^X, layout)
        cell.outcome = "contained"
        cell.trap = type(exc).__name__
        return cell
    trapped = result.violation or result.fault
    if trapped is not None and "step limit" not in str(trapped):
        cell.outcome = "contained"
        cell.trap = type(trapped).__name__
    elif trapped is None and result.output == clean.output \
            and result.exit_code == clean.exit_code:
        cell.outcome = "benign"
    else:
        cell.outcome = "undetected"
    return cell


def evasion_campaign(workloads: Optional[Sequence[str]] = None,
                     injectors: Optional[Sequence[str]] = None,
                     seeds: Sequence[int] = (0, 1, 2),
                     arch: str = "x64",
                     max_steps: int = 60_000_000) -> EvasionReport:
    """Run the full workload x injector x seed matrix.

    Clean baselines (the verified module and its reference run) are
    computed once per workload; the reference execution is only paid
    for workloads where at least one mutation survives the verifier.
    """
    from repro.experiments import compiled
    from repro.runtime.runtime import Runtime

    if workloads is None:
        from repro.workloads.spec import BENCHMARKS
        workloads = BENCHMARKS
    if injectors is None:
        injectors = list(MISCOMPILE_INJECTORS)

    report = EvasionReport(arch=arch)
    with OBS.tracer.span("faults.evasion_campaign", arch=arch,
                         workloads=len(workloads),
                         injectors=len(injectors)) as span:
        for name in workloads:
            program = compiled(name, arch, True)
            ctx = MutationContext.of(program.module)
            baseline: List = []

            def clean_fn(program=program, baseline=baseline):
                if not baseline:
                    baseline.append(
                        Runtime(program).run(max_steps=max_steps))
                return baseline[0]

            for injector in injectors:
                fn = MISCOMPILE_INJECTORS[injector]
                for seed in seeds:
                    rng = random.Random(f"{name}:{injector}:{seed}")
                    mutation = fn(ctx, rng)
                    if mutation is None:
                        report.cells.append(EvasionCell(
                            workload=name, injector=injector, seed=seed,
                            outcome="inapplicable"))
                        continue
                    code, detail = mutation
                    module = dataclasses.replace(program.module,
                                                 code=code)
                    cell = _classify(program, module, clean_fn,
                                     max_steps)
                    cell.injector, cell.seed = injector, seed
                    cell.detail = detail
                    report.cells.append(cell)
                    OBS.metrics.counter(
                        f"faults.evasion.{cell.outcome}").inc()
        span.set(cells=len(report.cells),
                 undetected=len(report.undetected), ok=report.ok)
    return report
