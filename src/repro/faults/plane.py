"""The deterministic fault-injection plane.

A :class:`FaultPlane` is a seeded registry of *fault points*: named
places in trusted-runtime code (the dynamic linker's load phases, the
infra pool's worker dispatch, the update transaction's barrier) that
ask the plane whether an injected fault should fire *here, now*.  The
production configuration is the inert :data:`NULL_PLANE`, whose checks
cost one attribute lookup and never fire — fault behaviour exists only
when a test or campaign arms a point explicitly.

Determinism is the design center, mirroring the seeded scheduler: a
fault campaign replays exactly from ``(seed, arm spec)``, so a survival
regression is a reproducible artifact rather than a flake.

Fault points currently instrumented::

    dlopen.prepare     module mapped/patched, before sealing
    dlopen.cfg         CFG regeneration over the merged aux info
    dlopen.update      mid update-transaction (tables partially written)
    dlopen.got         between the barrier and the GOT rewrites
    dlopen.seal        after the update, before control returns
    pool.worker        inside a worker process, before the job body
    service.commit         torn batch: drop a shard's whole round
    service.commit.step    torn batch: fail one transaction step
    service.request.poison tenant submits a malformed dlopen write-set
    service.tenant.crash   tenant dies after its dlopen commits
    service.fault.bitflip  storm task flips a bit in a live shard word
    service.fault.stale    storm task rewinds a live entry's version

Every firing is recorded as a :class:`FaultEvent` so reports can state
exactly which faults were exercised (no silent no-op campaigns).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InjectedFault


@dataclass
class FaultEvent:
    """One fault that actually fired."""

    point: str
    sequence: int          # nth check() call on this plane (0-based)
    detail: str = ""

    KIND = "fault-event"

    def to_dict(self) -> Dict[str, object]:
        return {"point": self.point, "sequence": self.sequence,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(point=data["point"], sequence=data["sequence"],
                   detail=data.get("detail", ""))

    def as_dict(self) -> Dict[str, object]:
        """Deprecated alias for :meth:`to_dict` (one-release shim)."""
        import warnings
        warnings.warn(
            "FaultEvent.as_dict() is deprecated; use to_dict()",
            DeprecationWarning, stacklevel=2)
        return self.to_dict()


@dataclass
class _Armed:
    """Arm spec for one point: fire on visits [skip, skip+count)."""

    skip: int = 0
    count: int = 1
    probability: float = 1.0
    visits: int = 0
    fired: int = 0


class FaultPlane:
    """Seeded, armed fault points with an event log.

    ``arm(point, skip=N, count=M)`` fires the point on its (N+1)-th
    through (N+M)-th visit; ``probability`` (with the plane's seed)
    makes firing stochastic-but-replayable.  ``check()`` raises
    :class:`~repro.errors.InjectedFault`; ``should()`` is the
    non-raising variant for faults expressed as data corruption rather
    than control flow.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._armed: Dict[str, _Armed] = {}
        self.events: List[FaultEvent] = []
        self._sequence = 0

    # -- configuration ------------------------------------------------

    def arm(self, point: str, *, skip: int = 0, count: int = 1,
            probability: float = 1.0) -> "FaultPlane":
        if count < 1:
            raise ValueError("count must be >= 1")
        self._armed[point] = _Armed(skip=skip, count=count,
                                    probability=probability)
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    @property
    def armed_points(self) -> List[str]:
        return sorted(self._armed)

    def fired(self, point: Optional[str] = None) -> int:
        if point is None:
            return len(self.events)
        return sum(1 for event in self.events if event.point == point)

    # -- the hot-path API ---------------------------------------------

    def should(self, point: str, detail: str = "") -> bool:
        """True if an armed fault fires at this visit (and log it)."""
        spec = self._armed.get(point)
        self._sequence += 1
        if spec is None:
            return False
        visit = spec.visits
        spec.visits += 1
        if visit < spec.skip or spec.fired >= spec.count:
            return False
        if spec.probability < 1.0 and \
                self._rng.random() >= spec.probability:
            return False
        spec.fired += 1
        self.events.append(FaultEvent(point=point,
                                      sequence=self._sequence - 1,
                                      detail=detail))
        return True

    def check(self, point: str, detail: str = "") -> None:
        """Raise :class:`InjectedFault` if the point fires."""
        if self.should(point, detail=detail):
            raise InjectedFault(point, detail)


class _NullPlane(FaultPlane):
    """The production plane: nothing armed, nothing recorded."""

    def __init__(self) -> None:
        super().__init__(seed=0)

    def arm(self, point: str, **_: object) -> "FaultPlane":
        raise RuntimeError("arm() on the shared NULL_PLANE; create a "
                           "FaultPlane instance instead")

    def should(self, point: str, detail: str = "") -> bool:
        return False

    def check(self, point: str, detail: str = "") -> None:
        return None


#: Shared inert plane — the default wherever a fault_plane is optional.
NULL_PLANE = _NullPlane()
