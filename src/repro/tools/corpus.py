"""``python -m repro corpus`` — the differential corpus CLI.

Drives the seeded TinyC generator + cross-configuration differential
harness (:mod:`repro.workloads.generate`, :mod:`repro.workloads.corpus`)
from the command line::

    python -m repro corpus run gen-smoke --jobs 4
    python -m repro corpus run gen-deep --out findings.jsonl --check
    python -m repro corpus report findings.jsonl
    python -m repro corpus minimize --seed 1729 --category oracle_output
    python -m repro corpus generate --seed 42 --oracle

``run`` executes every member of a registered benchmark set through
the full matrix and (optionally) persists the deterministic findings
JSONL; ``--check`` makes unexplained divergences a non-zero exit so
CI can gate on it.  ``report`` re-renders a stored JSONL.  ``minimize``
regenerates a seed, reproduces a finding of the given category and
delta-debugs the program down to a minimal repro.  ``generate`` is
the debugging workhorse: print one seed's source (and oracle output).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="seeded TinyC differential-testing corpus")
    sub = parser.add_subparsers(dest="mode", required=True)

    run = sub.add_parser("run", help="run a benchmark set through the "
                                     "differential matrix")
    run.add_argument("set", nargs="?", default="gen-smoke",
                     help="registered set name (default: gen-smoke)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="pool workers (default: serial)")
    run.add_argument("--out", default=None, metavar="PATH",
                     help="write deterministic findings JSONL here")
    run.add_argument("--limit", type=int, default=None, metavar="N",
                     help="only the first N members (recorded as "
                          "truncated)")
    run.add_argument("--cache-dir", default=None, metavar="PATH",
                     help="artifact cache for build memoization")
    run.add_argument("--no-lint", action="store_true",
                     help="skip the lint plane axis")
    run.add_argument("--no-incremental", action="store_true",
                     help="skip the incremental-rebuild axis")
    run.add_argument("--no-reference", action="store_true",
                     help="skip the step_reference tier")
    run.add_argument("--check", action="store_true",
                     help="exit 1 if any member diverged or errored")

    rep = sub.add_parser("report", help="render a stored findings "
                                        "JSONL")
    rep.add_argument("path", help="findings JSONL from 'corpus run'")

    mini = sub.add_parser("minimize",
                          help="shrink one seed's divergence to a "
                               "minimal repro")
    mini.add_argument("--seed", type=int, required=True,
                      help="generator seed to reproduce")
    mini.add_argument("--category", default=None, metavar="CAT",
                      help="finding category to preserve (default: "
                           "first finding's)")
    mini.add_argument("--quick", action="store_true",
                      help="use the smoke-sized generator config")
    mini.add_argument("--rounds", type=int, default=4,
                      help="shrink rounds (default: 4)")
    mini.add_argument("--out", default=None, metavar="PATH",
                      help="write the minimized TinyC source here")

    gen = sub.add_parser("generate", help="print one generated "
                                          "program")
    gen.add_argument("--seed", type=int, required=True)
    gen.add_argument("--quick", action="store_true",
                     help="use the smoke-sized generator config")
    gen.add_argument("--oracle", action="store_true",
                     help="also print the oracle's expected output")
    return parser


def _corpus_config(args: argparse.Namespace):
    from repro.workloads.corpus import CorpusConfig

    return CorpusConfig(
        lint=not args.no_lint,
        incremental=not args.no_incremental,
        reference=not args.no_reference,
        cache_dir=args.cache_dir)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads.corpus import render_report, run_set

    report = run_set(args.set, jobs=args.jobs,
                     config=_corpus_config(args),
                     out_path=args.out, limit=args.limit)
    print(render_report(report))
    if args.out:
        print(f"findings -> {args.out}")
    if args.check and not report.ok:
        bad = [r.member for r in report.reports if not r.ok]
        print(f"FAIL: {len(bad)} member(s) with findings: "
              f"{', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.workloads.corpus import load_set_report, render_report

    print(render_report(load_set_report(args.path)))
    return 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    from repro.workloads.corpus import CorpusConfig, \
        DifferentialHarness
    from repro.workloads.generate import GenConfig, generate
    from repro.workloads.minimize import minimize, predicate_for

    config = GenConfig.quick() if args.quick else None
    program = generate(args.seed, config)
    cfg = CorpusConfig()
    report = DifferentialHarness(cfg).run_program(program)
    findings = list(report.findings)
    if args.category is not None:
        findings = [f for f in findings
                    if f.category == args.category]
    if not findings:
        want = args.category or "any category"
        print(f"seed {args.seed} produced no finding ({want}); "
              f"nothing to minimize", file=sys.stderr)
        return 1
    finding = findings[0]
    print(f"minimizing seed {args.seed} "
          f"[{finding.category} @ {finding.cell}] "
          f"from {program.line_count()} lines ...", file=sys.stderr)
    result = minimize(program, predicate_for(finding, cfg),
                      rounds=args.rounds)
    source = result.program.source
    print(f"{result.original_lines} -> {result.minimized_lines} "
          f"lines ({result.attempts} attempts, "
          f"{result.accepted} accepted)", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(source)
        print(f"repro -> {args.out}", file=sys.stderr)
    else:
        print(source, end="")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads.generate import GenConfig, generate

    config = GenConfig.quick() if args.quick else None
    program = generate(args.seed, config)
    print(program.source, end="")
    if args.oracle:
        result = program.evaluate()
        sys.stdout.write("// --- oracle ---\n")
        sys.stdout.write(f"// exit: {result.exit_code}\n")
        for line in result.output.decode("latin-1").splitlines():
            sys.stdout.write(f"// out: {line}\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "report": _cmd_report,
                "minimize": _cmd_minimize, "generate": _cmd_generate}
    try:
        return handlers[args.mode](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
