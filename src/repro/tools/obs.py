"""``python -m repro.tools.obs`` — perf reports over exported traces.

The command-line face of :mod:`repro.obs`:

``report FILE``
    Validate a JSONL trace file and render a per-stage performance
    report (span counts, total/mean durations, subsystem coverage,
    and the metrics snapshot when the trace carries one).  With
    ``--check-schema`` any drift from trace schema v1 is a hard
    failure (exit 1) — CI runs this against the smoke artifact.

``demo``
    Run a small seeded workload that deliberately crosses every
    instrumented layer — toolchain, CFG generation, dynamic linker,
    update transactions, the VM, and the worker pool — export its
    trace, and fail unless at least six subsystems appear.  Under a
    fixed ``--seed`` the exported file is byte-identical across runs.

``catalog``
    Print the span and metric names the instrumentation can emit.

Examples::

    python -m repro.tools.obs demo --seed 0 \\
        --out benchmarks/results/obs_demo_trace.jsonl
    python -m repro.tools.obs report benchmarks/results/obs_demo_trace.jsonl
    python -m repro.tools.obs report trace.jsonl --check-schema
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import SCHEMA_VERSION

#: span-name prefix -> subsystem (everything else maps to itself)
_SUBSYSTEM_ALIASES = {"tx": "transactions"}

#: subsystems a demo trace must cover (the acceptance gate)
DEMO_SUBSYSTEMS = ("toolchain", "cfg", "linker", "transactions", "vm",
                   "pool")

DEFAULT_DEMO_TRACE = "benchmarks/results/obs_demo_trace.jsonl"

#: every span the instrumentation can emit, with its attributes
SPAN_CATALOG = (
    ("toolchain.compile", "module arch", "one TinyC module end to end"),
    ("toolchain.frontend", "", "lex/parse/typecheck"),
    ("toolchain.lower", "", "AST -> MIR"),
    ("toolchain.codegen", "", "MIR -> SimISA + instrumentation"),
    ("toolchain.link", "modules mcfi", "static link of all modules"),
    ("build.session", "modules arch mcfi", "one BuildSession.build call"),
    ("build.frontend", "module", "session frontend (lex/parse/check)"),
    ("build.lower", "module", "session AST -> MIR"),
    ("build.units", "module", "function-grain unit compiles"),
    ("build.mini_frontend", "module dirty",
     "stub-source recheck of dirty bodies"),
    ("build.link", "modules", "unit-grain (re)link"),
    ("cfg.generate", "ibs ibts eqcs", "type-matching CFG generation"),
    ("linker.prepare", "library", "map/patch a library pre-seal"),
    ("linker.cfg", "", "CFG regeneration over merged aux info"),
    ("linker.update", "completed", "table update-transaction steps"),
    ("linker.dlopen", "library status handle", "full dlopen protocol"),
    ("linker.dlclose", "library status", "unload + table erasure"),
    ("tx.update", "owner completed tary_writes bary_writes hold_steps",
     "one update transaction (Fig. 3)"),
    ("vm.run", "thread instructions cycles", "one CPU run loop entry"),
    ("runtime.run", "policy status", "single-threaded program run"),
    ("runtime.run_scheduled", "seed policy status ticks",
     "seeded multi-threaded run"),
    ("pool.job", "job attempt status", "one pool attempt (parent side)"),
    ("experiments.stm", "algorithm iterations", "STM micro-benchmark"),
    ("service.run", "mode tenants shards seed ticks committed",
     "one multi-tenant ServiceLoop run"),
    ("service.round", "round requests shards failed",
     "one coalescer commit round"),
)

#: every metric the instrumentation can emit
METRIC_CATALOG = (
    ("counter", "tx.check.<outcome>", "check transactions by outcome"),
    ("counter", "tx.check.retries", "TxCheck retry loops taken"),
    ("counter", "tx.check.escalations", "checks escalated to violation"),
    ("counter", "tx.updates", "update transactions committed"),
    ("counter", "tables.tary_writes", "Tary slots written (churn)"),
    ("counter", "tables.bary_writes", "Bary slots written (churn)"),
    ("histogram", "tx.lock.wait_steps", "update-lock spin steps"),
    ("histogram", "tx.lock.hold_steps", "update-lock hold duration"),
    ("counter", "build.units", "function units considered"),
    ("counter", "build.unit_hits", "units served from the cache"),
    ("counter", "build.unit_compiled", "units recompiled"),
    ("counter", "build.unit_parallel", "units compiled via the pool"),
    ("counter", "build.splices", "single-unit in-place re-links"),
    ("counter", "cfg.generations", "CFG generation passes"),
    ("gauge", "cfg.eqcs", "EQCs in the latest CFG"),
    ("histogram", "cfg.ibts", "IBTs per generation"),
    ("counter", "vm.runs", "CPU run-loop entries"),
    ("counter", "vm.instructions", "instructions executed"),
    ("counter", "vm.cycles", "cycles consumed"),
    ("counter", "vm.dispatch.blocks_built", "decoded basic blocks built"),
    ("counter", "vm.dispatch.fused_sites", "check sequences fused"),
    ("counter", "runtime.violations.<action>",
     "violations by policy action"),
    ("counter", "linker.dlopens", "successful dlopens"),
    ("counter", "linker.dlcloses", "successful dlcloses"),
    ("counter", "linker.rollbacks", "load-journal rollbacks"),
    ("counter", "linker.quarantines", "modules quarantined"),
    ("counter", "pool.jobs", "jobs completed (final outcomes)"),
    ("counter", "pool.failures", "jobs failed after retries"),
    ("counter", "pool.timeouts", "jobs killed on deadline"),
    ("counter", "pool.crashes", "worker processes that died"),
    ("counter", "pool.retries", "extra attempts spent"),
    ("counter", "pool.breaker_fast_fails", "circuit-breaker skips"),
    ("histogram", "pool.job_seconds", "job wall time (wall clock only)"),
    ("histogram", "pool.backoff_seconds",
     "retry backoff sleeps (wall clock only)"),
    ("counter", "service.shard.commits", "per-shard batched commits"),
    ("counter", "service.shard.rollbacks", "shard snapshot rollbacks"),
    ("counter", "service.coalesce.requests", "update requests accepted"),
    ("counter", "service.coalesce.batched", "requests riding batches"),
    ("counter", "service.coalesce.rounds", "coalescer commit rounds"),
    ("counter", "service.coalesce.backpressure", "submissions rejected"),
    ("histogram", "service.update.latency_ticks",
     "request submit->commit latency (scheduler ticks)"),
    ("histogram", "service.coalesce.round_requests",
     "requests per commit round"),
)


def subsystem(span_name: str) -> str:
    prefix = span_name.split(".", 1)[0]
    return _SUBSYSTEM_ALIASES.get(prefix, prefix)


# ---------------------------------------------------------------------------
# Trace loading + schema validation
# ---------------------------------------------------------------------------

def load_trace(path: Path) -> Tuple[Dict[str, Any], List[Dict[str, Any]],
                                    Optional[Dict[str, Any]], List[str]]:
    """Parse a trace file into (header, spans, metrics, problems)."""
    problems: List[str] = []
    header: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    metrics: Optional[Dict[str, Any]] = None
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return header, spans, metrics, [f"unreadable: {exc}"]
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            problems.append(f"line {lineno}: not an object")
            continue
        records.append(obj)
    if not records:
        return header, spans, metrics, problems + ["empty trace file"]

    first = records[0]
    if first.get("kind") != "trace-header":
        problems.append("first record is not a trace-header")
    else:
        header = first
        records = records[1:]
        version = header.get("version")
        if version != SCHEMA_VERSION:
            problems.append(f"schema version {version!r} != "
                            f"supported {SCHEMA_VERSION}")
        if header.get("clock") not in ("logical", "wall"):
            problems.append(f"unknown clock {header.get('clock')!r}")
        if not isinstance(header.get("spans"), int):
            problems.append("header lacks integer 'spans' count")

    for i, record in enumerate(records):
        kind = record.get("kind")
        if kind == "span":
            missing = [key for key in ("id", "name", "t0", "t1")
                       if key not in record]
            if missing:
                problems.append(f"span record missing {missing}")
                continue
            if record["t1"] < record["t0"]:
                problems.append(f"span {record['id']} ends before "
                                f"it starts")
            spans.append(record)
        elif kind == "metrics":
            if metrics is not None:
                problems.append("multiple metrics records")
            elif i != len(records) - 1:
                problems.append("metrics record is not the final line")
            metrics = record
        elif kind == "trace-header":
            problems.append("duplicate trace-header")
        else:
            problems.append(f"unknown record kind {kind!r}")

    ids = {record["id"] for record in spans}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            problems.append(f"span {record['id']} has dangling parent "
                            f"{parent}")
    declared = header.get("spans")
    if isinstance(declared, int) and declared != len(spans):
        problems.append(f"header declares {declared} spans, "
                        f"file has {len(spans)}")
    return header, spans, metrics, problems


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------

def render_report(header: Dict[str, Any], spans: List[Dict[str, Any]],
                  metrics: Optional[Dict[str, Any]]) -> str:
    clock_kind = header.get("clock", "?")
    unit = "ticks" if clock_kind == "logical" else "s"
    stages: Dict[str, List[float]] = {}
    for record in spans:
        stages.setdefault(record["name"], []).append(
            record["t1"] - record["t0"])
    lines = [f"trace: clock={clock_kind} seed={header.get('seed')} "
             f"spans={len(spans)}"]
    lines.append(f"{'stage':24s} {'count':>6s} {'total':>12s} "
                 f"{'mean':>10s} {'max':>10s}  ({unit})")
    for name in sorted(stages,
                       key=lambda n: -sum(stages[n])):
        durations = stages[name]
        total = sum(durations)
        lines.append(f"{name:24s} {len(durations):6d} {total:12.6g} "
                     f"{total / len(durations):10.6g} "
                     f"{max(durations):10.6g}")
    covered = sorted({subsystem(record["name"]) for record in spans})
    lines.append(f"subsystems ({len(covered)}): {', '.join(covered)}")
    if metrics:
        counters = metrics.get("counters") or {}
        gauges = metrics.get("gauges") or {}
        histograms = metrics.get("histograms") or {}
        if counters or gauges or histograms:
            lines.append("metrics:")
        for key in sorted(counters):
            lines.append(f"  counter   {key:28s} {counters[key]}")
        for key in sorted(gauges):
            lines.append(f"  gauge     {key:28s} {gauges[key]}")
        for key in sorted(histograms):
            h = histograms[key]
            lines.append(f"  histogram {key:28s} n={h['count']} "
                         f"total={h['total']:.6g} min={h['min']:.6g} "
                         f"max={h['max']:.6g}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The demo workload
# ---------------------------------------------------------------------------

_DEMO_MAIN = {"main": """
    int libfn(int x);
    int main(void) {
        long h = dlopen("plugin");
        if (h == 0) { return 99; }
        print_int(libfn(10));
        print_char(' ');
        print_int(libfn(20));
        return 0;
    }
"""}

_DEMO_LIB = "int libfn(int x) { return x * 3 + 1; }"


def _demo_square(x: int) -> int:
    return x * x


def run_demo(seed: Optional[int], out: Path) -> Tuple[str, List[str]]:
    """Run the cross-layer demo; return (trace path, covered subsystems).

    The workload compiles a two-module program, dlopens a plugin during
    execution (exercising CFG regeneration and an update transaction),
    then pushes two jobs through a single worker so pool spans land in
    the same trace deterministically.
    """
    from repro import obs
    from repro.infra.pool import Job, WorkerPool
    from repro.linker.dynamic_linker import DynamicLinker
    from repro.runtime.runtime import Runtime
    from repro.build import build_program, compile_object

    with obs.scoped(seed=seed) as state:
        program = build_program(_DEMO_MAIN, mcfi=True,
                                allow_unresolved=["libfn"]).program
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        linker.register("plugin",
                        compile_object(_DEMO_LIB, name="plugin"))
        result = runtime.run()
        if not result.ok:
            raise RuntimeError(f"demo workload failed: "
                               f"{result.violation or result.fault}")
        pool = WorkerPool(workers=1)
        pool.run([Job(fn=_demo_square, args=(i,), id=f"square-{i}")
                  for i in range(2)])
        path = obs.export_trace(out)
        covered = sorted({subsystem(record["name"])
                          for record in state.tracer.spans})
    return path, covered


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect and exercise the tracing/metrics plane")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report",
                            help="per-stage report over a trace file")
    report.add_argument("trace", type=Path, help="JSONL trace file")
    report.add_argument("--check-schema", action="store_true",
                        help="exit 1 on any schema-v1 drift")

    demo = sub.add_parser("demo",
                          help="traced cross-layer demo workload")
    demo.add_argument("--seed", type=int, default=0,
                      help="logical-clock seed (default 0; "
                           "deterministic trace bytes)")
    demo.add_argument("--wall", action="store_true",
                      help="use the wall clock instead of a seed")
    demo.add_argument("--out", type=Path,
                      default=Path(DEFAULT_DEMO_TRACE),
                      help=f"trace destination "
                           f"(default {DEFAULT_DEMO_TRACE})")

    sub.add_parser("catalog", help="list span and metric names")
    return parser


def _report(args: argparse.Namespace) -> int:
    header, spans, metrics, problems = load_trace(args.trace)
    if problems and args.check_schema:
        for problem in problems:
            print(f"schema drift: {problem}", file=sys.stderr)
        return 1
    if problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
    if not spans and not header:
        print(f"no trace at {args.trace}", file=sys.stderr)
        return 1
    print(f"== obs report: {args.trace} ==")
    print(render_report(header, spans, metrics))
    return 0


def _demo(args: argparse.Namespace) -> int:
    seed = None if args.wall else args.seed
    path, covered = run_demo(seed, args.out)
    print(f"trace written: {path}")
    print(f"subsystems covered ({len(covered)}): {', '.join(covered)}")
    missing = [name for name in DEMO_SUBSYSTEMS if name not in covered]
    if missing:
        print(f"FAILED: demo trace missing subsystems: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


def _catalog() -> int:
    print("== spans ==")
    for name, attrs, desc in SPAN_CATALOG:
        attr_note = f" [{attrs}]" if attrs else ""
        print(f"  {name:24s} {desc}{attr_note}")
    print("== metrics ==")
    for kind, name, desc in METRIC_CATALOG:
        print(f"  {kind:9s} {name:28s} {desc}")
    return 0


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _report(args)
    if args.command == "demo":
        return _demo(args)
    return _catalog()


if __name__ == "__main__":
    sys.exit(main())
