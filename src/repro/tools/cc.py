"""``python -m repro.tools.cc`` — the MCFI compiler driver.

A thin command-line front over the toolchain: compile TinyC sources to
``.mcfo`` object files, link object files and sources into a program,
and optionally run it under the MCFI runtime.

Examples::

    # compile one module to an object file (separate compilation!)
    python -m repro.tools.cc -c mylib.c -o mylib.mcfo

    # link sources and objects, run under MCFI, verify before loading
    python -m repro.tools.cc main.c mylib.mcfo --run --verify

    # native (uninstrumented) baseline
    python -m repro.tools.cc main.c mylib.mcfo --run --native
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.errors import ReproError
from repro.linker.static_linker import link
from repro.mir.codegen import RawModule
from repro.module import objectfile
from repro.runtime.runtime import Runtime
from repro.build import compile_object
from repro.workloads.libc import LIBC_SOURCE


def _load_input(path: Path, arch: str) -> RawModule:
    if path.suffix == ".mcfo":
        return objectfile.load(path)
    source = path.read_text()
    return compile_object(source, name=path.stem, arch=arch)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cc",
        description="MCFI compiler/linker driver (TinyC -> SimISA)")
    parser.add_argument("inputs", nargs="+", type=Path,
                        help="TinyC sources (.c) and/or objects (.mcfo)")
    parser.add_argument("-c", "--compile-only", action="store_true",
                        help="compile a single module to an object file")
    parser.add_argument("-o", "--output", type=Path,
                        help="output path for --compile-only")
    parser.add_argument("--arch", choices=("x32", "x64"), default="x64")
    parser.add_argument("--native", action="store_true",
                        help="link without MCFI instrumentation")
    parser.add_argument("--no-libc", action="store_true",
                        help="do not link simlibc automatically")
    parser.add_argument("--run", action="store_true",
                        help="load and execute the linked program")
    parser.add_argument("--verify", action="store_true",
                        help="run the modular verifier before loading")
    parser.add_argument("--max-steps", type=int, default=50_000_000)
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.compile_only:
            if len(args.inputs) != 1:
                print("error: -c takes exactly one source file",
                      file=sys.stderr)
                return 2
            source_path = args.inputs[0]
            raw = compile_object(source_path.read_text(),
                                 name=source_path.stem, arch=args.arch)
            output = args.output or source_path.with_suffix(".mcfo")
            objectfile.save(raw, output)
            print(f"wrote {output}")
            print(objectfile.describe(raw))
            return 0

        raws = [_load_input(path, args.arch) for path in args.inputs]
        if not args.no_libc:
            raws.append(compile_object(LIBC_SOURCE, name="libc",
                                       arch=args.arch))
        program = link(raws, mcfi=not args.native)
        print(f"linked {len(raws)} modules: {len(program.module.code)} "
              f"bytes of code, "
              f"{len(program.module.aux.branch_sites)} branch sites")
        if not args.run:
            return 0
        runtime = Runtime(program, verify=args.verify)
        result = runtime.run(max_steps=args.max_steps)
        sys.stdout.write(result.output.decode(errors="replace"))
        if result.violation is not None:
            print(f"\n*** CFI violation: {result.violation}",
                  file=sys.stderr)
            return 40
        if result.fault is not None:
            print(f"\n*** fault: {result.fault}", file=sys.stderr)
            return 41
        print(f"\n[exit {result.exit_code}; {result.instructions} "
              f"instructions, {result.cycles} cycles]")
        return result.exit_code or 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
