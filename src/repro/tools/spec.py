"""``python -m repro.tools.spec`` — run the SPEC-shaped benchmark suite.

The command-line face of :mod:`repro.experiments`: run any subset of
the twelve workloads and print the paper's artifacts.

``--jobs N`` fans per-benchmark work across the :mod:`repro.infra`
worker pool and ``--cache-dir`` reuses compiled/instrumented artifacts
across benchmarks, workers and invocations; both leave stdout
byte-identical to a serial run (the campaign summary goes to stderr,
and JSONL records to ``<cache-dir>/results.jsonl``).

Examples::

    python -m repro.tools.spec fig5 --benchmarks gcc lbm
    python -m repro.tools.spec table1
    python -m repro.tools.spec table3 --arch x32 x64
    python -m repro.tools.spec fig5 table3 --jobs 4 --cache-dir .cache/infra
"""

from __future__ import annotations

import argparse
import sys
from typing import List

import repro.experiments as ex
from repro.obs import clock
from repro.workloads.spec import BENCHMARKS

ARTIFACTS = ("fig5", "fig6", "table1", "table2", "table3", "stm", "air",
             "gadgets", "space", "cfggen", "security")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spec",
        description="Regenerate the paper's tables and figures")
    parser.add_argument("artifacts", nargs="+", choices=ARTIFACTS,
                        help="which artifacts to produce")
    parser.add_argument("--benchmarks", nargs="+", default=None,
                        choices=BENCHMARKS, metavar="NAME",
                        help="benchmark subset (default: all twelve)")
    parser.add_argument("--arch", nargs="+", default=["x64"],
                        choices=("x32", "x64"))
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel workers for per-benchmark "
                             "artifacts (default: 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="artifact cache directory: compile and "
                             "instrument each workload once per config "
                             "across invocations")
    return parser


def _print_rows(title: str, rows: dict) -> None:
    print(f"\n== {title} ==")
    for key, value in rows.items():
        print(f"  {key}: {value}")


def _compute(artifact: str, names, archs, jobs: int, store):
    """Per-benchmark artifact results, serial or fanned out."""
    from repro.infra.campaign import PARALLEL_ARTIFACTS, parallel_artifact
    if jobs > 1 and artifact in PARALLEL_ARTIFACTS:
        return parallel_artifact(artifact, names, archs=archs, jobs=jobs,
                                 store=store)
    fetch = {
        "fig5": lambda: ex.fig5_overhead(names, archs=archs),
        "fig6": lambda: ex.fig6_update_overhead(names, arch=archs[0]),
        "table1": lambda: ex.table1_analysis(names),
        "table2": lambda: ex.table2_analysis(names),
        "table3": lambda: ex.table3_cfg_stats(names, archs=archs),
        "gadgets": lambda: ex.gadget_elimination(names, arch=archs[0]),
        "space": lambda: ex.space_overhead(names, arch=archs[0]),
        "cfggen": lambda: ex.cfg_generation_time(names, arch=archs[0]),
    }
    return fetch[artifact]()


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = args.benchmarks or list(BENCHMARKS)
    archs = tuple(args.arch)

    from repro.infra.campaign import configure, default_cache
    from repro.infra.results import ResultStore
    store = None
    preexisting = 0
    if args.cache_dir:
        configure(args.cache_dir)
        cache = default_cache()
        store = ResultStore(cache.root / "results.jsonl")
        preexisting = len(store.records())
    start = clock.now()

    for artifact in args.artifacts:
        if artifact == "fig5":
            results = _compute("fig5", names, archs, args.jobs, store)
            print("\n== Fig. 5: execution overhead ==")
            print(ex.format_fig5(results))
        elif artifact == "fig6":
            results = _compute("fig6", names, archs, args.jobs, store)
            print("\n== Fig. 6: overhead under updates ==")
            for name, result in results.items():
                print(f"  {name:12s} {result.overhead_pct:6.2f}%  "
                      f"({result.updates} updates)")
        elif artifact == "table1":
            reports = _compute("table1", names, archs, args.jobs, store)
            print("\n== Table 1: C1 violations ==")
            for name, report in reports.items():
                print(f"  {name:12s} {report.table1_row()}")
        elif artifact == "table2":
            print("\n== Table 2: K1/K2 ==")
            rows = _compute("table2", names, archs, args.jobs, store)
            for name, row in rows.items():
                print(f"  {name:12s} {row}")
        elif artifact == "table3":
            stats = _compute("table3", names, archs, args.jobs, store)
            print("\n== Table 3: CFG statistics ==")
            for (name, arch), row in stats.items():
                print(f"  {name:12s} {arch}  {row}")
        elif artifact == "stm":
            _print_rows("STM micro-benchmark (normalized)",
                        {k: round(v, 2)
                         for k, v in ex.stm_micro().items()})
        elif artifact == "air":
            _print_rows("AIR comparison",
                        {k: round(v, 5)
                         for k, v in ex.air_comparison(names).items()})
        elif artifact == "gadgets":
            print("\n== gadget elimination ==")
            rows = _compute("gadgets", names, archs, args.jobs, store)
            for name, row in rows.items():
                print(f"  {name:12s} {row['elimination_pct']:6.2f}% "
                      f"({row['native_unique']} unique native gadgets)")
        elif artifact == "space":
            print("\n== space overhead ==")
            rows = _compute("space", names, archs, args.jobs, store)
            for name, row in rows.items():
                print(f"  {name:12s} +{row.code_increase_pct:5.2f}% code, "
                      f"{row.tary_bytes}B Tary")
        elif artifact == "cfggen":
            rows = _compute("cfggen", names, archs, args.jobs, store)
            _print_rows("CFG generation time (s)",
                        {k: round(v, 4) for k, v in rows.items()})
        elif artifact == "security":
            print("\n== security case studies ==")
            for attack, outcomes in ex.security_case_study().items():
                for scheme, (hijacked, blocked) in outcomes.items():
                    print(f"  {attack:18s} {scheme:8s} "
                          f"hijacked={hijacked} blocked={blocked}")

    if args.cache_dir:
        wall = clock.now() - start
        cache = default_cache()
        stats = cache.stats
        if args.jobs > 1 and store is not None:
            # Workers account their own cache traffic; fold it in from
            # the records this invocation appended.
            from repro.infra.cache import CacheStats
            stats = CacheStats()
            for record in store.records()[preexisting:]:
                if record.get("kind") in ("artifact", "build"):
                    stats.hits += record.get("cache_hits", 0) or 0
                    stats.misses += record.get("cache_misses", 0) or 0
            stats.add(cache.stats)
        summary = {"kind": "summary", "command": "spec",
                   "artifacts": list(args.artifacts), "jobs": args.jobs,
                   "wall_seconds": round(wall, 3), **stats.as_dict()}
        if store is not None:
            store.append(**summary)
        print(f"[infra] wall {wall:.2f}s, jobs={args.jobs}, "
              f"artifact cache: {stats.hits} hits / {stats.misses} "
              f"misses ({100.0 * stats.hit_rate:.1f}%)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
