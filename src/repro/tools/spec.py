"""``python -m repro.tools.spec`` — run the SPEC-shaped benchmark suite.

The command-line face of :mod:`repro.experiments`: run any subset of
the twelve workloads and print the paper's artifacts.

Examples::

    python -m repro.tools.spec fig5 --benchmarks gcc lbm
    python -m repro.tools.spec table1
    python -m repro.tools.spec table3 --arch x32 x64
    python -m repro.tools.spec air stm gadgets
"""

from __future__ import annotations

import argparse
import sys
from typing import List

import repro.experiments as ex
from repro.workloads.spec import BENCHMARKS

ARTIFACTS = ("fig5", "fig6", "table1", "table2", "table3", "stm", "air",
             "gadgets", "space", "cfggen", "security")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spec",
        description="Regenerate the paper's tables and figures")
    parser.add_argument("artifacts", nargs="+", choices=ARTIFACTS,
                        help="which artifacts to produce")
    parser.add_argument("--benchmarks", nargs="+", default=None,
                        choices=BENCHMARKS, metavar="NAME",
                        help="benchmark subset (default: all twelve)")
    parser.add_argument("--arch", nargs="+", default=["x64"],
                        choices=("x32", "x64"))
    return parser


def _print_rows(title: str, rows: dict) -> None:
    print(f"\n== {title} ==")
    for key, value in rows.items():
        print(f"  {key}: {value}")


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = args.benchmarks or list(BENCHMARKS)
    for artifact in args.artifacts:
        if artifact == "fig5":
            results = ex.fig5_overhead(names, archs=tuple(args.arch))
            print("\n== Fig. 5: execution overhead ==")
            print(ex.format_fig5(results))
        elif artifact == "fig6":
            results = ex.fig6_update_overhead(names, arch=args.arch[0])
            print("\n== Fig. 6: overhead under updates ==")
            for name, result in results.items():
                print(f"  {name:12s} {result.overhead_pct:6.2f}%  "
                      f"({result.updates} updates)")
        elif artifact == "table1":
            reports = ex.table1_analysis(names)
            print("\n== Table 1: C1 violations ==")
            for name, report in reports.items():
                print(f"  {name:12s} {report.table1_row()}")
        elif artifact == "table2":
            print("\n== Table 2: K1/K2 ==")
            for name, row in ex.table2_analysis(names).items():
                print(f"  {name:12s} {row}")
        elif artifact == "table3":
            stats = ex.table3_cfg_stats(names, archs=tuple(args.arch))
            print("\n== Table 3: CFG statistics ==")
            for (name, arch), row in stats.items():
                print(f"  {name:12s} {arch}  {row}")
        elif artifact == "stm":
            _print_rows("STM micro-benchmark (normalized)",
                        {k: round(v, 2)
                         for k, v in ex.stm_micro().items()})
        elif artifact == "air":
            _print_rows("AIR comparison",
                        {k: round(v, 5)
                         for k, v in ex.air_comparison(names).items()})
        elif artifact == "gadgets":
            print("\n== gadget elimination ==")
            for name, row in ex.gadget_elimination(names).items():
                print(f"  {name:12s} {row['elimination_pct']:6.2f}% "
                      f"({row['native_unique']} unique native gadgets)")
        elif artifact == "space":
            print("\n== space overhead ==")
            for name, row in ex.space_overhead(names).items():
                print(f"  {name:12s} +{row.code_increase_pct:5.2f}% code, "
                      f"{row.tary_bytes}B Tary")
        elif artifact == "cfggen":
            _print_rows("CFG generation time (s)",
                        {k: round(v, 4) for k, v in
                         ex.cfg_generation_time(names).items()})
        elif artifact == "security":
            print("\n== security case studies ==")
            for attack, outcomes in ex.security_case_study().items():
                for scheme, (hijacked, blocked) in outcomes.items():
                    print(f"  {attack:18s} {scheme:8s} "
                          f"hijacked={hijacked} blocked={blocked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
