"""``python -m repro.tools.build`` — the BuildSession front door.

Drives :class:`repro.build.BuildSession` from the command line: build a
workload (or TinyC source files) into a linked program, rebuild it to
show warm/incremental behaviour, and report the function-grain cache
economics.

Examples::

    python -m repro.tools.build --workload sjeng --rebuilds 2
    python -m repro.tools.build --workload sjeng --cache-dir .cache \\
        --cache-max-mb 64 --jobs 4
    python -m repro.tools.build prog.c --run
    python -m repro.tools.build --workload lbm --hash
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.build import BuildResult, BuildSession
from repro.errors import ReproError
from repro.infra.cache import open_cache
from repro.workloads.spec import BENCHMARKS, workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-build",
        description="Incremental compile-as-a-service driver")
    parser.add_argument("inputs", nargs="*", type=Path,
                        help="TinyC source files (module name = stem)")
    parser.add_argument("--workload", choices=BENCHMARKS, default=None,
                        help="build a registry workload instead of files")
    parser.add_argument("--arch", choices=("x32", "x64"), default="x64")
    parser.add_argument("--native", action="store_true",
                        help="build without MCFI instrumentation")
    parser.add_argument("--rebuilds", type=int, default=1, metavar="N",
                        help="extra rebuilds through the same session "
                             "(shows warm hits; default 1)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="function-grain artifact cache directory")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB", help="LRU budget for --cache-dir")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="pool workers for parallel unit compiles")
    parser.add_argument("--hash", action="store_true",
                        help="print the deterministic artifact hash "
                             "(sha256 over code + data image)")
    parser.add_argument("--run", action="store_true",
                        help="load and execute the built program")
    return parser


def artifact_hash(program) -> str:
    """Deterministic digest of a linked program's loadable bytes."""
    h = hashlib.sha256()
    h.update(bytes(program.module.code))
    h.update(bytes(program.data.image))
    h.update(program.entry.to_bytes(8, "little"))
    return h.hexdigest()


def _describe(index: int, result: BuildResult, seconds: float) -> str:
    stats = result.stats
    extra = ""
    if "units" in stats:
        extra = (f", units {stats['unit_hits']}/{stats['units']} hits"
                 f", {stats['unit_compiled']} compiled"
                 f" ({stats['unit_parallel']} via pool)"
                 f", spliced {stats.get('spliced', 0)}")
    return (f"build #{index}: {result.kind:11s} "
            f"{seconds * 1000:8.2f} ms{extra}")


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if bool(args.inputs) == bool(args.workload):
        print("error: give either source files or --workload",
              file=sys.stderr)
        return 2

    sources: Dict[str, str] = {}
    if args.workload:
        sources[args.workload] = workload(args.workload).source
    else:
        for path in args.inputs:
            sources[path.stem] = path.read_text()

    cache = open_cache(args.cache_dir, max_mb=args.cache_max_mb)
    pool = None
    if args.jobs and args.jobs > 1:
        from repro.infra.pool import WorkerPool
        pool = WorkerPool(workers=args.jobs)
    session = BuildSession(arch=args.arch, mcfi=not args.native,
                           cache=cache, pool=pool)
    try:
        result = None
        for index in range(max(1, 1 + args.rebuilds)):
            start = time.perf_counter()
            result = session.build(sources)
            print(_describe(index, result, time.perf_counter() - start))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    program = result.program
    print(f"linked {'+'.join(result.modules)}: "
          f"{len(program.module.code)} bytes of code, "
          f"{len(program.module.aux.branch_sites)} branch sites")
    if args.hash:
        print(f"artifact sha256 {artifact_hash(program)}")
    if cache is not None:
        counts = cache.entry_count()
        print(f"cache: {counts['units']} units, "
              f"{cache.size_bytes() / 1e6:.1f} MB on disk")
    if args.run:
        from repro.toolchain import run_program
        outcome = run_program(program)
        sys.stdout.write(outcome.output.decode(errors="replace"))
        print(f"exit {outcome.exit_code} after {outcome.instructions} "
              f"instructions")
        return 0 if outcome.ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
