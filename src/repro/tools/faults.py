"""``python -m repro.tools.faults`` — the fault-campaign runner CLI.

Drives :mod:`repro.faults` through the same campaign/result-store
machinery as the benchmark matrix: scenarios fan out across the worker
pool, per-cell records land in a JSONL store, and the survival matrix
is (re)generated as a ``benchmarks/results/fault_survival.txt``
artifact.  Exits non-zero on any forged-edge admission, so CI can use
the campaign as the fail-safe regression gate.

Examples::

    python -m repro.tools.faults campaign --jobs 4
    python -m repro.tools.faults campaign \\
        --injectors bitflip-tary stale-version \\
        --workloads dispatch returns --policies halt --no-load
    python -m repro.tools.faults report \\
        --results benchmarks/results/fault_results.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.faults.campaign import (RECORD_KIND, render_survival,
                                   run_fault_campaign,
                                   write_survival_report)
from repro.faults.harness import (INJECTORS, LOAD_PHASES, POLICIES,
                                  TABLE_WORKLOADS)
from repro.infra.results import ResultStore, load_records

DEFAULT_RESULTS_DIR = "benchmarks/results"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Deterministic fault-injection campaigns against "
                    "the MCFI runtime")
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign", help="run the injector × workload × policy matrix")
    campaign.add_argument("--injectors", nargs="+", default=None,
                          choices=INJECTORS, metavar="NAME",
                          help=f"injector subset (default: all; known: "
                               f"{', '.join(INJECTORS)})")
    campaign.add_argument("--workloads", nargs="+", default=None,
                          choices=tuple(TABLE_WORKLOADS),
                          metavar="NAME",
                          help="table workload subset (default: all)")
    campaign.add_argument("--policies", nargs="+", default=None,
                          choices=POLICIES, metavar="POLICY",
                          help="violation policy subset (default: all)")
    campaign.add_argument("--seeds", nargs="+", type=int, default=[0, 1],
                          metavar="N", help="scheduler seeds per cell")
    campaign.add_argument("--load-phases", nargs="+", default=None,
                          choices=LOAD_PHASES, metavar="PHASE",
                          help="dlopen phases to fail (default: all)")
    campaign.add_argument("--no-load", action="store_true",
                          help="skip the loader-plane cells")
    campaign.add_argument("--scrub", action="store_true",
                          help="run the table scrubber alongside "
                               "each table-plane cell")
    campaign.add_argument("--jobs", type=int, default=1, metavar="N")
    campaign.add_argument("--timeout", type=float, default=120.0,
                          metavar="SECONDS", help="per-cell timeout")
    campaign.add_argument("--retries", type=int, default=1,
                          help="extra attempts per failed cell")
    campaign.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR,
                          metavar="DIR",
                          help="where the JSONL store and the survival "
                               "report land")

    report = sub.add_parser(
        "report", help="regenerate the survival matrix from JSONL")
    report.add_argument("--results", default=None, metavar="FILE",
                        help="JSONL file (default: "
                             "<results-dir>/fault_results.jsonl)")
    report.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR,
                        metavar="DIR")
    return parser


def _campaign(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    store = ResultStore(results_dir / "fault_results.jsonl")
    summary = run_fault_campaign(
        injectors=args.injectors or INJECTORS,
        workloads=args.workloads or tuple(TABLE_WORKLOADS),
        policies=args.policies or POLICIES,
        seeds=args.seeds,
        load_phases=() if args.no_load else
        (args.load_phases or LOAD_PHASES),
        scrub=args.scrub, jobs=args.jobs, store=store,
        timeout=args.timeout, retries=args.retries)
    records = [r for r in store.records()
               if r.get("kind") == RECORD_KIND]
    report_path = write_survival_report(
        records, results_dir / "fault_survival.txt")
    print(f"ran {summary['completed']}/{summary['cells']} fault cells "
          f"with {args.jobs} worker(s) in {summary['wall_seconds']}s")
    outcomes = ", ".join(f"{k}={v}" for k, v in
                         sorted(summary["outcomes"].items()))
    print(f"outcomes: {outcomes}")
    print(f"probes: {summary['probes']}  "
          f"escalations: {summary['escalations']}  "
          f"forged-edge admissions: {summary['forged']}")
    print(f"results: {store.path}")
    print(f"report:  {report_path}")
    status = 0
    if summary["failures"]:
        print("FAILED cells: " + ", ".join(summary["failures"]),
              file=sys.stderr)
        status = 1
    if summary["forged"]:
        print(f"SECURITY FAILURE: {summary['forged']} forged-edge "
              "admission(s)", file=sys.stderr)
        status = 1
    return status


def _report(args: argparse.Namespace) -> int:
    path = Path(args.results) if args.results else \
        Path(args.results_dir) / "fault_results.jsonl"
    records = [r for r in load_records(path)
               if r.get("kind") == RECORD_KIND]
    if not records:
        print(f"no fault records at {path}", file=sys.stderr)
        return 1
    print(render_survival(records))
    report_path = write_survival_report(
        records, Path(args.results_dir) / "fault_survival.txt")
    print(f"regenerated {report_path}")
    return 1 if sum(r.get("forged", 0) for r in records) else 0


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "campaign":
        return _campaign(args)
    return _report(args)


if __name__ == "__main__":
    sys.exit(main())
