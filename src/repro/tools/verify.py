"""``python -m repro.tools.verify`` — the binary-verifier CLI.

Runs the machine-code verifier (:mod:`repro.analysis.binverify`) over
the benchmark workloads, and drives the verifier-evasion campaign that
gates the trust boundary: seeded miscompiles must be rejected by the
verifier or contained by the runtime — never silently admitted.

Examples::

    python -m repro.tools.verify run                      # all twelve
    python -m repro.tools.verify run --workloads gcc lbm --json
    python -m repro.tools.verify evasion --seeds 0 1 2 \\
        --out benchmarks/results/verify_evasion.txt
    python -m repro.tools.verify evasion --quick           # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List

from repro.analysis.binverify import analyze_module
from repro.errors import ReproError
from repro.faults.miscompile import MISCOMPILE_INJECTORS, evasion_campaign
from repro.workloads.spec import BENCHMARKS

#: Workload/injector subset for ``evasion --quick`` (the CI smoke gate).
QUICK_WORKLOADS = ("lbm", "libquantum", "bzip2")
QUICK_SEEDS = (0, 1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Binary CFI verification of compiled workloads")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="artifact cache directory (reuses compiled "
                             "programs across runs)")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser(
        "run", help="verify the benchmark workloads (default command)")
    run.add_argument("--workloads", nargs="+", default=None,
                     choices=BENCHMARKS, metavar="NAME",
                     help="workload subset (default: all twelve)")
    run.add_argument("--arch", choices=("x32", "x64"), default="x64")
    run.add_argument("--json", action="store_true",
                     help="emit one JSON document instead of the table")

    evasion = sub.add_parser(
        "evasion", help="seeded miscompile campaign against the "
                        "verifier (exits 1 on any undetected cell)")
    evasion.add_argument("--workloads", nargs="+", default=None,
                         choices=BENCHMARKS, metavar="NAME")
    evasion.add_argument("--injectors", nargs="+", default=None,
                         choices=tuple(MISCOMPILE_INJECTORS),
                         metavar="NAME",
                         help=f"injector subset (known: "
                              f"{', '.join(MISCOMPILE_INJECTORS)})")
    evasion.add_argument("--seeds", nargs="+", type=int,
                         default=[0, 1, 2], metavar="N")
    evasion.add_argument("--arch", choices=("x32", "x64"),
                         default="x64")
    evasion.add_argument("--quick", action="store_true",
                         help="small workload/seed subset for CI")
    evasion.add_argument("--json", action="store_true",
                         help="emit the full cell list as JSON")
    evasion.add_argument("--out", default=None, metavar="PATH",
                         help="also write the detection-rate table to "
                              "this file")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import compiled

    names = args.workloads or list(BENCHMARKS)
    reports = []
    for name in names:
        started = time.perf_counter()
        program = compiled(name, args.arch, True)
        report = analyze_module(program.module)
        elapsed = (time.perf_counter() - started) * 1000
        reports.append((name, report, elapsed))

    ok = all(report.ok for _, report, _ in reports)
    if args.json:
        doc = {"kind": "verify", "arch": args.arch, "ok": ok,
               "reports": {name: report.to_dict()
                           for name, report, _ in reports}}
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"{'workload':12s} {'verdict':8s} {'checks':>7s} "
              f"{'branches':>9s} {'stores':>7s} {'instrs':>8s} "
              f"{'ms':>8s}")
        for name, report, elapsed in reports:
            stats = report.stats
            print(f"{name:12s} "
                  f"{'ACCEPT' if report.ok else 'REJECT':8s} "
                  f"{stats.get('checked_branches', 0):7d} "
                  f"{stats.get('proved_branches', 0):9d} "
                  f"{stats.get('proved_stores', 0):7d} "
                  f"{stats.get('instructions', 0):8d} "
                  f"{elapsed:8.1f}")
            for diag in report.errors[:5]:
                print(f"    {diag.code}: {diag.message}")
        print(f"\n{len(reports)} modules, "
              f"{'all ACCEPT' if ok else 'REJECTIONS PRESENT'}")
    return 0 if ok else 1


def cmd_evasion(args: argparse.Namespace) -> int:
    workloads = args.workloads
    seeds = args.seeds
    if args.quick:
        workloads = workloads or list(QUICK_WORKLOADS)
        seeds = list(QUICK_SEEDS)
    report = evasion_campaign(workloads=workloads,
                              injectors=args.injectors,
                              seeds=seeds, arch=args.arch)
    rendered = report.render()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(rendered)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_dir:
        from repro.infra.campaign import configure
        configure(args.cache_dir)
    if args.command is None:
        rest = list(argv) if argv is not None else sys.argv[1:]
        args = parser.parse_args(rest + ["run"])
    try:
        if args.command == "run":
            return cmd_run(args)
        return cmd_evasion(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
