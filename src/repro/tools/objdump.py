"""``python -m repro.tools.objdump`` — inspect MCFI modules.

Disassembles a compiled module or linked program, annotates function
entries and indirect-branch sites, and dumps the auxiliary type
information that makes the module linkable and verifiable.

Examples::

    python -m repro.tools.objdump mylib.mcfo
    python -m repro.tools.objdump main.c --native      # baseline code
    python -m repro.tools.objdump main.c --aux-only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.errors import ReproError
from repro.isa.disasm import format_instr, sweep_ranges
from repro.linker.static_linker import link
from repro.module import objectfile
from repro.build import compile_object
from repro.workloads.libc import LIBC_SOURCE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-objdump",
        description="Disassemble and inspect MCFI modules")
    parser.add_argument("input", type=Path,
                        help="a TinyC source (.c) or object file (.mcfo)")
    parser.add_argument("--arch", choices=("x32", "x64"), default="x64")
    parser.add_argument("--native", action="store_true",
                        help="show the uninstrumented baseline")
    parser.add_argument("--aux-only", action="store_true",
                        help="print only the auxiliary information")
    parser.add_argument("--verify", action="store_true",
                        help="run the binary verifier and annotate the "
                             "disassembly with check-transaction spans "
                             "and per-branch verdicts")
    parser.add_argument("--max-lines", type=int, default=200,
                        help="cap on disassembly lines (0 = no cap)")
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.input.suffix == ".mcfo":
            raw = objectfile.load(args.input)
        else:
            raw = compile_object(args.input.read_text(),
                                 name=args.input.stem, arch=args.arch)
        libc = compile_object(LIBC_SOURCE, name="libc", arch=args.arch)
        program = link([raw, libc], mcfi=not args.native,
                       entry_symbol="_start")
        module = program.module
        aux = module.aux

        print(f"module {raw.name!r} linked with simlibc "
              f"({'native' if args.native else 'MCFI'}, {args.arch})")
        print(f"code {len(module.code)} bytes at {module.base:#x}; "
              f"{len(aux.branch_sites)} indirect-branch sites")

        print("\n-- functions " + "-" * 50)
        for func in sorted(aux.functions.values(), key=lambda f: f.entry):
            taken = " [address-taken]" if func.address_taken else ""
            print(f"  {func.entry:#010x} {func.name:24s} "
                  f"{func.sig.render()}{taken}")

        print("\n-- indirect-branch sites " + "-" * 38)
        for site in aux.branch_sites[:60]:
            extra = site.sig.render() if site.sig else \
                (site.plt_symbol or f"{len(site.targets)} targets")
            print(f"  site {site.site:4d} {site.kind:8s} in "
                  f"{site.fn or '<plt>':20s} {extra}")
        if len(aux.branch_sites) > 60:
            print(f"  ... {len(aux.branch_sites) - 60} more")

        if args.aux_only:
            return 0

        report = None
        span_starts = {}
        span_ends = set()
        if args.verify:
            from repro.analysis.binverify import analyze_module
            report = analyze_module(module)
            span_starts = {start: end for start, end in report.check_spans}
            span_ends = set(end for _, end in report.check_spans)

        labels = {addr: name for name, addr in module.labels.items()
                  if not name.startswith("__mcfi")}
        print("\n-- disassembly " + "-" * 48)
        lines = 0
        for decoded in sweep_ranges(module.code, module.base,
                                    module.code_ranges):
            if decoded.address in span_ends:
                print("  ; ---- end check transaction ----")
            if decoded.address in span_starts:
                print(f"  ; ---- check transaction "
                      f"{decoded.address:#x}.."
                      f"{span_starts[decoded.address]:#x} ----")
            if decoded.address in labels:
                print(f"{labels[decoded.address]}:")
            line = "  " + format_instr(decoded, labels)
            if report is not None and decoded.address in report.verdicts:
                line += f"    ; <- {report.verdicts[decoded.address]}"
            print(line)
            lines += 1
            if args.max_lines and lines >= args.max_lines:
                print(f"  ... (truncated at {args.max_lines} lines; "
                      f"--max-lines 0 for all)")
                break

        if report is not None:
            print("\n-- verifier " + "-" * 51)
            stats = report.stats
            print(f"verdict: {'ACCEPT' if report.ok else 'REJECT'} "
                  f"({stats.get('checked_branches', 0)} check "
                  f"transactions, {stats.get('proved_branches', 0)} "
                  f"proved branches, {stats.get('proved_stores', 0)} "
                  f"proved stores)")
            for diag in report.errors[:20]:
                print(f"  {diag.code}: {diag.message}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
