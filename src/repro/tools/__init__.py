"""Command-line tools for the MCFI toolchain (cc, objdump, analyze)."""
