"""``python -m repro lint`` — the MIR lint plane CLI.

Runs the :mod:`repro.analysis.dataflow` lint passes over the SPEC
workloads (or any subset) and reports ``MCFI00x`` diagnostics against
the checked-in baseline.  Lints always run on *unoptimized* MIR — the
points-to pass deliberately leaves dead pointer loads behind when it
devirtualizes, and linting its output would report the optimizer's
debris instead of the source's.

Modes::

    python -m repro lint                      # text report, all workloads
    python -m repro lint --workloads bzip2 gcc
    python -m repro lint --json               # one LintReport dict each
    python -m repro lint --check-baseline     # exit 1 on drift (CI)
    python -m repro lint --update-baseline    # accept the current output

Output ordering is deterministic: workloads in benchmark order,
diagnostics in the stable :func:`~repro.analysis.dataflow.sort
<repro.analysis.dataflow.diagnostics.sort_key>` order.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis.dataflow import Baseline, LintReport, run_lints
from repro.errors import ReproError
from repro.mir.lowering import lower_unit
from repro.obs import OBS
from repro.toolchain import frontend
from repro.workloads.spec import BENCHMARKS, workload

#: repo-root default; CI checks drift against this file.
DEFAULT_BASELINE = Path("lint_baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="MIR dataflow lints (MCFI001..MCFI004) over the "
                    "SPEC workloads")
    parser.add_argument("--workloads", nargs="+", metavar="NAME",
                        choices=sorted(BENCHMARKS), default=None,
                        help="subset of workloads (default: all 12)")
    parser.add_argument("--json", action="store_true",
                        help="emit one LintReport to_dict() per "
                             "workload as a JSON array")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file (default: %(default)s)")
    parser.add_argument("--check-baseline", action="store_true",
                        help="compare against the baseline; exit 1 on "
                             "any unbaselined diagnostic")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run")
    return parser


def lint_workload(name: str) -> LintReport:
    """Frontend + lowering + lints for one SPEC workload (no devirt)."""
    with OBS.tracer.span("lint.workload", workload=name):
        checked = frontend(workload(name).source, name=name)
        return run_lints(lower_unit(checked))


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check_baseline and args.update_baseline:
        print("error: --check-baseline and --update-baseline are "
              "mutually exclusive", file=sys.stderr)
        return 2
    names = [n for n in BENCHMARKS
             if args.workloads is None or n in args.workloads]

    reports: List[LintReport] = []
    for name in names:
        try:
            reports.append(lint_workload(name))
        except ReproError as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 1

    if args.update_baseline:
        baseline = Baseline.load(args.baseline)
        for report in reports:
            baseline.record(report.unit, report.diagnostics)
        baseline.save(args.baseline)
        print(f"baseline updated: {args.baseline} "
              f"({sum(len(r.diagnostics) for r in reports)} "
              f"fingerprint(s) over {len(reports)} workload(s))")
        return 0

    drift = False
    if args.check_baseline:
        baseline = Baseline.load(args.baseline)
        fresh_by_unit = {}
        for report in reports:
            fresh, fixed = baseline.diff(report.unit, report.diagnostics)
            fresh_by_unit[report.unit] = (fresh, fixed)
            drift = drift or bool(fresh)

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2,
                         sort_keys=True))
    else:
        total = 0
        for report in reports:
            counts = ", ".join(f"{name}={n}"
                               for name, n in report.pass_counts.items())
            print(f"{report.unit}: {len(report.diagnostics)} "
                  f"diagnostic(s) [{counts}]")
            shown = report.diagnostics
            if args.check_baseline:
                shown, fixed = fresh_by_unit[report.unit]
                for fp in fixed:
                    print(f"  fixed (regenerate baseline): {fp}")
            for diag in shown:
                marker = "  NEW " if args.check_baseline else "  "
                print(f"{marker}{diag.render()}")
            total += len(report.diagnostics)
        print(f"total: {total} diagnostic(s) over "
              f"{len(reports)} workload(s)")

    if args.check_baseline and drift:
        print("baseline drift: new diagnostics above are not in "
              f"{args.baseline}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
