"""``python -m repro.tools.service`` — drive the multi-tenant table service.

The command-line face of :mod:`repro.service`:

``run``
    One :class:`~repro.service.loop.ServiceLoop` run at a given tenant
    count, mode (``sharded`` or the paper's ``global`` baseline) and
    seed.  Prints the report as a table or, with ``--json``, as one
    JSON object.  ``--verify`` additionally replays the committed log
    serially and fails unless the decoded table states are identical.

``scale``
    The scaling sweep behind ``benchmarks/results/service_scaling.txt``:
    sharded runs at each tenant count plus the global-lock baseline at
    the counts where it is tractable, rendered as a latency/retry
    table.  ``--out`` writes the artifact.

``trace``
    Print the coalescer's deterministic per-round trace as canonical
    JSONL — the byte-identity artifact the CI smoke job diffs across
    two same-seed runs.

``chaos``
    The self-healing campaign (:mod:`repro.service.chaos`): resilient
    and fault-oblivious legs under the same seeded fault schedule at
    each tenant count.  Prints the campaign table with per-cell
    PASS/FAIL verdicts (zero undetected corruptions, availability
    floor, byte-identical recovery); exits non-zero on any FAIL.
    ``--out`` writes the artifact, ``--trace-out`` the canonical
    campaign JSONL the CI ``chaos-smoke`` job ``cmp``'s against the
    pinned golden.

Examples::

    python -m repro service run --tenants 100 --seed 0 --verify
    python -m repro service scale --quick --out benchmarks/results/service_scaling.txt
    python -m repro service trace --tenants 10 --seed 7
    python -m repro service chaos --seed 7 --out benchmarks/results/service_chaos.txt
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.service import ServiceLoop, ServiceReport

#: Tenant counts for the full sweep and the CI smoke (--quick) sweep.
SCALE_TENANTS = (10, 100, 1000)
QUICK_TENANTS = (10, 100)

#: The global-lock baseline serializes a full-table rewrite per request,
#: so its cost grows quadratically with tenant count; above this many
#: tenants the sweep reports the sharded service only.
BASELINE_LIMIT = 100


def run_loop(tenants: int, mode: str, seed: int, shards: int = 8,
             churn: int = 2, window: int = 4,
             template=None) -> ServiceLoop:
    loop = ServiceLoop(tenants=tenants, shards=shards, seed=seed,
                       churn=churn, window=window, mode=mode,
                       template=template)
    loop.run()
    return loop


def scaling_rows(tenant_counts: Sequence[int], seed: int,
                 shards: int = 8, churn: int = 2,
                 baseline_limit: int = BASELINE_LIMIT) -> List[dict]:
    """One row per (tenant count, mode) of the scaling sweep."""
    rows: List[dict] = []
    for tenants in tenant_counts:
        modes = ["sharded"]
        if tenants <= baseline_limit:
            modes.append("global")
        for mode in modes:
            report = run_loop(tenants, mode, seed, shards=shards,
                              churn=churn).report
            assert report is not None
            rows.append(report.to_dict())
    return rows


def render_scaling_table(rows: List[dict], seed: int) -> str:
    """The ``service_scaling.txt`` artifact body."""
    lines = [
        "Multi-tenant CFI table service: update latency scaling "
        f"(seed {seed})",
        "Latency in scheduler ticks (logical, deterministic); "
        "retry-rate is TxCheck",
        "retries per check transaction.  The global baseline is the "
        "paper's single",
        "update lock, one transaction per dlopen/dlclose; omitted "
        f"above {BASELINE_LIMIT}",
        "tenants (its full-table rewrites grow quadratically).",
        "",
        f"{'tenants':>7s} {'mode':>8s} {'p50':>9s} {'p99':>9s} "
        f"{'mean':>10s} {'coalesce':>9s} {'retry':>7s} {'esc':>4s}",
    ]
    by_count: dict = {}
    for row in rows:
        by_count.setdefault(row["tenants"], {})[row["mode"]] = row
        lines.append(
            f"{row['tenants']:7d} {row['mode']:>8s} "
            f"{row['latency_p50']:9d} {row['latency_p99']:9d} "
            f"{row['latency_mean']:10.1f} "
            f"{row['coalescing_factor']:8.1f}x "
            f"{row['retry_rate']:7.3f} {row['escalations']:4d}")
    lines.append("")
    for tenants, modes in sorted(by_count.items()):
        if "global" in modes and modes["sharded"]["latency_mean"]:
            speedup = (modes["global"]["latency_mean"]
                       / modes["sharded"]["latency_mean"])
            lines.append(f"{tenants} tenants: sharded+batched updates "
                         f"are {speedup:.1f}x faster (mean) than the "
                         f"global-lock baseline")
    return "\n".join(lines)


def _report_table(report: ServiceReport) -> str:
    d = report.to_dict()
    order = ("tenants", "shards", "mode", "seed", "churn", "ticks",
             "committed", "failed", "rejected", "rounds",
             "transactions", "coalescing_factor", "backpressure_waits",
             "checks", "checks_allowed", "check_retries", "retry_rate",
             "escalations", "latency_mean", "latency_p50",
             "latency_p99", "shard_versions")
    width = max(len(key) for key in order)
    return "\n".join(f"{key:{width}s}  {d[key]}" for key in order)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Multi-tenant CFI table service (sharded tables, "
                    "batched update transactions)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tenants", type=int, default=10,
                       help="concurrent tenants (default 10)")
        p.add_argument("--shards", type=int, default=8,
                       help="table shards (default 8)")
        p.add_argument("--seed", type=int, default=0,
                       help="scheduler seed (default 0)")
        p.add_argument("--churn", type=int, default=2,
                       help="dlopen/dlclose rounds per tenant "
                            "(default 2)")

    run = sub.add_parser("run", help="one service-loop run")
    common(run)
    run.add_argument("--mode", choices=("sharded", "global"),
                     default="sharded",
                     help="sharded service or global-lock baseline")
    run.add_argument("--window", type=int, default=4,
                     help="coalescer batching window (default 4)")
    run.add_argument("--json", action="store_true",
                     help="print the report as JSON")
    run.add_argument("--verify", action="store_true",
                     help="check live tables against the serial "
                          "replay oracle")

    scale = sub.add_parser("scale", help="tenant-count scaling sweep")
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument("--shards", type=int, default=8)
    scale.add_argument("--churn", type=int, default=2)
    scale.add_argument("--tenants", type=int, nargs="+", default=None,
                       help=f"tenant counts (default "
                            f"{' '.join(map(str, SCALE_TENANTS))})")
    scale.add_argument("--quick", action="store_true",
                       help=f"CI subset: {QUICK_TENANTS} tenants")
    scale.add_argument("--out", type=Path, default=None,
                       help="also write the table to this file")

    trace = sub.add_parser("trace",
                           help="print the coalescer round trace "
                                "(canonical JSONL)")
    common(trace)
    trace.add_argument("--mode", choices=("sharded", "global"),
                       default="sharded")

    chaos = sub.add_parser("chaos",
                           help="self-healing chaos campaign vs the "
                                "fault-oblivious baseline")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--shards", type=int, default=4,
                       help="table shards (default 4)")
    chaos.add_argument("--churn", type=int, default=2)
    chaos.add_argument("--tenants", type=int, nargs="+", default=None,
                       help=f"tenant counts (default "
                            f"{' '.join(map(str, QUICK_TENANTS))})")
    chaos.add_argument("--out", type=Path, default=None,
                       help="also write the campaign table to this "
                            "file")
    chaos.add_argument("--trace-out", type=Path, default=None,
                       help="write the canonical campaign JSONL "
                            "(faults, health transitions, both legs)")
    return parser


def _run(args: argparse.Namespace) -> int:
    loop = run_loop(args.tenants, args.mode, args.seed,
                    shards=args.shards, churn=args.churn,
                    window=args.window)
    report = loop.report
    assert report is not None
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(_report_table(report))
    if args.verify:
        if loop.sharded.decoded_state() != loop.replay_serial():
            print("FAILED: live tables diverge from serial replay",
                  file=sys.stderr)
            return 1
        print("verified: observables identical to serial replay")
    if report.escalations:
        print(f"FAILED: {report.escalations} TxCheck escalations",
              file=sys.stderr)
        return 1
    return 0


def _scale(args: argparse.Namespace) -> int:
    counts = tuple(args.tenants) if args.tenants else (
        QUICK_TENANTS if args.quick else SCALE_TENANTS)
    rows = scaling_rows(counts, args.seed, shards=args.shards,
                        churn=args.churn)
    table = render_scaling_table(rows, args.seed)
    print(table)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(table + "\n")
        print(f"written: {args.out}", file=sys.stderr)
    if any(row["escalations"] for row in rows):
        print("FAILED: TxCheck escalations during sweep",
              file=sys.stderr)
        return 1
    return 0


def _trace(args: argparse.Namespace) -> int:
    loop = run_loop(args.tenants, args.mode, args.seed,
                    shards=args.shards, churn=args.churn)
    text = loop.coalescer.trace_jsonl()
    if text:
        print(text)
    return 0


def _chaos(args: argparse.Namespace) -> int:
    from repro.service.chaos import (cell_checks, chaos_rows,
                                     chaos_trace_jsonl,
                                     render_chaos_table)
    counts = tuple(args.tenants) if args.tenants else QUICK_TENANTS
    cells = chaos_rows(counts, args.seed, shards=args.shards,
                       churn=args.churn)
    table = render_chaos_table(cells, args.seed)
    print(table)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(table + "\n")
        print(f"written: {args.out}", file=sys.stderr)
    if args.trace_out:
        args.trace_out.parent.mkdir(parents=True, exist_ok=True)
        args.trace_out.write_text(chaos_trace_jsonl(cells) + "\n")
        print(f"written: {args.trace_out}", file=sys.stderr)
    failed = [name for cell in cells
              for name, ok in cell_checks(cell) if not ok]
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    if args.command == "scale":
        return _scale(args)
    if args.command == "chaos":
        return _chaos(args)
    return _trace(args)


if __name__ == "__main__":
    sys.exit(main())
