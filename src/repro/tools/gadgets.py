"""``python -m repro.tools.gadgets`` — the rp++ analogue.

Scans a compiled module (or its MCFI-hardened build) for ROP gadgets
and reports which remain reachable under the installed policy.

Examples::

    python -m repro.tools.gadgets prog.c                # native scan
    python -m repro.tools.gadgets prog.c --mcfi         # + reachability
    python -m repro.tools.gadgets prog.c --depth 6 --show 20
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.attacks.gadgets import analyze_image, find_gadgets, \
    unique_gadgets
from repro.cfg.generator import generate_cfg
from repro.errors import ReproError
from repro.linker.static_linker import link
from repro.module import objectfile
from repro.build import compile_object
from repro.workloads.libc import LIBC_SOURCE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gadgets",
        description="ROP gadget scanner for SimISA modules")
    parser.add_argument("input", type=Path,
                        help="TinyC source (.c) or object file (.mcfo)")
    parser.add_argument("--mcfi", action="store_true",
                        help="scan the hardened build and report "
                             "policy reachability")
    parser.add_argument("--depth", type=int, default=4,
                        help="max instructions per gadget")
    parser.add_argument("--show", type=int, default=10,
                        help="print the first N gadgets")
    parser.add_argument("--arch", choices=("x32", "x64"), default="x64")
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.input.suffix == ".mcfo":
            raw = objectfile.load(args.input)
        else:
            raw = compile_object(args.input.read_text(),
                                 name=args.input.stem, arch=args.arch)
        libc = compile_object(LIBC_SOURCE, name="libc", arch=args.arch)
        program = link([raw, libc], mcfi=args.mcfi)
        module = program.module

        gadgets = find_gadgets(module.code, base=module.base,
                               depth=args.depth)
        unique = unique_gadgets(gadgets)
        print(f"{'hardened' if args.mcfi else 'native'} image: "
              f"{len(module.code)} bytes, {len(gadgets)} gadget starts, "
              f"{len(unique)} unique gadgets (depth {args.depth})")

        if args.mcfi:
            cfg = generate_cfg(module.aux)
            report = analyze_image(module.code, module.base,
                                   permitted_targets=set(cfg.tary_ecns),
                                   depth=args.depth)
            print(f"reachable under the MCFI policy: "
                  f"{report.unique_reachable} unique "
                  f"({100 * report.elimination_rate:.2f}% eliminated)")

        for gadget in gadgets[:args.show]:
            print(f"  {gadget}")
        if len(gadgets) > args.show:
            print(f"  ... {len(gadgets) - args.show} more "
                  f"(--show N for more)")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
