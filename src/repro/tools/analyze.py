"""``python -m repro.tools.analyze`` — the C1/C2 condition analyzer CLI.

Runs the paper's Sec. 6 analyzer over a TinyC source and prints the
Table 1/2-style report: C1 violations, false-positive elimination, and
the K1/K2 classification with fix guidance.

Example::

    python -m repro.tools.analyze mymodule.c --verbose
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis.analyzer import analyze_source
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="C1/C2 analyzer for type-matching CFG generation")
    parser.add_argument("input", type=Path, help="TinyC source file")
    parser.add_argument("--verbose", action="store_true",
                        help="list every classified cast")
    parser.add_argument("--no-prelude", action="store_true",
                        help="do not inject the libc declarations")
    parser.add_argument("--json", action="store_true",
                        help="emit the Table 1/2 report as JSON "
                             "(the report's to_dict() serialization)")
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = analyze_source(args.input.read_text(),
                                name=args.input.stem,
                                prelude=not args.no_prelude)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.vae == 0 else 3

    row = report.table1_row()
    print(f"C1 analysis of {args.input} "
          f"({row['SLOC']} non-blank lines)")
    print(f"  violations before elimination (VBE): {row['VBE']}")
    print(f"  eliminated as false positives:")
    print(f"    UC (upcast)              : {row['UC']}")
    print(f"    DC (tagged downcast)     : {row['DC']}")
    print(f"    MF (malloc/free)         : {row['MF']}")
    print(f"    SU (NULL update)         : {row['SU']}")
    print(f"    NF (non-fptr access)     : {row['NF']}")
    print(f"  remaining (VAE)            : {row['VAE']}")
    table2 = report.table2_row()
    print(f"    K1 (incompatible fptr init): {table2['K1']} "
          f"({table2['K1-fixed']} need source fixes)")
    print(f"    K2 (cast away and back)    : {table2['K2']} "
          f"(no fixes needed)")
    print(f"  C2 (assembly/raw syscalls) : {report.c2}")

    if report.k1_fixed:
        print("\n  hint: fix K1 cases with an equivalently-typed wrapper "
              "function,\n  as the paper did for gcc's splay-tree "
              "comparator (Sec. 6).")

    if args.verbose and report.classified:
        print("\n  classified casts:")
        for item in report.classified:
            record = item.record
            where = f"{record.function or '<global>'}:{record.line}"
            print(f"    [{item.category}] {where}: "
                  f"{record.src} -> {record.dst}"
                  + (f" (of {record.operand_func})"
                     if record.operand_func else ""))
    return 0 if report.vae == 0 else 3


if __name__ == "__main__":
    sys.exit(main())
