"""``python -m repro.tools.infra`` — the campaign runner CLI.

Drives :mod:`repro.infra` directly: build the target×instance matrix
into the artifact cache, run it in parallel, and report on the JSONL
result store (including regenerating the ``benchmarks/results/*.txt``
artifact files from stored records).

Examples::

    python -m repro.tools.infra build --jobs 4 --cache-dir .cache/infra
    python -m repro.tools.infra run --jobs 2 --benchmarks libquantum bzip2
    python -m repro.tools.infra run --jobs 4 \\
        --instances native-x64 mcfi-x64 mcfi-x32
    python -m repro.tools.infra report --results-dir benchmarks/results
    python -m repro.tools.infra cache stats --cache-dir .cache/repro-infra
    python -m repro.tools.infra cache trim --cache-max-mb 64
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.infra.campaign import configure, default_cache, run_campaign
from repro.infra.instances import INSTANCES
from repro.infra.results import (ResultStore, load_records, regenerate,
                                 render_summary)
from repro.workloads.spec import BENCHMARKS

DEFAULT_CACHE_DIR = ".cache/repro-infra"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-infra",
        description="Parallel experiment campaign: build, run, report")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--benchmarks", nargs="+", default=None,
                       choices=BENCHMARKS, metavar="NAME",
                       help="target subset (default: all twelve)")
        p.add_argument("--instances", nargs="+",
                       default=["native-x64", "mcfi-x64"],
                       metavar="INSTANCE",
                       help="policy/arch configurations "
                            f"(known: {', '.join(sorted(INSTANCES))}; "
                            "a bare policy name selects every arch)")
        p.add_argument("--jobs", type=int, default=1, metavar="N")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       metavar="PATH")
        p.add_argument("--cache-max-mb", type=float, default=None,
                       metavar="MB",
                       help="LRU budget for the artifact cache "
                            "(default: unbounded)")
        p.add_argument("--timeout", type=float, default=600.0,
                       metavar="SECONDS", help="per-job timeout")
        p.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failed job")

    build = sub.add_parser("build",
                           help="compile+link the matrix into the cache")
    common(build)

    run = sub.add_parser("run", help="build, then execute the matrix")
    common(run)

    report = sub.add_parser("report",
                            help="summarize the JSONL result store")
    report.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="PATH")
    report.add_argument("--results", default=None, metavar="FILE",
                        help="JSONL file (default: "
                             "<cache-dir>/results.jsonl)")
    report.add_argument("--results-dir", default=None, metavar="DIR",
                        help="also regenerate artifact .txt files here")

    cache = sub.add_parser("cache",
                           help="inspect or bound the artifact cache")
    cache.add_argument("action", choices=("stats", "trim"),
                       help="stats: entry counts and disk use; "
                            "trim: apply --cache-max-mb LRU eviction now")
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       metavar="PATH")
    cache.add_argument("--cache-max-mb", type=float, default=None,
                       metavar="MB", help="LRU budget (required for trim)")
    return parser


def _cache(args: argparse.Namespace) -> int:
    from repro.infra.cache import open_cache
    cache = open_cache(args.cache_dir, max_mb=args.cache_max_mb)
    counts = cache.entry_count()
    if args.action == "trim":
        if args.cache_max_mb is None:
            print("error: trim needs --cache-max-mb", file=sys.stderr)
            return 2
        evicted = cache.trim()
        print(f"evicted {evicted} entries")
        counts = cache.entry_count()
    total_mb = cache.size_bytes() / (1024 * 1024)
    budget = (f"{args.cache_max_mb:g} MB budget"
              if args.cache_max_mb is not None else "unbounded")
    print(f"cache {cache.root} ({budget})")
    for kind in cache.SUBDIRS:
        print(f"  {kind:9s} {counts[kind]:6d} entries")
    print(f"  {'total':9s} {total_mb:8.1f} MB on disk")
    return 0


def _campaign(args: argparse.Namespace, execute: bool) -> int:
    configure(args.cache_dir, max_mb=args.cache_max_mb)
    cache = default_cache()
    store = ResultStore(cache.root / "results.jsonl")
    names = args.benchmarks or list(BENCHMARKS)
    summary = run_campaign(
        names, args.instances, jobs=args.jobs, store=store,
        execute=execute, timeout=args.timeout, retries=args.retries)
    verb = "ran" if execute else "built"
    print(f"{verb} {summary['cells']} matrix cells with {args.jobs} "
          f"worker(s) in {summary['wall_seconds']}s")
    print(f"artifact cache: {summary['cache_hits']} hits / "
          f"{summary['cache_misses']} misses "
          f"({100.0 * summary['cache_hit_rate']:.1f}% hit rate), "
          f"{summary['cache_evictions']} evictions")
    print(f"results: {store.path}")
    if summary["failures"]:
        print("FAILED cells: " + ", ".join(summary["failures"]),
              file=sys.stderr)
        return 1
    return 0


def _report(args: argparse.Namespace) -> int:
    path = Path(args.results) if args.results else \
        Path(args.cache_dir) / "results.jsonl"
    records = load_records(path)
    if not records:
        print(f"no records at {path}", file=sys.stderr)
        return 1
    print(f"== campaign report: {path} ==")
    print(render_summary(records))
    if args.results_dir:
        written = regenerate(records, args.results_dir)
        for artifact_path in written:
            print(f"regenerated {artifact_path}")
        if not written:
            print("no artifact files derivable from these records",
                  file=sys.stderr)
    return 0


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "build":
        return _campaign(args, execute=False)
    if args.command == "run":
        return _campaign(args, execute=True)
    if args.command == "cache":
        return _cache(args)
    return _report(args)


if __name__ == "__main__":
    sys.exit(main())
