"""simlibc: the reproduction's MUSL-libc stand-in, written in TinyC.

The paper ports MUSL by replacing its syscall invocations with MCFI
runtime API invocations and instrumenting it "in the same way as other
program modules".  simlibc plays the same role: it is compiled as an
ordinary separate MCFI module and linked (statically here; the dynamic
examples load it as a DLL) with every workload.

Like real libc it deliberately contains a few C1 violations — the
function-pointer-through-integer casts in ``thread_spawn`` and users of
``dlsym`` — which is exactly what the paper reports for MUSL (45
violations, 5 of them K1).  See :mod:`repro.analysis` for how they are
classified.

It provides: program startup (``_start``), exit/write wrappers, a
free-list ``malloc``/``free``/``calloc``/``realloc``, string and memory
routines, formatted output helpers, a comparator-driven ``qsort`` (an
address-taken-function consumer, like MUSL's), a tiny PRNG, soft float
helpers, and the threading entry glue (``__thread_start``).
"""

LIBC_SOURCE = r"""
int main(void);

void exit(int code) {
    __syscall(1, code, 0, 0);
}

void _start(void) {
    int code = main();
    exit(code);
}

long write(int fd, char *buf, long n) {
    return __syscall(2, fd, (long)buf, n);
}

long time_now(void) {
    return __syscall(4, 0, 0, 0);
}

void sched_yield(void) {
    __syscall(11, 0, 0, 0);
}

/* ---------------- memory allocator (first-fit free list) -------------- */

typedef struct Block {
    unsigned long size;
    struct Block *next;
} Block;

Block *__free_list = 0;

void *malloc(unsigned long n) {
    Block *prev = 0;
    Block *cur = __free_list;
    unsigned long need = (n + 23u) & ~7u;   /* header + alignment */
    while (cur) {
        if (cur->size >= need) {
            if (prev) { prev->next = cur->next; }
            else { __free_list = cur->next; }
            return (void *)((char *)cur + 16);
        }
        prev = cur;
        cur = cur->next;
    }
    {
        long base = __syscall(3, (long)need, 0, 0);
        Block *blk;
        if (base == -1) { return 0; }
        blk = (Block *)base;
        blk->size = need;
        blk->next = 0;
        return (void *)((char *)blk + 16);
    }
}

void free(void *p) {
    Block *blk;
    if (!p) { return; }
    blk = (Block *)((char *)p - 16);
    blk->next = __free_list;
    __free_list = blk;
}

void *calloc(unsigned long n, unsigned long m) {
    unsigned long total = n * m;
    void *p = malloc(total);
    if (p) { memset(p, 0, total); }
    return p;
}

void *realloc(void *p, unsigned long n) {
    void *fresh;
    Block *blk;
    if (!p) { return malloc(n); }
    blk = (Block *)((char *)p - 16);
    if (blk->size - 16 >= n) { return p; }
    fresh = malloc(n);
    if (fresh) {
        memcpy(fresh, p, blk->size - 16);
        free(p);
    }
    return fresh;
}

/* ---------------- string / memory ------------------------------------- */

void *memcpy(void *d, void *s, unsigned long n) {
    char *dst = (char *)d;
    char *src = (char *)s;
    unsigned long i;
    for (i = 0; i < n; i++) { dst[i] = src[i]; }
    return d;
}

void *memset(void *d, int c, unsigned long n) {
    char *dst = (char *)d;
    unsigned long i;
    for (i = 0; i < n; i++) { dst[i] = (char)c; }
    return d;
}

unsigned long strlen(char *s) {
    unsigned long n = 0;
    while (s[n]) { n++; }
    return n;
}

int strcmp(char *a, char *b) {
    unsigned long i = 0;
    while (a[i] && b[i] && a[i] == b[i]) { i++; }
    return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

char *strcpy(char *d, char *s) {
    unsigned long i = 0;
    while (s[i]) { d[i] = s[i]; i++; }
    d[i] = 0;
    return d;
}

int strncmp(char *a, char *b, unsigned long n) {
    unsigned long i = 0;
    if (n == 0) { return 0; }
    while (i + 1 < n && a[i] && b[i] && a[i] == b[i]) { i++; }
    return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

char *strchr(char *s, int c) {
    unsigned long i = 0;
    while (s[i]) {
        if (s[i] == (char)c) { return s + i; }
        i++;
    }
    if (c == 0) { return s + i; }
    return 0;
}

int memcmp(void *a, void *b, unsigned long n) {
    unsigned char *x = (unsigned char *)a;
    unsigned char *y = (unsigned char *)b;
    unsigned long i;
    for (i = 0; i < n; i++) {
        if (x[i] != y[i]) { return (int)x[i] - (int)y[i]; }
    }
    return 0;
}

long atoi_l(char *s) {
    long value = 0;
    long sign = 1;
    unsigned long i = 0;
    while (s[i] == ' ') { i++; }
    if (s[i] == '-') { sign = -1; i++; }
    else if (s[i] == '+') { i++; }
    while (s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + (s[i] - '0');
        i++;
    }
    return sign * value;
}

/* ---------------- formatted output ------------------------------------- */

void print_char(int c) {
    char buf[2];
    buf[0] = (char)c;
    buf[1] = 0;
    write(1, buf, 1);
}

void print_str(char *s) {
    write(1, s, (long)strlen(s));
}

void print_int(long v) {
    char buf[24];
    int i = 23;
    int neg = 0;
    buf[23] = 0;
    if (v < 0) { neg = 1; v = -v; }
    if (v == 0) { i--; buf[22] = '0'; }
    while (v > 0) {
        i--;
        buf[i] = (char)('0' + (int)(v % 10));
        v = v / 10;
    }
    if (neg) { i--; buf[i] = '-'; }
    write(1, buf + i, (long)(23 - i));
}

/* ---------------- qsort with comparator fptr --------------------------- */

void qsort_swap(char *a, char *b, unsigned long width) {
    unsigned long i;
    for (i = 0; i < width; i++) {
        char t = a[i];
        a[i] = b[i];
        b[i] = t;
    }
}

void qsort(void *base, unsigned long n, unsigned long width,
           int (*cmp)(void *, void *)) {
    unsigned long i;
    unsigned long j;
    char *arr = (char *)base;
    if (n < 2) { return; }
    for (i = 1; i < n; i++) {
        j = i;
        while (j > 0 && cmp((void *)(arr + (j - 1) * width),
                            (void *)(arr + j * width)) > 0) {
            qsort_swap(arr + (j - 1) * width, arr + j * width, width);
            j--;
        }
    }
}

/* ---------------- integers / PRNG --------------------------------------- */

long abs_long(long x) {
    if (x < 0) { return -x; }
    return x;
}

long __rand_state = 88172645463325252;

void rand_seed(long s) {
    if (s == 0) { s = 1; }
    __rand_state = s;
}

long rand_next(void) {
    long x = __rand_state;
    x = x ^ (x << 13);
    x = x ^ ((x >> 7) & 0x1ffffffffffffff);
    x = x ^ (x << 17);
    __rand_state = x;
    return x & 0x7fffffffffffffff;
}

/* ---------------- soft floating point helpers --------------------------- */

double fabs_d(double x) {
    if (x < 0.0) { return 0.0 - x; }
    return x;
}

double sqrt_d(double x) {
    double guess;
    int i;
    if (x <= 0.0) { return 0.0; }
    guess = x;
    if (guess > 1.0) { guess = x / 2.0; }
    for (i = 0; i < 24; i++) {
        guess = (guess + x / guess) / 2.0;
    }
    return guess;
}

/* ---------------- threads ------------------------------------------------ */

void __thread_start(void (*fn)(long), long arg) {
    fn(arg);
    thread_exit();
}

int thread_spawn(void (*fn)(long), long arg) {
    /* C1 violation (K2-style): the function pointer rides through a
       long, exactly like MUSL's clone() plumbing. */
    return (int)__syscall(5, (long)fn, arg, 0);
}

void thread_exit(void) {
    __syscall(6, 0, 0, 0);
}

/* ---------------- dynamic linking ---------------------------------------- */

long dlopen(char *path) {
    return __syscall(7, (long)path, 0, 0);
}

long dlsym(long handle, char *name) {
    return __syscall(8, handle, (long)name, 0);
}

long jit_compile(char *src, char *name) {
    return __syscall(12, (long)src, (long)name, 0);
}

long dlclose(long handle) {
    return __syscall(13, handle, 0, 0);
}
"""
