"""Cross-configuration differential harness over corpus members.

One member — a fixed workload or a generated program — is pushed
through the full configuration matrix:

* devirtualize **on / off** (the PR 4 points-to optimizer),
* block-dispatch VM **vs** ``step_reference`` (the PR 5 oracle tier),
* **x64 vs x32** code generation,
* **cold build vs single-edit incremental rebuild** (the PR 8
  splice re-link path, compared by artifact digest),

with every build passing the PR 9 binary verifier (``verify_units``)
and the PR 4 lint plane. Any divergence in output / exit code /
cycles / instructions / tx_checks / violations between two cells, or
against the generated program's AST-evaluator oracle, is reported as
a structured :class:`Finding`; generated findings can be shrunk with
:mod:`repro.workloads.minimize`.

Set-level runs (:func:`run_set`) are no-cherry-picking by
construction: the report carries one :class:`ProgramReport` per
member — pass or fail — in deterministic member order, fanned out
over a :class:`repro.infra.pool.WorkerPool` with compile artifacts
memoized in a shared :class:`repro.infra.cache.ArtifactCache`. The
findings file is JSONL via :class:`repro.infra.results.ResultStore`
(timestamps off: same seed ⇒ byte-identical bytes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.build.session import BuildSession
from repro.infra.pool import Job, WorkerPool
from repro.infra.results import ResultStore
from repro.workloads.generate import (GenConfig, GenProgram, OracleResult,
                                      generate)
from repro.workloads.spec import BenchmarkSet, benchmark_set, workload

__all__ = [
    "CorpusConfig",
    "Finding",
    "ProgramReport",
    "SetReport",
    "DifferentialHarness",
    "run_set",
    "load_set_report",
    "render_report",
]

ARCHS = ("x64", "x32")

#: divergence categories, in triage-priority order
CATEGORIES = (
    "compile_error",    # frontend/codegen/link/verify rejected a valid program
    "oracle_output",    # VM output differs from the AST evaluator
    "oracle_exit",      # VM exit code differs from the AST evaluator
    "violation",        # unexpected CFI violation or fault
    "dispatch",         # block dispatch vs step_reference observables
    "devirt",           # devirtualize on vs off output/exit
    "devirt_txchecks",  # devirtualization *increased* dynamic checks
    "arch",             # x64 vs x32 output/exit
    "incremental",      # incremental re-link != cold artifact digest
    "lint",             # lint plane reports an error-severity finding
    "harness_error",    # the harness itself failed on this member
)


@dataclass
class CorpusConfig:
    """One harness run's knobs (all deterministic)."""

    archs: Tuple[str, ...] = ARCHS
    #: Must dominate the worst program the oracle's fuel budget admits:
    #: one fuel unit can cost ~10 VM steps, so 400k fuel needs ~4M
    #: steps (campaign seed 427 measured 3.98M).  20M leaves 5x slack —
    #: a genuine runaway still trips it, a legitimately long program
    #: never does.
    max_steps: int = 20_000_000
    lint: bool = True
    incremental: bool = True
    reference: bool = True          #: run the step_reference tier
    cache_dir: Optional[str] = None

    def gen_config(self, quick: bool) -> GenConfig:
        return GenConfig.quick() if quick else GenConfig()


@dataclass
class Finding:
    """One structured divergence."""

    member: str
    category: str
    cell: str            #: e.g. "x64/devirt/dispatch"
    detail: str
    seed: Optional[int] = None
    expected: str = ""
    actual: str = ""
    classification: str = "open"   #: open | fixed | benign
    note: str = ""

    KIND = "finding"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "member": self.member,
            "category": self.category,
            "cell": self.cell,
            "detail": self.detail,
            "seed": self.seed,
            "expected": self.expected,
            "actual": self.actual,
            "classification": self.classification,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Finding":
        return cls(**{k: doc[k] for k in (
            "member", "category", "cell", "detail", "seed",
            "expected", "actual", "classification", "note")
            if k in doc})


@dataclass
class ProgramReport:
    """Everything the matrix learned about one member."""

    member: str
    seed: Optional[int]
    status: str                    #: pass | diverged | error
    findings: List[Finding] = field(default_factory=list)
    cells: int = 0
    cycles: Dict[str, int] = field(default_factory=dict)
    tx_checks: Dict[str, int] = field(default_factory=dict)
    source_lines: int = 0

    KIND = "program"

    @property
    def ok(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "member": self.member,
            "seed": self.seed,
            "status": self.status,
            "cells": self.cells,
            "cycles": dict(sorted(self.cycles.items())),
            "tx_checks": dict(sorted(self.tx_checks.items())),
            "source_lines": self.source_lines,
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ProgramReport":
        return cls(
            member=doc["member"], seed=doc.get("seed"),
            status=doc["status"], cells=doc.get("cells", 0),
            cycles=doc.get("cycles", {}),
            tx_checks=doc.get("tx_checks", {}),
            source_lines=doc.get("source_lines", 0),
            findings=[Finding.from_dict(f)
                      for f in doc.get("findings", [])])


@dataclass
class SetReport:
    """A completed set run: exactly one report per member."""

    set_name: str
    reports: List[ProgramReport]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    def findings(self) -> List[Finding]:
        return [f for r in self.reports for f in r.findings]

    def by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings():
            counts[finding.category] = \
                counts.get(finding.category, 0) + 1
        return counts


def artifact_digest(program) -> str:
    """Deterministic digest of a linked program's loadable bytes
    (same bytes the build CLI hashes)."""
    h = hashlib.sha256()
    h.update(bytes(program.module.code))
    h.update(bytes(program.data.image))
    h.update(program.entry.to_bytes(8, "little"))
    return h.hexdigest()


def _observables(result) -> Tuple[int, bytes, int, int, int]:
    return (result.exit_code, result.output, result.cycles,
            result.instructions, result.tx_checks)


class DifferentialHarness:
    """Runs one member through the full matrix and collects findings."""

    def __init__(self, config: Optional[CorpusConfig] = None):
        self.config = config or CorpusConfig()
        self._cache = None
        if self.config.cache_dir:
            from repro.infra.cache import open_cache
            self._cache = open_cache(self.config.cache_dir)

    # -- member resolution -------------------------------------------

    def resolve(self, member: str, quick: bool = False
                ) -> Tuple[str, Optional[GenProgram]]:
        """Return (source, generated-program-or-None) for a member."""
        if member.startswith("gen"):
            seed = int(member[3:])
            prog = generate(seed, self.config.gen_config(quick))
            return prog.source, prog
        return workload(member).source, None

    # -- one member --------------------------------------------------

    def run_member(self, member: str, quick: bool = False
                   ) -> ProgramReport:
        try:
            source, prog = self.resolve(member, quick)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            return ProgramReport(
                member=member, seed=None, status="error",
                findings=[Finding(member, "harness_error", "resolve",
                                  f"{type(exc).__name__}: {exc}")])
        return self._run(member, source, prog)

    def run_program(self, prog: GenProgram) -> ProgramReport:
        """Run an in-memory generated program (minimizer re-checks)."""
        return self._run(prog.name, prog.source, prog)

    def _run(self, member: str, source: str,
             prog: Optional[GenProgram]) -> ProgramReport:
        seed = prog.seed if prog is not None else None
        report = ProgramReport(
            member=member, seed=seed, status="pass",
            source_lines=len(source.splitlines()))
        expected: Optional[OracleResult] = None
        if prog is not None:
            try:
                expected = prog.evaluate()
            except Exception as exc:  # noqa: BLE001
                report.findings.append(Finding(
                    member, "harness_error", "oracle",
                    f"{type(exc).__name__}: {exc}", seed=seed))
                report.status = "error"
                return report
        try:
            self._run_matrix(member, source, prog, expected, report)
        except Exception as exc:  # noqa: BLE001 - keep set complete
            report.findings.append(Finding(
                member, "harness_error", "matrix",
                f"{type(exc).__name__}: {exc}", seed=seed))
        if report.findings and report.status == "pass":
            report.status = "diverged"
        return report

    def _run_matrix(self, member: str, source: str,
                    prog: Optional[GenProgram],
                    expected: Optional[OracleResult],
                    report: ProgramReport) -> None:
        from repro.toolchain import run_program

        cfg = self.config
        seed = report.seed
        sources = {member: source}
        baseline: Dict[str, Any] = {}
        for arch in cfg.archs:
            for devirt in (False, True):
                cell = f"{arch}/{'devirt' if devirt else 'base'}"
                session = BuildSession(
                    arch=arch, devirtualize=devirt,
                    cache=self._cache, verify_units=True)
                try:
                    built = session.build(sources)
                except Exception as exc:  # noqa: BLE001
                    report.findings.append(Finding(
                        member, "compile_error", cell,
                        f"{type(exc).__name__}: {exc}", seed=seed))
                    continue
                report.cells += 1
                fast = run_program(built.program,
                                   max_steps=cfg.max_steps)
                report.cycles[cell] = fast.cycles
                report.tx_checks[cell] = fast.tx_checks
                self._check_run(member, cell, fast, expected,
                                report)
                if cfg.reference:
                    ref = self._reference_run(built.program)
                    if _observables(ref) != _observables(fast):
                        report.findings.append(Finding(
                            member, "dispatch", cell,
                            "block dispatch and step_reference "
                            "disagree", seed=seed,
                            expected=repr(_observables(ref)),
                            actual=repr(_observables(fast))))
                key = (arch, devirt)
                baseline[key] = fast
                if devirt and (arch, False) in baseline:
                    base = baseline[(arch, False)]
                    if (fast.output != base.output or
                            fast.exit_code != base.exit_code):
                        report.findings.append(Finding(
                            member, "devirt", cell,
                            "devirtualized output differs from "
                            "baseline", seed=seed,
                            expected=repr((base.exit_code,
                                           base.output)),
                            actual=repr((fast.exit_code,
                                         fast.output))))
                    if fast.tx_checks > base.tx_checks:
                        report.findings.append(Finding(
                            member, "devirt_txchecks", cell,
                            "devirtualization increased dynamic "
                            "TxChecks", seed=seed,
                            expected=str(base.tx_checks),
                            actual=str(fast.tx_checks)))
                if not devirt and cfg.incremental:
                    self._check_incremental(member, arch, source,
                                            prog, built, report)
        first = baseline.get((cfg.archs[0], False))
        for arch in cfg.archs[1:]:
            other = baseline.get((arch, False))
            if first is None or other is None:
                continue
            if (first.output != other.output or
                    first.exit_code != other.exit_code):
                report.findings.append(Finding(
                    member, "arch", f"{cfg.archs[0]}-vs-{arch}",
                    "architectures disagree on output/exit",
                    seed=seed,
                    expected=repr((first.exit_code, first.output)),
                    actual=repr((other.exit_code, other.output))))
        if cfg.lint:
            self._check_lints(member, source, report)

    def _check_run(self, member: str, cell: str, result,
                   expected: Optional[OracleResult],
                   report: ProgramReport) -> None:
        seed = report.seed
        if result.violations or result.violation or result.fault:
            report.findings.append(Finding(
                member, "violation", cell,
                f"unexpected violation/fault: "
                f"violations={result.violations} "
                f"fault={result.fault!r}", seed=seed))
            return
        if expected is None:
            return
        if result.output != expected.output:
            report.findings.append(Finding(
                member, "oracle_output", cell,
                "VM output differs from AST-evaluator oracle",
                seed=seed, expected=repr(expected.output),
                actual=repr(result.output)))
        if result.exit_code != expected.exit_code:
            report.findings.append(Finding(
                member, "oracle_exit", cell,
                "VM exit code differs from oracle", seed=seed,
                expected=str(expected.exit_code),
                actual=str(result.exit_code)))

    def _reference_run(self, program):
        """Execute under the if/elif reference interpreter tier."""
        from repro.runtime.runtime import Runtime

        runtime = Runtime(program)
        cpu = runtime.main_cpu()
        cpu.step = cpu.step_reference
        return runtime.run(max_steps=self.config.max_steps)

    def _check_incremental(self, member: str, arch: str, source: str,
                           prog: Optional[GenProgram], cold_result,
                           report: ProgramReport) -> None:
        """Cold vs edit-then-edit-back incremental re-link: the PR 8
        byte-identity guarantee, checked by artifact digest."""
        if prog is None:
            variant_source = source + "\nlong __corpus_probe" \
                                      "(long x) { return x; }\n"
        else:
            variant_source = prog.edit_variant().source
        seed = report.seed
        session = BuildSession(arch=arch, devirtualize=False,
                               cache=self._cache, verify_units=True)
        try:
            session.build({member: variant_source})
            incr = session.build({member: source})
        except Exception as exc:  # noqa: BLE001
            report.findings.append(Finding(
                member, "compile_error", f"{arch}/incremental",
                f"{type(exc).__name__}: {exc}", seed=seed))
            return
        report.cells += 1
        cold_digest = artifact_digest(cold_result.program)
        incr_digest = artifact_digest(incr.program)
        if cold_digest != incr_digest:
            report.findings.append(Finding(
                member, "incremental", f"{arch}/incremental",
                f"incremental re-link (kind={incr.kind}) is not "
                f"byte-identical to the cold build", seed=seed,
                expected=cold_digest, actual=incr_digest))

    def _check_lints(self, member: str, source: str,
                     report: ProgramReport) -> None:
        from repro.analysis.dataflow.lints import run_lints
        from repro.mir.lowering import lower_unit
        from repro.toolchain import frontend

        try:
            lint_report = run_lints(
                lower_unit(frontend(source, name=member)))
        except Exception as exc:  # noqa: BLE001
            report.findings.append(Finding(
                member, "harness_error", "lint",
                f"{type(exc).__name__}: {exc}", seed=report.seed))
            return
        for diag in lint_report.errors:
            report.findings.append(Finding(
                member, "lint", "lint",
                f"{diag.code}: {diag.message} "
                f"({diag.function}:{diag.block}:{diag.index})",
                seed=report.seed))


# ---------------------------------------------------------------------------
# Set runs (pool-parallel, no cherry-picking)
# ---------------------------------------------------------------------------

def _member_job(member: str, quick: bool,
                config: CorpusConfig) -> Dict[str, Any]:
    """Worker-side entry: one member through the matrix."""
    harness = DifferentialHarness(config)
    return harness.run_member(member, quick=quick).to_dict()


def run_set(set_name: str, jobs: int = 1,
            config: Optional[CorpusConfig] = None,
            out_path: Optional[str] = None,
            limit: Optional[int] = None,
            job_timeout: float = 600.0) -> SetReport:
    """Run every member of a registered set through the matrix.

    Results keep member order regardless of worker scheduling, and a
    member whose job dies still gets a report (``harness_error``) —
    the set report is complete by construction. ``limit`` truncates
    to the first N members (CI smoke); the truncation is recorded in
    the summary line so a shortened run cannot masquerade as full
    coverage.
    """
    spec = benchmark_set(set_name)
    members = list(spec.members)
    if limit is not None:
        members = members[:limit]
    reports: List[ProgramReport] = []
    cfg = config or CorpusConfig()
    if jobs <= 1:
        for member in members:
            reports.append(DifferentialHarness(cfg).run_member(
                member, quick=spec.quick))
    else:
        pool = WorkerPool(workers=jobs, timeout=job_timeout)
        job_list = [Job(fn=_member_job,
                        args=(member, spec.quick, cfg),
                        id=member, timeout=job_timeout)
                    for member in members]
        for member, result in zip(members, pool.run(job_list)):
            if result.ok:
                reports.append(ProgramReport.from_dict(result.value))
            else:
                reports.append(ProgramReport(
                    member=member, seed=None, status="error",
                    findings=[Finding(
                        member, "harness_error", "pool",
                        f"{result.status}: {result.error}")]))
    report = SetReport(set_name=set_name, reports=reports)
    if out_path is not None:
        write_set_report(report, out_path,
                         truncated=limit is not None and
                         limit < len(spec.members))
    return report


def write_set_report(report: SetReport, path: str,
                     truncated: bool = False) -> None:
    """Persist a set run as deterministic JSONL (no timestamps)."""
    target = Path(path)
    if target.exists():
        target.unlink()
    store = ResultStore(target, timestamps=False)
    for program in report.reports:
        store.append_record(program, set=report.set_name)
    store.append(
        "set_summary", set=report.set_name,
        members=len(report.reports),
        passed=sum(1 for r in report.reports if r.ok),
        diverged=sum(1 for r in report.reports
                     if r.status == "diverged"),
        errors=sum(1 for r in report.reports
                   if r.status == "error"),
        truncated=truncated,
        by_category=dict(sorted(report.by_category().items())))


def load_set_report(path: str) -> SetReport:
    """Rehydrate a set report from its JSONL file."""
    from repro.infra.results import load_records

    records = load_records(path)
    programs = [ProgramReport.from_dict(r) for r in records
                if r.get("kind") == "program"]
    names = {r.get("set") for r in records if "set" in r}
    set_name = names.pop() if len(names) == 1 else "?"
    return SetReport(set_name=set_name, reports=programs)


def render_report(report: SetReport) -> str:
    """Human-readable no-cherry-picking table: every member, one row."""
    lines = [f"corpus set: {report.set_name}",
             f"{'member':<14} {'status':<9} {'lines':>5} "
             f"{'cells':>5}  findings"]
    for program in report.reports:
        cats = {}
        for finding in program.findings:
            cats[finding.category] = cats.get(finding.category, 0) + 1
        summary = ", ".join(f"{k}x{v}" for k, v in
                            sorted(cats.items())) or "-"
        lines.append(f"{program.member:<14} {program.status:<9} "
                     f"{program.source_lines:>5} "
                     f"{program.cells:>5}  {summary}")
    counts = report.by_category()
    lines.append("")
    lines.append(f"members: {len(report.reports)}  "
                 f"passed: {sum(1 for r in report.reports if r.ok)}  "
                 f"diverged: {sum(1 for r in report.reports if r.status == 'diverged')}  "
                 f"errors: {sum(1 for r in report.reports if r.status == 'error')}")
    if counts:
        lines.append("findings by category: " + ", ".join(
            f"{k}={v}" for k, v in sorted(counts.items())))
    else:
        lines.append("findings by category: none")
    return "\n".join(lines) + "\n"
