"""Delta-debugging minimizer for generated corpus programs.

Works directly on the :class:`~repro.workloads.generate.GenProgram`
AST rather than on source text: every reduction keeps the program
well-formed by construction (and the oracle keeps interpreting the
same tree, so oracle agreement survives shrinking). A reduction is
kept iff the caller's *predicate* — "this program still exhibits the
failure" — stays true; anything that breaks compilation simply makes
the predicate false and is rejected, so the passes never need their
own validity checks.

Passes, applied to fixpoint in rounds:

1. **drop-statements** — ddmin-style chunk removal over every block
   (function bodies and all nested blocks), halving chunk sizes down
   to single statements;
2. **shrink-loops** — trip counts to 1, switch cases dropped;
3. **simplify-exprs** — every expression site tried against
   ``0``, ``1``, and each of its own subexpressions (hoisting);
4. **drop-functions / drop-globals** — definitions no longer
   referenced anywhere in the rendered source are removed.

The result records the shrink ratio; ISSUE 10's acceptance bar is a
repro of <= 25 source lines for every fixed miscompile.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.workloads import generate as g

__all__ = ["MinimizeResult", "minimize", "predicate_for"]

Predicate = Callable[[g.GenProgram], bool]


@dataclass
class MinimizeResult:
    program: g.GenProgram
    original_lines: int
    minimized_lines: int
    attempts: int
    accepted: int

    @property
    def shrink_ratio(self) -> float:
        if self.original_lines == 0:
            return 1.0
        return self.minimized_lines / self.original_lines


class _Shrinker:
    def __init__(self, program: g.GenProgram, predicate: Predicate):
        self.best = program
        self.predicate = predicate
        self.attempts = 0
        self.accepted = 0

    def try_candidate(self, candidate: g.GenProgram) -> bool:
        candidate.invalidate()
        self.attempts += 1
        try:
            ok = bool(self.predicate(candidate))
        except Exception:  # noqa: BLE001 - a broken candidate is a "no"
            ok = False
        if ok:
            self.best = candidate
            self.accepted += 1
        return ok

    # -- statement removal -------------------------------------------

    def _blocks(self, program: g.GenProgram
                ) -> List[Tuple[g.GenFunc, List[g.Stmt]]]:
        out: List[Tuple[g.GenFunc, List[g.Stmt]]] = []
        for fn in program.funcs:
            if isinstance(fn, g.SetjmpFunc):
                continue
            stack = [fn.body]
            while stack:
                block = stack.pop()
                out.append((fn, block))
                for stmt in block:
                    stack.extend(stmt.blocks())
        return out

    def drop_statements(self) -> None:
        block_index = 0
        while block_index < len(self._blocks(self.best)):
            size = len(self._blocks(self.best)[block_index][1])
            chunk = max(1, size // 2)
            while chunk >= 1:
                start = 0
                while True:
                    candidate = copy.deepcopy(self.best)
                    cand_blocks = self._blocks(candidate)
                    if block_index >= len(cand_blocks):
                        return
                    cand_block = cand_blocks[block_index][1]
                    if start >= len(cand_block):
                        break
                    del cand_block[start:start + chunk]
                    if not self.try_candidate(candidate):
                        start += chunk
                chunk //= 2
            block_index += 1

    # -- loop / switch shrinking -------------------------------------

    def shrink_loops(self) -> None:
        sites: List[int] = []
        stmts = list(self._stmts(self.best))
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, (g.ForStmt, g.WhileStmt)) and \
                    stmt.count > 1:
                sites.append(index)
            elif isinstance(stmt, g.SwitchStmt) and \
                    len(stmt.cases) > 1:
                sites.append(index)
        for index in sites:
            candidate = copy.deepcopy(self.best)
            cand_stmts = list(self._stmts(candidate))
            if index >= len(cand_stmts):
                continue
            stmt = cand_stmts[index]
            if isinstance(stmt, (g.ForStmt, g.WhileStmt)):
                stmt.count = 1
            elif isinstance(stmt, g.SwitchStmt):
                del stmt.cases[1:]
            self.try_candidate(candidate)

    def _stmts(self, program: g.GenProgram):
        for fn in program.funcs:
            if isinstance(fn, g.SetjmpFunc):
                continue
            yield from g._walk_stmts(fn.body)

    # -- expression simplification -----------------------------------

    def _expr_sites(self, program: g.GenProgram
                    ) -> List[Tuple[object, str, Optional[int]]]:
        """(owner, field, index) for every replaceable Expr site."""
        sites: List[Tuple[object, str, Optional[int]]] = []

        def visit_expr(expr: g.Expr) -> None:
            for name, value in vars(expr).items():
                if isinstance(value, g.Expr):
                    if not isinstance(value, (g.FnAddr, g.FnName)):
                        sites.append((expr, name, None))
                    visit_expr(value)
                elif isinstance(value, list):
                    for i, item in enumerate(value):
                        if isinstance(item, g.Expr):
                            if not isinstance(item, (g.FnAddr,
                                                     g.FnName)):
                                sites.append((expr, name, i))
                            visit_expr(item)

        for fn in program.funcs:
            if isinstance(fn, g.SetjmpFunc):
                continue
            for stmt in g._walk_stmts(fn.body):
                for name, value in vars(stmt).items():
                    if isinstance(value, g.Expr):
                        # the assignment target must stay an lvalue
                        is_target = (isinstance(stmt, g.AssignStmt)
                                     and name == "target")
                        if not is_target and \
                                not isinstance(value, (g.FnAddr,
                                                       g.FnName)):
                            sites.append((stmt, name, None))
                        visit_expr(value)
        return sites

    def simplify_exprs(self, budget: int = 400) -> None:
        progress = True
        while progress and budget > 0:
            progress = False
            count = len(self._expr_sites(self.best))
            for site_index in range(count):
                if budget <= 0:
                    break
                current_sites = self._expr_sites(self.best)
                if site_index >= len(current_sites):
                    continue
                owner, name, list_index = current_sites[site_index]
                current = self._get(owner, name, list_index)
                candidates: List[g.Expr] = []
                if not (isinstance(current, g.Lit) and
                        current.value in (0, 1)):
                    candidates += [g.Lit(1), g.Lit(0)]
                candidates += [c for c in current.subexprs()
                               if not isinstance(c, (g.FnAddr,
                                                     g.FnName))]
                for replacement in candidates:
                    budget -= 1
                    candidate = copy.deepcopy(self.best)
                    cand_sites = self._expr_sites(candidate)
                    if site_index >= len(cand_sites):
                        break
                    c_owner, c_name, c_idx = cand_sites[site_index]
                    self._set(c_owner, c_name, c_idx,
                              copy.deepcopy(replacement))
                    if self.try_candidate(candidate):
                        progress = True
                        break

    @staticmethod
    def _get(owner: object, name: str,
             index: Optional[int]) -> g.Expr:
        value = getattr(owner, name)
        return value[index] if index is not None else value

    @staticmethod
    def _set(owner: object, name: str, index: Optional[int],
             expr: g.Expr) -> None:
        if index is not None:
            getattr(owner, name)[index] = expr
        else:
            setattr(owner, name, expr)

    # -- dead definition removal -------------------------------------

    def drop_functions(self) -> None:
        progress = True
        while progress:
            progress = False
            for index in range(len(self.best.funcs) - 1, -1, -1):
                fn = self.best.funcs[index]
                if fn.name == "main":
                    continue
                if self._referenced(self.best, fn.name, skip=index):
                    continue
                candidate = copy.deepcopy(self.best)
                del candidate.funcs[index]
                if self.try_candidate(candidate):
                    progress = True

    def drop_globals(self) -> None:
        for index in range(len(self.best.globals) - 1, -1, -1):
            glob = self.best.globals[index]
            if self._referenced(self.best, glob.name):
                continue
            candidate = copy.deepcopy(self.best)
            del candidate.globals[index]
            self.try_candidate(candidate)

    @staticmethod
    def _referenced(program: g.GenProgram, name: str,
                    skip: Optional[int] = None) -> bool:
        for index, fn in enumerate(program.funcs):
            if index == skip:
                continue
            if any(name in line for line in fn.render()):
                return True
        for glob in program.globals:
            if glob.name == name:
                continue
            if any(name in line for line in glob.render()):
                return True
        return False


def minimize(program: g.GenProgram, predicate: Predicate,
             rounds: int = 4) -> MinimizeResult:
    """Shrink ``program`` while ``predicate`` holds.

    The input program must already satisfy the predicate; raises
    ``ValueError`` otherwise (a minimizer that silently "minimizes" a
    non-failing program would hide triage mistakes).
    """
    if not predicate(program):
        raise ValueError("program does not satisfy the predicate; "
                         "nothing to minimize")
    original_lines = program.line_count()
    shrinker = _Shrinker(copy.deepcopy(program), predicate)
    for _ in range(rounds):
        before = shrinker.best.line_count()
        shrinker.drop_statements()
        shrinker.shrink_loops()
        shrinker.simplify_exprs()
        shrinker.drop_functions()
        shrinker.drop_globals()
        if shrinker.best.line_count() >= before:
            break
    shrinker.best.invalidate()
    return MinimizeResult(
        program=shrinker.best,
        original_lines=original_lines,
        minimized_lines=shrinker.best.line_count(),
        attempts=shrinker.attempts,
        accepted=shrinker.accepted)


# ---------------------------------------------------------------------------
# Finding-driven predicates
# ---------------------------------------------------------------------------

def predicate_for(finding, config=None) -> Predicate:
    """A predicate that re-checks one harness finding's cell pair.

    Used as ``minimize(program, predicate_for(finding))`` after a
    campaign: the reduced program must still produce a finding of the
    same category (in any cell — shrinking may legally move the
    divergence between cells of the same kind).
    """
    from repro.workloads.corpus import CorpusConfig, \
        DifferentialHarness

    category = finding.category
    cfg = config or CorpusConfig()

    def predicate(program: g.GenProgram) -> bool:
        harness = DifferentialHarness(cfg)
        report = harness.run_program(program)
        return any(f.category == category for f in report.findings)

    return predicate
