"""Seeded property-based TinyC program generator with a built-in oracle.

Every generated program carries two independent semantics:

* ``render()`` — the TinyC source text fed to the real pipeline
  (frontend -> MIR -> codegen -> link -> VM), and
* ``evaluate()`` — a direct AST interpretation that computes the
  expected stdout bytes and exit code without touching the compiler.

The pair is the differential-testing contract: any disagreement
between the oracle and a VM run, or between two pipeline
configurations, is a finding (see :mod:`repro.workloads.corpus`).

The generator only emits programs whose behaviour is fully defined
under the repo's VM semantics, which the evaluator mirrors exactly:

* all arithmetic is 64-bit two's-complement (``wrap64``);
* shift counts are masked ``& 63`` (the VM defines oversize shifts);
* ``/`` and ``%`` truncate toward zero; divisors are forced odd with
  ``| 1`` so they are never zero; ``LONG_MIN / -1`` wraps;
* comparisons are unsigned iff an operand is statically unsigned;
* narrow stores truncate, narrow loads sign- or zero-extend;
* ``print_int`` mirrors the libc routine byte for byte (including the
  ``LONG_MIN`` edge case, which prints a bare ``-``);
* process exit codes are the low 8 bits of ``main``'s return value.

Hazards the generator avoids by construction (each is a knob so a
future PR can turn them into deliberate probes): division by zero,
out-of-bounds accesses (indices are masked to power-of-two bounds),
unbounded loops (fresh counters the body never writes), calls inside
array-index/divisor subexpressions (evaluation-order freedom), and
floating point (not needed for the ISSUE-10 matrix).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "GenConfig",
    "GenProgram",
    "OracleResult",
    "OracleError",
    "generate",
    "wrap64",
    "format_print_int",
]

MASK64 = (1 << 64) - 1
_SIGN = 1 << 63
LONG_MIN = -(1 << 63)


def wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    return ((value + _SIGN) & MASK64) - _SIGN


def u64(value: int) -> int:
    return value & MASK64


#: ctype name -> (byte width, signed)
CTYPES: Dict[str, Tuple[int, bool]] = {
    "long": (8, True),
    "int": (4, True),
    "short": (2, True),
    "char": (1, True),
    "unsigned long": (8, False),
    "unsigned int": (4, False),
    "unsigned short": (2, False),
    "unsigned char": (1, False),
}

#: narrow types usable for cast chains and narrow variables
NARROW_TYPES = ("int", "short", "char",
                "unsigned int", "unsigned short", "unsigned char")


def extend(value: int, ctype: str) -> int:
    """Truncate ``value`` to ``ctype``'s width, then extend as a load
    of that width would (sign-extend signed, zero-extend unsigned)."""
    width, signed = CTYPES[ctype]
    bits = 8 * width
    low = value & ((1 << bits) - 1)
    if signed and low & (1 << (bits - 1)):
        low -= 1 << bits
    return low


def format_print_int(value: int) -> bytes:
    """Byte-exact model of the libc ``print_int`` routine."""
    value = wrap64(value)
    neg = value < 0
    if neg:
        value = wrap64(-value)
    digits = b""
    if value == 0:
        digits = b"0"
    while value > 0:
        digits = bytes([ord("0") + value % 10]) + digits
        value //= 10
    if neg:
        digits = b"-" + digits
    return digits


def _c_divide(a: int, b: int, mod: bool) -> int:
    """The VM's division: truncation toward zero, 64-bit wrap."""
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    if mod:
        return wrap64(a - wrap64(q * b))
    return wrap64(q)


# ---------------------------------------------------------------------------
# Oracle machinery
# ---------------------------------------------------------------------------

class OracleError(Exception):
    """The oracle could not evaluate the program (generator bug)."""


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


@dataclass(frozen=True)
class FnVal:
    """A function designator used as a value (fn-ptr tables, casts)."""

    name: str


@dataclass(frozen=True)
class StrVal:
    """A string literal's address used as a value (``char *`` global)."""

    name: str


@dataclass
class OracleResult:
    output: bytes
    exit_code: int


class Env:
    """One dynamic frame: parameter/local bindings of the active call."""

    def __init__(self) -> None:
        self.values: Dict[str, object] = {}
        self.types: Dict[str, str] = {}

    def declare(self, name: str, ctype: str, value: object) -> None:
        self.types[name] = ctype
        self.values[name] = self._store(name, ctype, value)

    def assign(self, name: str, value: object) -> None:
        self.values[name] = self._store(name, self.types[name], value)

    def _store(self, name: str, ctype: str, value: object) -> object:
        if isinstance(value, (FnVal, StrVal)):
            return value
        if ctype not in CTYPES:       # pointer-typed local: keep as-is
            return value
        return extend(int(value), ctype)

    def load(self, name: str) -> object:
        return self.values[name]


class Oracle:
    """Direct evaluator over the generated AST."""

    def __init__(self, program: "GenProgram", fuel: int = 2_000_000):
        self.program = program
        self.funcs = {f.name: f for f in program.funcs}
        self.fuel = fuel
        self.out = bytearray()
        self.globals: Dict[str, bytearray] = {}
        self.global_meta: Dict[str, "GenGlobal"] = {}
        self.global_ptrs: Dict[str, object] = {}
        for glob in program.globals:
            self.global_meta[glob.name] = glob
            if glob.kind in ("scalar", "array", "buffer"):
                self.globals[glob.name] = bytearray(glob.byte_size())
                glob.init_bytes(self.globals[glob.name])
            elif glob.kind == "string":
                self.global_ptrs[glob.name] = StrVal(glob.name)
            elif glob.kind == "fptr_table":
                self.global_ptrs[glob.name] = [
                    FnVal(n) for n in glob.fn_names]

    # -- memory ------------------------------------------------------

    def _mem(self, name: str) -> bytearray:
        return self.globals[name]

    def load(self, name: str, offset: int, ctype: str) -> int:
        width, signed = CTYPES[ctype]
        mem = self._mem(name)
        if offset < 0 or offset + width > len(mem):
            raise OracleError(
                f"oracle OOB load {name}+{offset} width {width}")
        raw = int.from_bytes(mem[offset:offset + width], "little")
        if signed and raw & (1 << (8 * width - 1)):
            raw -= 1 << (8 * width)
        return raw

    def store(self, name: str, offset: int, ctype: str,
              value: int) -> None:
        width, _ = CTYPES[ctype]
        mem = self._mem(name)
        if offset < 0 or offset + width > len(mem):
            raise OracleError(
                f"oracle OOB store {name}+{offset} width {width}")
        mem[offset:offset + width] = (u64(value) &
                                      ((1 << (8 * width)) - 1)
                                      ).to_bytes(width, "little")

    def string_byte(self, name: str, index: int) -> int:
        text = self.global_meta[name].text
        data = text.encode("ascii") + b"\x00"
        if index < 0 or index >= len(data):
            raise OracleError(f"oracle OOB string read {name}[{index}]")
        return data[index]

    # -- execution ---------------------------------------------------

    def burn(self, amount: int = 1) -> None:
        self.fuel -= amount
        if self.fuel <= 0:
            raise OracleError("oracle fuel exhausted")

    def call(self, name: str, args: Sequence[object]) -> int:
        self.burn(4)
        fn = self.funcs.get(name)
        if fn is None:
            raise OracleError(f"oracle call to unknown function {name}")
        return fn.invoke(self, args)

    def run(self) -> OracleResult:
        code = self.call("main", [])
        return OracleResult(bytes(self.out), int(code) & 0xFF)


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    """Base: every expression renders to TinyC and evaluates to a
    64-bit signed value (or an FnVal/StrVal for pointer shapes)."""

    def render(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def evaluate(self, oracle: Oracle, env: Env) -> object:
        raise NotImplementedError  # pragma: no cover - abstract

    def subexprs(self) -> List["Expr"]:
        return []

    def is_unsigned(self) -> bool:
        """Whether this expression's *static* C type is unsigned.

        The VM holds every value in a full 64-bit register; the static
        type only selects ``sar`` vs ``shr`` for ``>>`` and signed vs
        unsigned comparisons — exactly what the oracle needs to know.
        The propagation mirrors the typechecker: ``% << >> & | ^``
        take the left type verbatim, ``+ - * /`` take the left type
        after (float-only) unification, casts impose their target, and
        comparisons/logicals are ``int``.
        """
        return False


@dataclass
class Lit(Expr):
    value: int

    def render(self) -> str:
        if self.value < 0:
            return f"(-({-self.value}))"
        return str(self.value)

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        return self.value


@dataclass
class LocalRef(Expr):
    name: str
    ctype: str = "long"

    def render(self) -> str:
        return self.name

    def evaluate(self, oracle: Oracle, env: Env) -> object:
        oracle.burn()
        return env.load(self.name)

    def is_unsigned(self) -> bool:
        return self.ctype in CTYPES and not CTYPES[self.ctype][1]


@dataclass
class GlobalRef(Expr):
    name: str
    ctype: str

    def render(self) -> str:
        return self.name

    def evaluate(self, oracle: Oracle, env: Env) -> object:
        oracle.burn()
        if self.name in oracle.global_ptrs:
            return oracle.global_ptrs[self.name]
        return oracle.load(self.name, 0, self.ctype)

    def is_unsigned(self) -> bool:
        return self.ctype in CTYPES and not CTYPES[self.ctype][1]


@dataclass
class Index(Expr):
    """``name[(idx) & mask]`` over a global array of ``elem_ctype``."""

    name: str
    elem_ctype: str
    mask: int
    idx: Expr

    def render(self) -> str:
        return f"{self.name}[({self.idx.render()}) & {self.mask}]"

    def _offset(self, oracle: Oracle, env: Env) -> int:
        idx = u64(int(self.idx.evaluate(oracle, env))) & self.mask
        return idx * CTYPES[self.elem_ctype][0]

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        return oracle.load(self.name, self._offset(oracle, env),
                           self.elem_ctype)

    def subexprs(self) -> List[Expr]:
        return [self.idx]

    def is_unsigned(self) -> bool:
        return not CTYPES[self.elem_ctype][1]


@dataclass
class StrIndex(Expr):
    """``gs[(idx) & mask]`` — byte read from a string global."""

    name: str
    mask: int
    idx: Expr

    def render(self) -> str:
        return f"{self.name}[({self.idx.render()}) & {self.mask}]"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        index = u64(int(self.idx.evaluate(oracle, env))) & self.mask
        return extend(oracle.string_byte(self.name, index), "char")

    def subexprs(self) -> List[Expr]:
        return [self.idx]


@dataclass
class MemAccess(Expr):
    """``*(T *)(buf + ((off) & mask))`` — possibly page-straddling,
    possibly unaligned load from a char buffer global."""

    buf: str
    ctype: str
    mask: int
    off: Expr

    def render(self) -> str:
        return (f"(*({self.ctype} *)({self.buf} + "
                f"(({self.off.render()}) & {self.mask})))")

    def offset(self, oracle: Oracle, env: Env) -> int:
        return u64(int(self.off.evaluate(oracle, env))) & self.mask

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        return oracle.load(self.buf, self.offset(oracle, env),
                           self.ctype)

    def subexprs(self) -> List[Expr]:
        return [self.off]

    def is_unsigned(self) -> bool:
        return not CTYPES[self.ctype][1]


_BIN_EVAL: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: wrap64(a + b),
    "-": lambda a, b: wrap64(a - b),
    "*": lambda a, b: wrap64(a * b),
    "&": lambda a, b: wrap64(u64(a) & u64(b)),
    "|": lambda a, b: wrap64(u64(a) | u64(b)),
    "^": lambda a, b: wrap64(u64(a) ^ u64(b)),
}


@dataclass
class Bin(Expr):
    op: str
    a: Expr
    b: Expr

    def render(self) -> str:
        return f"(({self.a.render()}) {self.op} ({self.b.render()}))"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        left = int(self.a.evaluate(oracle, env))
        right = int(self.b.evaluate(oracle, env))
        return _BIN_EVAL[self.op](left, right)

    def subexprs(self) -> List[Expr]:
        return [self.a, self.b]

    def is_unsigned(self) -> bool:
        return self.a.is_unsigned()


@dataclass
class Shift(Expr):
    """``<<`` or ``>>``; ``unsigned`` selects shr over sar for ``>>``
    by casting the left operand. Counts are masked ``& 63`` (VM).
    An organically unsigned left operand also selects shr — the
    evaluator honors the static type either way."""

    op: str
    a: Expr
    b: Expr
    unsigned: bool = False

    def render(self) -> str:
        left = f"({self.a.render()})"
        if self.unsigned:
            left = f"((unsigned long){left})"
        return f"({left} {self.op} ({self.b.render()}))"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        left = int(self.a.evaluate(oracle, env))
        count = u64(int(self.b.evaluate(oracle, env))) & 63
        if self.op == "<<":
            return wrap64(u64(left) << count)
        if self.unsigned or self.a.is_unsigned():
            return wrap64(u64(left) >> count)
        return wrap64(left >> count)

    def subexprs(self) -> List[Expr]:
        return [self.a, self.b]

    def is_unsigned(self) -> bool:
        return self.unsigned or self.a.is_unsigned()


@dataclass
class SafeDiv(Expr):
    """``/`` or ``%`` with an odd (hence nonzero) divisor."""

    op: str
    a: Expr
    b: Expr

    def render(self) -> str:
        return (f"(({self.a.render()}) {self.op} "
                f"(({self.b.render()}) | 1))")

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        left = int(self.a.evaluate(oracle, env))
        right = wrap64(u64(int(self.b.evaluate(oracle, env))) | 1)
        return _c_divide(left, right, self.op == "%")

    def subexprs(self) -> List[Expr]:
        return [self.a, self.b]

    def is_unsigned(self) -> bool:
        return self.a.is_unsigned()


@dataclass
class Cmp(Expr):
    op: str
    a: Expr
    b: Expr
    unsigned: bool = False

    def render(self) -> str:
        if self.unsigned:
            return (f"(((unsigned long)({self.a.render()})) {self.op} "
                    f"((unsigned long)({self.b.render()})))")
        return f"(({self.a.render()}) {self.op} ({self.b.render()}))"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        left = int(self.a.evaluate(oracle, env))
        right = int(self.b.evaluate(oracle, env))
        effective = (self.unsigned or self.a.is_unsigned()
                     or self.b.is_unsigned())
        if effective and self.op in ("<", "<=", ">", ">="):
            left, right = u64(left), u64(right)
        ops: Dict[str, Callable[[int, int], bool]] = {
            "<": lambda x, y: x < y, "<=": lambda x, y: x <= y,
            ">": lambda x, y: x > y, ">=": lambda x, y: x >= y,
            "==": lambda x, y: x == y, "!=": lambda x, y: x != y,
        }
        return 1 if ops[self.op](left, right) else 0

    def subexprs(self) -> List[Expr]:
        return [self.a, self.b]


@dataclass
class Logical(Expr):
    """Short-circuit ``&&`` / ``||``; result is 0 or 1."""

    op: str
    a: Expr
    b: Expr

    def render(self) -> str:
        return f"(({self.a.render()}) {self.op} ({self.b.render()}))"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        left = int(self.a.evaluate(oracle, env))
        if self.op == "&&":
            if left == 0:
                return 0
            return 1 if int(self.b.evaluate(oracle, env)) != 0 else 0
        if left != 0:
            return 1
        return 1 if int(self.b.evaluate(oracle, env)) != 0 else 0

    def subexprs(self) -> List[Expr]:
        return [self.a, self.b]


@dataclass
class Unary(Expr):
    op: str  # "-", "~", "!"
    a: Expr

    def render(self) -> str:
        return f"({self.op}({self.a.render()}))"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        value = int(self.a.evaluate(oracle, env))
        if self.op == "-":
            return wrap64(-value)
        if self.op == "~":
            return wrap64(~value)
        return 1 if value == 0 else 0

    def subexprs(self) -> List[Expr]:
        return [self.a]

    def is_unsigned(self) -> bool:
        return self.op != "!" and self.a.is_unsigned()


@dataclass
class Ternary(Expr):
    cond: Expr
    a: Expr
    b: Expr

    def render(self) -> str:
        return (f"(({self.cond.render()}) ? ({self.a.render()}) "
                f": ({self.b.render()}))")

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        if int(self.cond.evaluate(oracle, env)) != 0:
            return int(self.a.evaluate(oracle, env))
        return int(self.b.evaluate(oracle, env))

    def subexprs(self) -> List[Expr]:
        return [self.cond, self.a, self.b]

    def is_unsigned(self) -> bool:
        return self.a.is_unsigned()


@dataclass
class CastExpr(Expr):
    """``(T)(E)`` for integer T: truncate then extend."""

    ctype: str
    a: Expr

    def render(self) -> str:
        return f"(({self.ctype})({self.a.render()}))"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        return extend(int(self.a.evaluate(oracle, env)), self.ctype)

    def subexprs(self) -> List[Expr]:
        return [self.a]

    def is_unsigned(self) -> bool:
        return not CTYPES[self.ctype][1]


@dataclass
class FnAddr(Expr):
    """``(long)fname`` — a code address as an opaque nonzero value.

    The oracle never knows the numeric address, so FnAddr values only
    appear inside :class:`FnPredicate`, which reduces them to facts
    that are layout-independent (nonzero-ness, same-function equality).
    """

    fname: str

    def render(self) -> str:
        return f"((long){self.fname})"

    def evaluate(self, oracle: Oracle, env: Env) -> FnVal:
        oracle.burn()
        return FnVal(self.fname)


@dataclass
class FnPredicate(Expr):
    """Layout-independent predicate over one or two code addresses:
    ``((long)f != 0)`` or ``((long)f == (long)g)``."""

    op: str  # "!=0" | "==" | "!="
    a: FnAddr
    b: Optional[FnAddr] = None

    def render(self) -> str:
        if self.op == "!=0":
            return f"({self.a.render()} != 0)"
        return f"({self.a.render()} {self.op} {self.b.render()})"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        oracle.burn()
        if self.op == "!=0":
            return 1
        same = self.a.fname == self.b.fname
        return int(same if self.op == "==" else not same)


@dataclass
class Call(Expr):
    """Direct call ``fname(args...)``."""

    fname: str
    args: List[Expr] = field(default_factory=list)

    def render(self) -> str:
        rendered = ", ".join(a.render() for a in self.args)
        return f"{self.fname}({rendered})"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        values = [a.evaluate(oracle, env) for a in self.args]
        return oracle.call(self.fname, values)

    def subexprs(self) -> List[Expr]:
        return list(self.args)


@dataclass
class TableCall(Expr):
    """Indirect call through a global fn-ptr table:
    ``tab[(idx) & mask](args...)`` — the MCFI-checked edge."""

    table: str
    mask: int
    idx: Expr
    args: List[Expr] = field(default_factory=list)

    def render(self) -> str:
        rendered = ", ".join(a.render() for a in self.args)
        return (f"{self.table}[({self.idx.render()}) & {self.mask}]"
                f"({rendered})")

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        index = u64(int(self.idx.evaluate(oracle, env))) & self.mask
        table = oracle.global_ptrs[self.table]
        target = table[index]
        values = [a.evaluate(oracle, env) for a in self.args]
        return oracle.call(target.name, values)

    def subexprs(self) -> List[Expr]:
        return [self.idx] + list(self.args)


@dataclass
class PtrParamCall(Expr):
    """Call through a fn-ptr *parameter*: ``f(args...)`` where ``f``
    is a pointer-typed local bound at the call site (cast chains that
    stay signature-compatible)."""

    pname: str
    args: List[Expr] = field(default_factory=list)

    def render(self) -> str:
        rendered = ", ".join(a.render() for a in self.args)
        return f"{self.pname}({rendered})"

    def evaluate(self, oracle: Oracle, env: Env) -> int:
        target = env.load(self.pname)
        if not isinstance(target, FnVal):
            raise OracleError(f"{self.pname} is not a function value")
        values = [a.evaluate(oracle, env) for a in self.args]
        return oracle.call(target.name, values)

    def subexprs(self) -> List[Expr]:
        return list(self.args)


@dataclass
class FnName(Expr):
    """A bare function designator (argument to a fn-ptr parameter)."""

    fname: str

    def render(self) -> str:
        return self.fname

    def evaluate(self, oracle: Oracle, env: Env) -> FnVal:
        oracle.burn()
        return FnVal(self.fname)


# ---------------------------------------------------------------------------
# Statement nodes
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    def render(self, indent: int) -> List[str]:  # pragma: no cover
        raise NotImplementedError

    def execute(self, oracle: Oracle, env: Env) -> None:
        raise NotImplementedError  # pragma: no cover

    def blocks(self) -> List[List["Stmt"]]:
        """Nested statement lists, for the minimizer."""
        return []

    def exprs(self) -> List[Expr]:
        """Directly attached expressions, for the minimizer."""
        return []


def _render_block(stmts: Sequence[Stmt], indent: int) -> List[str]:
    lines: List[str] = []
    for stmt in stmts:
        lines.extend(stmt.render(indent))
    return lines


def _exec_block(stmts: Sequence[Stmt], oracle: Oracle,
                env: Env) -> None:
    for stmt in stmts:
        stmt.execute(oracle, env)


@dataclass
class DeclStmt(Stmt):
    name: str
    ctype: str
    init: Expr

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        return [f"{pad}{self.ctype} {self.name} = "
                f"{self.init.render()};"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        env.declare(self.name, self.ctype,
                    self.init.evaluate(oracle, env))

    def exprs(self) -> List[Expr]:
        return [self.init]


@dataclass
class AssignStmt(Stmt):
    """Assignment (simple or compound) to a local, global scalar,
    array element, or buffer byte range."""

    target: Expr  # LocalRef | GlobalRef | Index | MemAccess
    op: str       # "=", "+=", "-=", "^=", "&=", "|="
    value: Expr

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        return [f"{pad}{self.target.render()} {self.op} "
                f"{self.value.render()};"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        target = self.target
        if isinstance(target, LocalRef):
            if self.op == "=":
                env.assign(target.name,
                           self.value.evaluate(oracle, env))
            else:
                old = int(env.load(target.name))
                rhs = int(self.value.evaluate(oracle, env))
                env.assign(target.name, self._combine(old, rhs))
            return
        if isinstance(target, GlobalRef):
            ctype = target.ctype
            if self.op == "=":
                new = int(self.value.evaluate(oracle, env))
            else:
                old = oracle.load(target.name, 0, ctype)
                new = self._combine(
                    old, int(self.value.evaluate(oracle, env)))
            oracle.store(target.name, 0, ctype, new)
            return
        if isinstance(target, Index):
            offset = target._offset(oracle, env)
            ctype = target.elem_ctype
            if self.op == "=":
                new = int(self.value.evaluate(oracle, env))
            else:
                old = oracle.load(target.name, offset, ctype)
                new = self._combine(
                    old, int(self.value.evaluate(oracle, env)))
            oracle.store(target.name, offset, ctype, new)
            return
        if isinstance(target, MemAccess):
            offset = target.offset(oracle, env)
            ctype = target.ctype
            if self.op == "=":
                new = int(self.value.evaluate(oracle, env))
            else:
                old = oracle.load(target.buf, offset, ctype)
                new = self._combine(
                    old, int(self.value.evaluate(oracle, env)))
            oracle.store(target.buf, offset, ctype, new)
            return
        raise OracleError(f"unsupported assign target {target!r}")

    def _combine(self, old: int, rhs: int) -> int:
        op = self.op[0]
        if op in _BIN_EVAL:
            return _BIN_EVAL[op](old, rhs)
        raise OracleError(f"unsupported compound op {self.op}")

    def exprs(self) -> List[Expr]:
        return [self.value]


@dataclass
class ExprStmt(Stmt):
    expr: Expr

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        return [f"{pad}{self.expr.render()};"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        self.expr.evaluate(oracle, env)

    def exprs(self) -> List[Expr]:
        return [self.expr]


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then: List[Stmt]
    els: Optional[List[Stmt]] = None

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        lines = [f"{pad}if ({self.cond.render()}) {{"]
        lines.extend(_render_block(self.then, indent + 1))
        if self.els is not None:
            lines.append(f"{pad}}} else {{")
            lines.extend(_render_block(self.els, indent + 1))
        lines.append(f"{pad}}}")
        return lines

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        if int(self.cond.evaluate(oracle, env)) != 0:
            _exec_block(self.then, oracle, env)
        elif self.els is not None:
            _exec_block(self.els, oracle, env)

    def blocks(self) -> List[List[Stmt]]:
        out = [self.then]
        if self.els is not None:
            out.append(self.els)
        return out

    def exprs(self) -> List[Expr]:
        return [self.cond]


@dataclass
class ForStmt(Stmt):
    """``for (v = 0; v < count; v = v + 1)`` over a pre-declared
    counter the body never writes — guaranteed termination."""

    var: str
    count: int
    body: List[Stmt]

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        lines = [f"{pad}for ({self.var} = 0; {self.var} < "
                 f"{self.count}; {self.var} = {self.var} + 1) {{"]
        lines.extend(_render_block(self.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines

    def execute(self, oracle: Oracle, env: Env) -> None:
        env.assign(self.var, 0)
        while int(env.load(self.var)) < self.count:
            oracle.burn()
            try:
                _exec_block(self.body, oracle, env)
            except _Break:
                break
            except _Continue:
                pass
            env.assign(self.var, int(env.load(self.var)) + 1)

    def blocks(self) -> List[List[Stmt]]:
        return [self.body]


@dataclass
class WhileStmt(Stmt):
    """``while (v > 0) { v = v - 1; body }`` — counter pre-declared,
    decremented first so ``continue`` cannot loop forever."""

    var: str
    count: int
    body: List[Stmt]
    do_while: bool = False

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        inner = "    " * (indent + 1)
        if self.do_while:
            lines = [f"{pad}{self.var} = {self.count};",
                     f"{pad}do {{",
                     f"{inner}{self.var} = {self.var} - 1;"]
            lines.extend(_render_block(self.body, indent + 1))
            lines.append(f"{pad}}} while ({self.var} > 0);")
            return lines
        lines = [f"{pad}{self.var} = {self.count};",
                 f"{pad}while ({self.var} > 0) {{",
                 f"{inner}{self.var} = {self.var} - 1;"]
        lines.extend(_render_block(self.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines

    def execute(self, oracle: Oracle, env: Env) -> None:
        env.assign(self.var, self.count)
        first = True
        while True:
            count = int(env.load(self.var))
            if self.do_while and first:
                first = False
            elif count <= 0:
                break
            oracle.burn()
            env.assign(self.var, count - 1)
            try:
                _exec_block(self.body, oracle, env)
            except _Break:
                break
            except _Continue:
                continue
            if self.do_while and int(env.load(self.var)) <= 0:
                break

    def blocks(self) -> List[List[Stmt]]:
        return [self.body]


@dataclass
class BreakStmt(Stmt):
    def render(self, indent: int) -> List[str]:
        return ["    " * indent + "break;"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        raise _Break()


@dataclass
class ContinueStmt(Stmt):
    def render(self, indent: int) -> List[str]:
        return ["    " * indent + "continue;"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        raise _Continue()


@dataclass
class SwitchCase:
    value: int
    body: List[Stmt]
    falls_through: bool = False


@dataclass
class SwitchStmt(Stmt):
    """``switch ((scrut) & mask)`` with optional fallthrough runs and
    an optional default. Dense value sets trigger the jump-table
    lowering (an MCFI-checked indirect jump); sparse sets take the
    compare chain. ``break``/``continue`` never appear inside case
    bodies (only the structural case-terminating ``break``)."""

    scrut: Expr
    mask: int
    cases: List[SwitchCase]
    default: Optional[List[Stmt]] = None

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        inner = "    " * (indent + 1)
        lines = [f"{pad}switch (({self.scrut.render()}) & "
                 f"{self.mask}) {{"]
        for case in self.cases:
            lines.append(f"{pad}case {case.value}:")
            lines.extend(_render_block(case.body, indent + 1))
            if not case.falls_through:
                lines.append(f"{inner}break;")
        if self.default is not None:
            lines.append(f"{pad}default:")
            lines.extend(_render_block(self.default, indent + 1))
            lines.append(f"{inner}break;")
        lines.append(f"{pad}}}")
        return lines

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        scrut = u64(int(self.scrut.evaluate(oracle, env))) & self.mask
        start = None
        for i, case in enumerate(self.cases):
            if case.value == scrut:
                start = i
                break
        if start is None:
            if self.default is not None:
                _exec_block(self.default, oracle, env)
            return
        for case in self.cases[start:]:
            _exec_block(case.body, oracle, env)
            if not case.falls_through:
                return
        if self.default is not None:
            _exec_block(self.default, oracle, env)

    def blocks(self) -> List[List[Stmt]]:
        out = [case.body for case in self.cases]
        if self.default is not None:
            out.append(self.default)
        return out

    def exprs(self) -> List[Expr]:
        return [self.scrut]


@dataclass
class ReturnStmt(Stmt):
    value: Expr

    def render(self, indent: int) -> List[str]:
        return ["    " * indent + f"return {self.value.render()};"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        raise _Return(int(self.value.evaluate(oracle, env)))

    def exprs(self) -> List[Expr]:
        return [self.value]


@dataclass
class PrintIntStmt(Stmt):
    value: Expr

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        return [f"{pad}print_int({self.value.render()}); "
                f"print_char(10);"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        value = int(self.value.evaluate(oracle, env))
        oracle.out.extend(format_print_int(value))
        oracle.out.append(10)

    def exprs(self) -> List[Expr]:
        return [self.value]


@dataclass
class PrintStrStmt(Stmt):
    gname: str

    def render(self, indent: int) -> List[str]:
        pad = "    " * indent
        return [f"{pad}print_str({self.gname}); print_char(10);"]

    def execute(self, oracle: Oracle, env: Env) -> None:
        oracle.burn()
        text = oracle.global_meta[self.gname].text
        oracle.out.extend(text.encode("ascii"))
        oracle.out.append(10)


# ---------------------------------------------------------------------------
# Globals
# ---------------------------------------------------------------------------

@dataclass
class GenGlobal:
    """One global definition.

    kind ∈ {scalar, array, buffer, string, fptr_table}:

    * scalar: ``<ctype> name = <const>;``
    * array: ``<ctype> name[length] = {..};`` (length a power of two)
    * buffer: ``char name[size];`` (zero, page-straddling playground)
    * string: ``char *name = "text";`` (len(text) a power of two)
    * fptr_table: ``long (*name[k])(long, long) = {f, g, ...};``
    """

    name: str
    kind: str
    ctype: str = "long"
    length: int = 0
    init: Tuple[int, ...] = ()
    text: str = ""
    fn_names: Tuple[str, ...] = ()

    def byte_size(self) -> int:
        if self.kind == "scalar":
            return CTYPES[self.ctype][0]
        if self.kind == "array":
            return self.length * CTYPES[self.ctype][0]
        if self.kind == "buffer":
            return self.length
        raise OracleError(f"{self.name}: no byte image")

    def init_bytes(self, mem: bytearray) -> None:
        if self.kind == "scalar":
            width = CTYPES[self.ctype][0]
            value = self.init[0] if self.init else 0
            mem[0:width] = (u64(value) & ((1 << (8 * width)) - 1)
                            ).to_bytes(width, "little")
        elif self.kind == "array":
            width = CTYPES[self.ctype][0]
            for i, value in enumerate(self.init):
                mem[i * width:(i + 1) * width] = (
                    u64(value) & ((1 << (8 * width)) - 1)
                ).to_bytes(width, "little")

    def render(self) -> List[str]:
        if self.kind == "scalar":
            value = self.init[0] if self.init else 0
            lit = str(value) if value >= 0 else f"(-({-value}))"
            return [f"{self.ctype} {self.name} = {lit};"]
        if self.kind == "array":
            items = ", ".join(
                str(v) if v >= 0 else f"(-({-v}))" for v in self.init)
            return [f"{self.ctype} {self.name}[{self.length}] = "
                    f"{{{items}}};"]
        if self.kind == "buffer":
            return [f"char {self.name}[{self.length}];"]
        if self.kind == "string":
            return [f'char *{self.name} = "{self.text}";']
        if self.kind == "fptr_table":
            names = ", ".join(self.fn_names)
            return [f"long (*{self.name}[{len(self.fn_names)}])"
                    f"(long, long) = {{{names}}};"]
        raise OracleError(f"unknown global kind {self.kind}")


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------

@dataclass
class GenFunc:
    """``long name(params...) { locals; body }``.

    ``ptr_params`` marks parameters typed ``long (*)(long, long)``;
    ``variadic`` appends ``...`` to the parameter list (extra
    arguments are evaluated by callers and ignored by the body, which
    only ever touches the named parameters)."""

    name: str
    params: List[str] = field(default_factory=list)
    ptr_params: List[str] = field(default_factory=list)
    locals_: List[Tuple[str, str]] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    variadic: bool = False
    ret_type: str = "long"
    #: recursive shapes are called with bounded literal depths only;
    #: they never enter fn-ptr tables or pointer-parameter pools
    #: (an attacker-controlled 64-bit argument would unbound them)
    recursive: bool = False

    def signature(self) -> str:
        parts = [f"long {p}" for p in self.params]
        parts += [f"long (*{p})(long, long)" for p in self.ptr_params]
        if self.variadic:
            parts.append("...")
        rendered = ", ".join(parts) if parts else "void"
        return f"{self.ret_type} {self.name}({rendered})"

    def render(self) -> List[str]:
        lines = [f"{self.signature()} {{"]
        for name, ctype in self.locals_:
            lines.append(f"    {ctype} {name} = 0;")
        lines.extend(_render_block(self.body, 1))
        lines.append("    return 0;")
        lines.append("}")
        return lines

    def invoke(self, oracle: Oracle, args: Sequence[object]) -> int:
        env = Env()
        names = self.params + self.ptr_params
        for name, value in zip(names, args):
            if name in self.ptr_params:
                env.declare(name, "fnptr", value)
            else:
                env.declare(name, "long", int(value))
        for name, ctype in self.locals_:
            env.declare(name, ctype, 0)
        try:
            _exec_block(self.body, oracle, env)
        except _Return as ret:
            return ret.value
        return 0


@dataclass
class SetjmpFunc(GenFunc):
    """The fixed setjmp/longjmp template (semantics known exactly):

    .. code-block:: c

        long name(long a) {
            long t = 0;
            long r = setjmp(jb);
            t = t + r * 10 + (<step> evaluated this iteration);
            if (r < K) { longjmp(jb, r + 1); }
            return t;
        }

    Locals live in stack slots, so ``t`` accumulates across the K+1
    passes. ``step`` is pure in ``a`` and globals (which the template
    never writes), so the oracle evaluates it once per pass.
    """

    jb_name: str = "jb"
    hops: int = 2
    step: Expr = field(default_factory=lambda: Lit(1))

    def render(self) -> List[str]:
        return [
            f"long {self.name}(long a) {{",
            "    long t = 0;",
            "    long r = 0;",
            f"    r = setjmp({self.jb_name});",
            f"    t = t + r * 10 + ({self.step.render()});",
            f"    if (r < {self.hops}) {{ "
            f"longjmp({self.jb_name}, r + 1); }}",
            "    return t;",
            "}",
        ]

    def invoke(self, oracle: Oracle, args: Sequence[object]) -> int:
        env = Env()
        env.declare("a", "long", int(args[0]) if args else 0)
        total = 0
        for hop in range(self.hops + 1):
            oracle.burn(4)
            step = int(self.step.evaluate(oracle, env))
            total = wrap64(total + wrap64(hop * 10) + step)
        return total


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------

@dataclass
class GenConfig:
    """Grammar knobs. All sizes are upper bounds; the rng picks
    within them. Every knob is honored deterministically for a given
    seed, so (seed, config) identifies a program byte-for-byte."""

    n_leaf: int = 4           #: pure arithmetic helpers
    n_mid: int = 3            #: helpers with loops/switch/global writes
    max_stmts: int = 5        #: statements per generated block
    max_depth: int = 3        #: expression tree depth
    max_block_depth: int = 2  #: nested control-flow depth
    loop_max: int = 6         #: max trip count per loop
    main_actions: int = 8     #: print/call statements in main
    fuel: int = 400_000       #: oracle evaluation budget

    fptr: bool = True         #: fn-ptr tables + indirect calls
    ptr_param: bool = True    #: fn-ptr parameters (compatible chains)
    fn_casts: bool = True     #: incompatible cast chains (never called)
    variadic: bool = True     #: variadic definitions + calls
    recursion: bool = True    #: self/mutual recursion, tail shapes
    setjmp: bool = True       #: the setjmp/longjmp template
    straddle: bool = True     #: unaligned page-straddling buffer ops
    strings: bool = True      #: string globals, print_str, byte reads
    switch: bool = True       #: dense + sparse switch statements
    narrow: bool = True       #: narrow-typed locals/globals/casts

    @classmethod
    def quick(cls) -> "GenConfig":
        return cls(n_leaf=3, n_mid=2, max_stmts=4, max_depth=2,
                   loop_max=4, main_actions=6)


@dataclass
class GenProgram:
    seed: int
    config: GenConfig
    globals: List[GenGlobal]
    funcs: List[GenFunc]

    _source: Optional[str] = None

    @property
    def name(self) -> str:
        return f"gen{self.seed}"

    def render(self) -> str:
        if self._source is None:
            lines: List[str] = [
                f"/* generated: seed={self.seed} */",
            ]
            for glob in self.globals:
                lines.extend(glob.render())
            lines.append("")
            for fn in self.funcs:
                lines.extend(fn.render())
                lines.append("")
            self._source = "\n".join(lines).rstrip() + "\n"
        return self._source

    @property
    def source(self) -> str:
        return self.render()

    def line_count(self) -> int:
        return len(self.source.splitlines())

    def evaluate(self) -> OracleResult:
        return Oracle(self, fuel=self.config.fuel).run()

    def edit_variant(self) -> "GenProgram":
        """A single-edit sibling for the incremental-rebuild axis: the
        first non-main function gets ``^ 0`` appended to its returns,
        changing that unit's MIR while keeping behaviour identical."""
        import copy
        other = copy.deepcopy(self)
        other._source = None
        for fn in other.funcs:
            if fn.name == "main" or isinstance(fn, SetjmpFunc):
                continue
            edited = False
            for stmt in _walk_stmts(fn.body):
                if isinstance(stmt, ReturnStmt):
                    stmt.value = Bin("^", stmt.value, Lit(0))
                    edited = True
            if edited:
                return other
        # no candidate: edit main's first print instead
        for stmt in _walk_stmts(other.funcs[-1].body):
            if isinstance(stmt, (PrintIntStmt, ReturnStmt)):
                stmt.value = Bin("^", stmt.value, Lit(0))
                return other
        return other

    def invalidate(self) -> None:
        """Drop the render cache (after structural mutation)."""
        self._source = None


def _walk_stmts(stmts: Sequence[Stmt]):
    for stmt in stmts:
        yield stmt
        for block in stmt.blocks():
            yield from _walk_stmts(block)


# ---------------------------------------------------------------------------
# The generator proper
# ---------------------------------------------------------------------------

class _Gen:
    """One seeded generation run. All randomness flows through one
    ``random.Random(seed)`` so equal seeds give equal programs."""

    def __init__(self, seed: int, config: GenConfig):
        self.rng = random.Random(seed)
        self.seed = seed
        self.cfg = config
        self.globals: List[GenGlobal] = []
        self.funcs: List[GenFunc] = []
        self.scalars: List[GenGlobal] = []
        self.arrays: List[GenGlobal] = []
        self.strings: List[GenGlobal] = []
        self.buffer: Optional[GenGlobal] = None
        self.tables: List[GenGlobal] = []
        self._uid = 0

    # -- small helpers -----------------------------------------------

    def uid(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}{self._uid}"

    def lit(self) -> Lit:
        r = self.rng
        kind = r.randrange(5)
        if kind == 0:
            return Lit(r.randrange(0, 16))
        if kind == 1:
            return Lit(r.randrange(0, 256))
        if kind == 2:
            return Lit(r.choice([1, 2, 3, 5, 7, 10, 63, 64, 100,
                                 255, 256, 4095, 65535]))
        if kind == 3:
            return Lit(r.randrange(0, 1 << 31))
        return Lit(r.randrange(0, 1 << 15))

    # -- expressions -------------------------------------------------

    def expr(self, depth: int, scope: List[Tuple[str, str]],
             pure: bool, callees: List[GenFunc]) -> Expr:
        """A value expression. ``scope`` is [(name, ctype)] of
        readable locals; ``pure`` forbids calls (evaluation-order and
        side-effect freedom for index/divisor positions)."""
        r = self.rng
        if depth <= 0:
            return self.leaf_expr(scope)
        choices: List[str] = ["bin", "bin", "shift", "cmp", "unary",
                              "ternary", "leaf", "logic"]
        if self.cfg.narrow:
            choices.append("cast")
        choices.append("div")
        if self.arrays:
            choices.append("index")
        if self.strings and self.cfg.strings:
            choices.append("strindex")
        if self.buffer is not None and self.cfg.straddle:
            choices.append("mem")
        if not pure and callees:
            choices += ["call", "call"]
        if not pure and self.tables and self.cfg.fptr:
            choices.append("tablecall")
        kind = r.choice(choices)
        sub = depth - 1
        if kind == "leaf":
            return self.leaf_expr(scope)
        if kind == "bin":
            op = r.choice(["+", "-", "*", "&", "|", "^"])
            return Bin(op, self.expr(sub, scope, pure, callees),
                       self.expr(sub, scope, pure, callees))
        if kind == "shift":
            op = r.choice(["<<", ">>"])
            unsigned = op == ">>" and r.random() < 0.4
            return Shift(op, self.expr(sub, scope, pure, callees),
                         self.expr(sub, scope, pure, callees),
                         unsigned)
        if kind == "div":
            return SafeDiv(r.choice(["/", "%"]),
                           self.expr(sub, scope, pure, callees),
                           self.expr(sub, scope, True, []))
        if kind == "cmp":
            return Cmp(r.choice(["<", "<=", ">", ">=", "==", "!="]),
                       self.expr(sub, scope, pure, callees),
                       self.expr(sub, scope, pure, callees),
                       unsigned=r.random() < 0.3)
        if kind == "logic":
            return Logical(r.choice(["&&", "||"]),
                           self.expr(sub, scope, pure, callees),
                           self.expr(sub, scope, pure, callees))
        if kind == "unary":
            return Unary(r.choice(["-", "~", "!"]),
                         self.expr(sub, scope, pure, callees))
        if kind == "ternary":
            return Ternary(self.expr(sub, scope, pure, callees),
                           self.expr(sub, scope, pure, callees),
                           self.expr(sub, scope, pure, callees))
        if kind == "cast":
            chain = self.expr(sub, scope, pure, callees)
            for _ in range(r.randrange(1, 3)):
                chain = CastExpr(r.choice(NARROW_TYPES), chain)
            return chain
        if kind == "index":
            arr = r.choice(self.arrays)
            return Index(arr.name, arr.ctype, arr.length - 1,
                         self.expr(sub, scope, True, []))
        if kind == "strindex":
            gs = r.choice(self.strings)
            return StrIndex(gs.name, len(gs.text) - 1,
                            self.expr(sub, scope, True, []))
        if kind == "mem":
            return MemAccess(self.buffer.name,
                             r.choice(["long", "int", "short",
                                       "char"]),
                             self.buffer.length - 65,
                             self.expr(sub, scope, True, []))
        if kind == "call":
            fn = r.choice(callees)
            return self.call_to(fn, sub, scope, callees)
        if kind == "tablecall":
            table = r.choice(self.tables)
            return TableCall(
                table.name, len(table.fn_names) - 1,
                self.expr(sub, scope, True, []),
                [self.expr(sub, scope, pure, callees)
                 for _ in range(2)])
        raise AssertionError(kind)

    def leaf_expr(self, scope: List[Tuple[str, str]]) -> Expr:
        r = self.rng
        pool: List[Expr] = [self.lit()]
        if scope:
            name, ctype = r.choice(scope)
            pool.append(LocalRef(name, ctype))
            name, ctype = r.choice(scope)
            pool.append(LocalRef(name, ctype))
        if self.scalars:
            g = r.choice(self.scalars)
            pool.append(GlobalRef(g.name, g.ctype))
        return r.choice(pool)

    def call_to(self, fn: GenFunc, depth: int,
                scope: List[Tuple[str, str]],
                callees: List[GenFunc]) -> Expr:
        r = self.rng
        args: List[Expr] = [
            self.expr(depth, scope, False,
                      [c for c in callees if c is not fn])
            for _ in fn.params]
        for _ in fn.ptr_params:
            pair = [f for f in self.funcs
                    if len(f.params) == 2 and not f.ptr_params
                    and not f.variadic and not f.recursive
                    and not isinstance(f, SetjmpFunc)]
            if not pair:
                raise AssertionError(
                    "no long(*)(long,long) candidates — the first "
                    "leaf is always binary, this cannot happen")
            args.append(FnName(r.choice(pair).name))
        if fn.variadic:
            for _ in range(r.randrange(1, 4)):
                args.append(self.expr(0, scope, True, []))
        return Call(fn.name, args)

    # -- statements --------------------------------------------------

    def block(self, depth: int, scope: List[Tuple[str, str]],
              counters: List[str], callees: List[GenFunc],
              acc: str) -> List[Stmt]:
        r = self.rng
        stmts: List[Stmt] = []
        for _ in range(r.randrange(1, self.cfg.max_stmts + 1)):
            stmts.append(self.stmt(depth, scope, counters, callees,
                                   acc))
        return stmts

    def stmt(self, depth: int, scope: List[Tuple[str, str]],
             counters: List[str], callees: List[GenFunc],
             acc: str) -> Stmt:
        r = self.rng
        choices = ["assign", "assign", "accum"]
        if depth > 0:
            choices += ["if", "if"]
            if counters:
                choices += ["for", "while"]
            if self.cfg.switch:
                choices.append("switch")
        if self.arrays:
            choices.append("storearr")
        if self.buffer is not None and self.cfg.straddle:
            choices.append("storemem")
        kind = r.choice(choices)
        edepth = r.randrange(1, self.cfg.max_depth + 1)
        if kind == "assign":
            if self.scalars and r.random() < 0.4:
                g = r.choice(self.scalars)
                target: Expr = GlobalRef(g.name, g.ctype)
            else:
                target = LocalRef(acc)
            op = r.choice(["=", "+=", "-=", "^=", "|=", "&="])
            return AssignStmt(target, op,
                              self.expr(edepth, scope, False,
                                        callees))
        if kind == "accum":
            return AssignStmt(LocalRef(acc),
                              r.choice(["+=", "^="]),
                              self.expr(edepth, scope, False,
                                        callees))
        if kind == "storearr":
            arr = r.choice(self.arrays)
            target = Index(arr.name, arr.ctype, arr.length - 1,
                           self.expr(1, scope, True, []))
            return AssignStmt(target,
                              r.choice(["=", "+=", "^="]),
                              self.expr(edepth, scope, False,
                                        callees))
        if kind == "storemem":
            target = MemAccess(self.buffer.name,
                               r.choice(["long", "int", "short",
                                         "char"]),
                               self.buffer.length - 65,
                               self.expr(1, scope, True, []))
            return AssignStmt(target,
                              r.choice(["=", "+="]),
                              self.expr(edepth, scope, False,
                                        callees))
        if kind == "if":
            cond = self.expr(edepth, scope, False, callees)
            then = self.block(depth - 1, scope, counters, callees,
                              acc)
            els = None
            if r.random() < 0.5:
                els = self.block(depth - 1, scope, counters,
                                 callees, acc)
            return IfStmt(cond, then, els)
        if kind in ("for", "while"):
            var = counters[r.randrange(len(counters))]
            inner_counters = [c for c in counters if c != var]
            body = self.block(depth - 1, scope, inner_counters,
                              callees, acc)
            if r.random() < 0.25:
                guard = self.expr(1, scope, True, [])
                tail = r.choice([BreakStmt(), ContinueStmt()])
                body.append(IfStmt(Cmp("==", Bin("&", guard,
                                                 Lit(3)),
                                       Lit(0)), [tail]))
            count = r.randrange(1, self.cfg.loop_max + 1)
            if kind == "for":
                return ForStmt(var, count, body)
            return WhileStmt(var, count, body,
                             do_while=r.random() < 0.4)
        if kind == "switch":
            mask = r.choice([3, 7])
            values = list(range(mask + 1))
            if r.random() < 0.4:       # sparse: compare-chain path
                values = sorted(r.sample(
                    [v * 13 for v in range(mask + 1)],
                    min(3, mask + 1)))
                mask = 127
            cases = []
            for value in values:
                body = [self.stmt(0, scope, [], callees, acc)]
                falls = r.random() < 0.3
                cases.append(SwitchCase(value, body, falls))
            if cases:
                cases[-1].falls_through = False
            default = None
            if r.random() < 0.6:
                default = [self.stmt(0, scope, [], callees, acc)]
            return SwitchStmt(self.expr(edepth, scope, False,
                                        callees),
                              mask, cases, default)
        raise AssertionError(kind)

    # -- globals -----------------------------------------------------

    def make_globals(self) -> None:
        r = self.rng
        for i in range(r.randrange(2, 5)):
            ctype = "long"
            if self.cfg.narrow and r.random() < 0.4:
                ctype = r.choice(NARROW_TYPES)
            value = r.randrange(-(1 << 30), 1 << 30)
            glob = GenGlobal(self.uid("g"), "scalar", ctype=ctype,
                             init=(value,))
            self.globals.append(glob)
            self.scalars.append(glob)
        for i in range(r.randrange(1, 3)):
            ctype = r.choice(["long", "int"])
            length = r.choice([8, 16])
            init = tuple(r.randrange(-1000, 1000)
                         for _ in range(length))
            glob = GenGlobal(self.uid("arr"), "array", ctype=ctype,
                             length=length, init=init)
            self.globals.append(glob)
            self.arrays.append(glob)
        if self.cfg.straddle:
            self.buffer = GenGlobal("buf", "buffer", length=4160)
            self.globals.append(self.buffer)
        if self.cfg.strings:
            alphabet = ("abcdefghijklmnopqrstuvwxyz"
                        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ ")
            for i in range(r.randrange(1, 3)):
                length = r.choice([8, 16])
                text = "".join(r.choice(alphabet)
                               for _ in range(length))
                glob = GenGlobal(self.uid("gs"), "string", text=text)
                self.globals.append(glob)
                self.strings.append(glob)

    # -- functions ---------------------------------------------------

    def make_leaf(self, force_two_params: bool = False) -> GenFunc:
        r = self.rng
        name = self.uid("leaf")
        # the first leaf always takes (a, b): fn-ptr tables and
        # pointer parameters are typed long(*)(long, long), so the
        # candidate pool must never be empty
        params = ["a", "b"][:2 if force_two_params
                            else r.randrange(1, 3)]
        fn = GenFunc(name, params=list(params))
        scope = [(p, "long") for p in fn.params]
        acc = "acc"
        fn.locals_.append((acc, "long"))
        scope.append((acc, "long"))
        if self.cfg.narrow and r.random() < 0.5:
            narrow = self.uid("n")
            fn.locals_.append((narrow, r.choice(NARROW_TYPES)))
            scope.append((narrow, fn.locals_[-1][1]))
        for _ in range(r.randrange(1, 4)):
            target = r.choice(scope[len(fn.params):])
            fn.body.append(AssignStmt(
                LocalRef(target[0]), r.choice(["=", "+=", "^="]),
                self.expr(r.randrange(1, self.cfg.max_depth + 1),
                          scope, True, [])))
        fn.body.append(ReturnStmt(
            self.expr(self.cfg.max_depth, scope, True, [])))
        return fn

    def make_mid(self, callees: List[GenFunc]) -> GenFunc:
        r = self.rng
        name = self.uid("mid")
        params = ["a", "b"][:r.randrange(1, 3)]
        fn = GenFunc(name, params=list(params))
        scope = [(p, "long") for p in fn.params]
        acc = "acc"
        fn.locals_.append((acc, "long"))
        scope.append((acc, "long"))
        counters = []
        for _ in range(2):
            cvar = self.uid("i")
            fn.locals_.append((cvar, "long"))
            counters.append(cvar)
        scope.extend((c, "long") for c in counters)
        fn.body = self.block(self.cfg.max_block_depth, scope,
                             counters, callees, acc)
        fn.body.append(ReturnStmt(Bin(
            "+", LocalRef(acc),
            self.expr(2, scope, False, callees))))
        return fn

    def make_ptr_taker(self) -> GenFunc:
        """``long name(long a, long b, long (*f)(long, long))`` —
        signature-compatible pointer chain: the pointer is received,
        stored, reloaded and finally called."""
        name = self.uid("via")
        fn = GenFunc(name, params=["a", "b"], ptr_params=["f"])
        fn.body = [
            ReturnStmt(Bin("+",
                           PtrParamCall("f", [LocalRef("a"),
                                              LocalRef("b")]),
                           PtrParamCall("f", [LocalRef("b"),
                                              Lit(3)]))),
        ]
        return fn

    def make_variadic(self) -> GenFunc:
        r = self.rng
        name = self.uid("var")
        fn = GenFunc(name, params=["a", "b"], variadic=True)
        scope = [("a", "long"), ("b", "long")]
        fn.body = [ReturnStmt(self.expr(2, scope, True, []))]
        return fn

    def make_recursive(self) -> List[GenFunc]:
        """Self recursion (tail and non-tail) plus a mutual pair."""
        r = self.rng
        out: List[GenFunc] = []
        # tail-shaped: return rec(n - 1, acc + step)
        tname = self.uid("tail")
        step = self.expr(2, [("n", "long"), ("acc", "long")], True,
                         [])
        tail = GenFunc(tname, params=["n", "acc"], recursive=True)
        tail.body = [
            IfStmt(Cmp("<=", LocalRef("n"), Lit(0)),
                   [ReturnStmt(LocalRef("acc"))]),
            ReturnStmt(Call(tname, [
                Bin("-", LocalRef("n"), Lit(1)),
                Bin("+", LocalRef("acc"), step)])),
        ]
        out.append(tail)
        # non-tail: return rec(n - 1) * 3 + step
        nname = self.uid("rec")
        nstep = self.expr(2, [("n", "long")], True, [])
        nont = GenFunc(nname, params=["n"], recursive=True)
        nont.body = [
            IfStmt(Cmp("<=", LocalRef("n"), Lit(0)),
                   [ReturnStmt(Lit(1))]),
            ReturnStmt(Bin("+",
                           Bin("*", Call(nname, [Bin("-",
                                                     LocalRef("n"),
                                                     Lit(1))]),
                               Lit(3)),
                           nstep)),
        ]
        out.append(nont)
        # mutual pair
        aname, bname = self.uid("mutA"), self.uid("mutB")
        mut_a = GenFunc(aname, params=["n"], recursive=True)
        mut_b = GenFunc(bname, params=["n"], recursive=True)
        mut_a.body = [
            IfStmt(Cmp("<=", LocalRef("n"), Lit(0)),
                   [ReturnStmt(Lit(0))]),
            ReturnStmt(Bin("+", Call(bname, [Bin("-", LocalRef("n"),
                                                 Lit(1))]),
                           Lit(1))),
        ]
        mut_b.body = [
            IfStmt(Cmp("<=", LocalRef("n"), Lit(0)),
                   [ReturnStmt(Lit(0))]),
            ReturnStmt(Bin("+", Call(aname, [Bin("-", LocalRef("n"),
                                                 Lit(1))]),
                           Lit(2))),
        ]
        out += [mut_a, mut_b]
        return out

    def make_main(self, callees: List[GenFunc],
                  special: List[GenFunc]) -> GenFunc:
        r = self.rng
        fn = GenFunc("main", ret_type="int")
        acc = "acc"
        fn.locals_.append((acc, "long"))
        scope: List[Tuple[str, str]] = [(acc, "long")]
        counters = []
        cvar = self.uid("i")
        fn.locals_.append((cvar, "long"))
        counters.append(cvar)
        scope.append((cvar, "long"))
        body: List[Stmt] = []
        if self.cfg.fn_casts and len(callees) >= 2:
            one, two = r.sample(callees, 2)
            body.append(PrintIntStmt(FnPredicate(
                "!=0", FnAddr(one.name))))
            body.append(PrintIntStmt(FnPredicate(
                r.choice(["==", "!="]), FnAddr(one.name),
                FnAddr(two.name))))
        for fn_special in special:
            if isinstance(fn_special, SetjmpFunc):
                body.append(PrintIntStmt(Call(
                    fn_special.name, [self.lit()])))
            elif fn_special.ptr_params:
                body.append(PrintIntStmt(self.call_to(
                    fn_special, 1, scope, callees)))
            elif fn_special.variadic:
                body.append(PrintIntStmt(self.call_to(
                    fn_special, 1, scope, callees)))
            else:  # recursive shapes: bounded depth
                body.append(PrintIntStmt(Call(
                    fn_special.name,
                    [Lit(r.randrange(1, 10))] +
                    ([Lit(r.randrange(0, 50))]
                     if len(fn_special.params) == 2 else []))))
        for _ in range(self.cfg.main_actions):
            kind = r.randrange(4)
            if kind == 0 and self.strings:
                body.append(PrintStrStmt(r.choice(
                    self.strings).name))
            elif kind == 1:
                body.append(self.stmt(1, scope, counters, callees,
                                      acc))
            else:
                body.append(PrintIntStmt(self.expr(
                    r.randrange(2, self.cfg.max_depth + 1),
                    scope, False, callees)))
        # observe the final state of every mutable global
        digest: Expr = LocalRef(acc)
        for glob in self.scalars:
            digest = Bin("^", digest, GlobalRef(glob.name,
                                                glob.ctype))
        for arr in self.arrays:
            digest = Bin("+", digest,
                         Index(arr.name, arr.ctype, arr.length - 1,
                               Lit(r.randrange(arr.length))))
        if self.buffer is not None:
            digest = Bin("^", digest,
                         MemAccess(self.buffer.name, "long",
                                   self.buffer.length - 65,
                                   Lit(4090)))
        body.append(PrintIntStmt(digest))
        body.append(ReturnStmt(Bin("&", LocalRef(acc), Lit(63))))
        fn.body = body
        return fn

    # -- assembly ----------------------------------------------------

    def build(self) -> GenProgram:
        r = self.rng
        self.make_globals()
        leaves = [self.make_leaf(force_two_params=i == 0)
                  for i in range(max(1, self.cfg.n_leaf))]
        self.funcs.extend(leaves)
        special: List[GenFunc] = []
        if self.cfg.recursion:
            rec = self.make_recursive()
            self.funcs.extend(rec)
            special.extend(rec[:2] + rec[2:3])  # tail, rec, mutA
        mids: List[GenFunc] = []
        for _ in range(max(1, self.cfg.n_mid)):
            mid = self.make_mid(leaves + mids)
            mids.append(mid)
            self.funcs.append(mid)
        if self.cfg.ptr_param:
            via = self.make_ptr_taker()
            self.funcs.append(via)
            special.append(via)
        if self.cfg.variadic:
            var = self.make_variadic()
            self.funcs.append(var)
            special.append(var)
        if self.cfg.fptr:
            pool = [f for f in leaves + mids
                    if len(f.params) == 2]
            if len(pool) >= 2:
                k = 4 if len(pool) >= 4 else 2
                names = tuple(r.choice(pool).name
                              for _ in range(k))
                table = GenGlobal(self.uid("tab"), "fptr_table",
                                  fn_names=names)
                self.globals.append(table)
                self.tables.append(table)
        if self.cfg.setjmp:
            # jb is a raw global array that never joins self.arrays:
            # generated code must not read or write the live jmp buf
            jb = GenGlobal("jb", "array", ctype="long", length=8,
                           init=())
            self.globals.append(jb)
            sj = SetjmpFunc(self.uid("sj"), jb_name="jb",
                            hops=r.randrange(1, 4),
                            step=self.expr(2, [("a", "long")], True,
                                           []))
            self.funcs.append(sj)
            special.append(sj)
        callees = leaves + mids
        self.funcs.append(self.make_main(callees, special))
        return GenProgram(self.seed, self.cfg, self.globals,
                          self.funcs)


def generate(seed: int, config: Optional[GenConfig] = None
             ) -> GenProgram:
    """Generate one program. Equal (seed, config) gives byte-equal
    source and an identical oracle."""
    cfg = config if config is not None else GenConfig()
    return _Gen(seed, cfg).build()
